// quickstart — the 60-second tour of the FFQ API.
//
//   build/examples/quickstart
//
// Shows the three queue variants (SPSC / SPMC / MPMC), the close()
// protocol for graceful shutdown, and the layout policies.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"

int main() {
  // ------------------------------------------------------------------
  // 1. SPMC — the paper's headline queue: one producer, any number of
  //    consumers. Capacity must be a power of two and larger than the
  //    maximum number of in-flight items (then enqueue is wait-free).
  // ------------------------------------------------------------------
  ffq::core::spmc_queue<int> jobs(1024);

  constexpr int kConsumers = 3;
  constexpr int kJobs = 100000;
  std::vector<std::thread> consumers;
  std::vector<long> consumed(kConsumers, 0);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      int job;
      // dequeue() blocks while the queue is empty and returns false
      // once the producer calls close() and everything is drained.
      while (jobs.dequeue(job)) {
        consumed[c] += job;
      }
    });
  }

  long expected = 0;
  for (int i = 1; i <= kJobs; ++i) {
    jobs.enqueue(i);  // wait-free: never blocks while slots remain
    expected += i;
  }
  jobs.close();  // graceful shutdown: consumers drain, then exit
  for (auto& t : consumers) t.join();

  long got = 0;
  for (int c = 0; c < kConsumers; ++c) {
    std::printf("consumer %d processed sum %ld\n", c, consumed[c]);
    got += consumed[c];
  }
  std::printf("SPMC: all %d jobs delivered exactly once: %s\n\n", kJobs,
              got == expected ? "yes" : "NO (bug!)");

  // ------------------------------------------------------------------
  // 2. SPSC — single consumer: no atomic ops on head at all, and a
  //    non-blocking try_dequeue becomes possible.
  // ------------------------------------------------------------------
  ffq::core::spsc_queue<std::string> mail(64);
  mail.enqueue("hello");
  mail.enqueue("world");
  std::string msg;
  while (mail.try_dequeue(msg)) {
    std::printf("SPSC got: %s\n", msg.c_str());
  }

  // ------------------------------------------------------------------
  // 3. MPMC — multiple producers via double-word CAS on (rank, gap).
  // ------------------------------------------------------------------
  // Remember FFQ is *bounded*: capacity must exceed the maximum number
  // of items in flight (4 producers x 1000 here, nobody consuming yet).
  ffq::core::mpmc_queue<int> shared(8192);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 1000; ++i) shared.enqueue(p * 1000 + i);
    });
  }
  for (auto& t : producers) t.join();
  shared.close();
  int count = 0, v;
  while (shared.dequeue(v)) ++count;
  std::printf("MPMC: drained %d items from 4 producers\n", count);

  // ------------------------------------------------------------------
  // 4. Layout policies (paper §IV-A): pick at compile time.
  // ------------------------------------------------------------------
  ffq::core::spmc_queue<int, ffq::core::layout_compact> tight(128);
  ffq::core::spmc_queue<int, ffq::core::layout_aligned_randomized> tuned(128);
  tight.enqueue(1);
  tuned.enqueue(2);
  int a = 0, b = 0;
  if (!tight.dequeue(a) || !tuned.dequeue(b)) return 1;
  std::printf("layouts: compact cell stream -> %d, aligned+randomized -> %d\n",
              a, b);
  std::printf("\nquickstart OK\n");
  return 0;
}
