// syscall_service — the paper's motivating application (§I, §V-F): an
// asynchronous system-call service for threads that cannot issue
// syscalls directly (in the paper: SGX enclave threads).
//
//   build/examples/syscall_service [app_threads] [os_threads] [calls]
//
// Architecture (one group per app thread):
//
//   [app thread]  --request-->  SPMC submission queue  --> [executor]
//        ^                                                    |
//        +------ SPSC response queue (per executor) <---------+
//
// The demo runs the same workload through all four service variants and
// prints the comparison the paper's Fig. 7 makes.
#include <cstdio>
#include <cstdlib>

#include "ffq/runtime/timing.hpp"
#include "ffq/sgxsim/syscall_service.hpp"

using namespace ffq::sgxsim;

int main(int argc, char** argv) {
  service_config cfg;
  cfg.app_threads = argc > 1 ? std::atoi(argv[1]) : 2;
  cfg.os_threads = argc > 2 ? std::atoi(argv[2]) : 2;
  cfg.calls_per_thread = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20000;

  std::printf("async syscall service: %d app thread(s), %d executor(s), "
              "%llu calls each\n\n",
              cfg.app_threads, cfg.os_threads,
              static_cast<unsigned long long>(cfg.calls_per_thread));

  std::printf("%-10s  %14s  %16s  %12s\n", "variant", "calls/s",
              "latency (cycles)", "transitions");
  for (auto v : {service_variant::native, service_variant::sgx_sync,
                 service_variant::sgx_mpmc, service_variant::sgx_ffq}) {
    cfg.variant = v;
    const auto r = run_syscall_service(cfg);
    std::printf("%-10s  %14.0f  %16.0f  %12llu\n", to_string(v),
                r.calls_per_sec, r.avg_latency_cycles,
                static_cast<unsigned long long>(r.enclave_transitions));
  }

  std::printf(
      "\nreading the table: the sync variant pays two enclave transitions "
      "per call; the async variants pay two per *thread lifetime* and "
      "synchronize through queues instead — and the FFQ queues beat the "
      "generic MPMC ones. That is the paper's Fig. 7 in miniature.\n");
  return 0;
}
