// green_syscalls — the paper's full §I architecture: m application-level
// threads (fibers) multiplexed on one OS thread, issuing asynchronous
// system calls through FFQ queues and *yielding to the scheduler* while
// the response is in flight, instead of spinning.
//
//   build/examples/green_syscalls [fibers] [calls_per_fiber]
//
// The demo runs the same total work twice:
//   (a) one fiber (sequential: each call waits out its full latency);
//   (b) m fibers (overlapped: up to m calls outstanding in the
//       submission queue — the paper's "implicit flow control"
//       population).
// With a simulated 20 us syscall, (b) finishes close to m× faster even
// though both use a single application OS thread.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"
#include "ffq/runtime/fiber.hpp"
#include "ffq/runtime/timing.hpp"

namespace rt = ffq::runtime;

namespace {

struct request {
  std::uint32_t fiber;
  std::uint64_t seq;
};

double run_service(int fibers, std::uint64_t calls_per_fiber,
                   double syscall_ns) {
  ffq::core::spmc_queue<request> submission(1 << 12);
  std::vector<std::unique_ptr<ffq::core::spsc_queue<std::uint64_t>>> responses;
  for (int f = 0; f < fibers; ++f) {
    responses.push_back(
        std::make_unique<ffq::core::spsc_queue<std::uint64_t>>(1 << 8));
  }

  std::thread executor([&] {
    request req;
    while (submission.dequeue(req)) {
      rt::spin_ns(syscall_ns);  // the "system call"
      responses[req.fiber]->enqueue(req.seq + 1);
    }
  });

  rt::stopwatch sw;
  rt::fiber_scheduler sched;
  for (int f = 0; f < fibers; ++f) {
    sched.spawn([&, f] {
      for (std::uint64_t s = 0; s < calls_per_fiber; ++s) {
        submission.enqueue(request{static_cast<std::uint32_t>(f), s});
        std::uint64_t resp;
        // Paper §I: "call the scheduler to indicate that another
        // application thread can execute".
        rt::fiber_scheduler::wait_until(
            [&] { return responses[f]->try_dequeue(resp); });
      }
    });
  }
  sched.run();
  const double secs = sw.seconds();
  submission.close();
  executor.join();
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const int fibers = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t calls = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;
  constexpr double kSyscallNs = 20000.0;  // 20 us simulated syscall

  const std::uint64_t total = static_cast<std::uint64_t>(fibers) * calls;

  std::printf("total work: %llu syscalls of ~20 us each, one app OS thread\n\n",
              static_cast<unsigned long long>(total));

  const double seq = run_service(1, total, kSyscallNs);
  std::printf("1 fiber  (sequential): %.3f s  (%.0f calls/s)\n", seq,
              static_cast<double>(total) / seq);

  const double par = run_service(fibers, calls, kSyscallNs);
  std::printf("%d fibers (overlapped): %.3f s  (%.0f calls/s)\n", fibers, par,
              static_cast<double>(total) / par);

  std::printf("\nspeedup from yielding fibers: %.2fx ", seq / par);
  std::printf("(the executor pipeline bounds it; with one executor the\n"
              "overlap hides queue latency, not the syscall itself — add\n"
              "executors for more)\n");
  return 0;
}
