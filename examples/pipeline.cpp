// pipeline — pipeline parallelism over FFQ SPSC queues (the use case of
// the related-work SPSC designs: FastForward, MCRingBuffer, BatchQueue).
//
//   build/examples/pipeline [items]
//
// A 3-stage text-processing pipeline:
//   stage 1 (generate)  -> produces pseudo-random "records"
//   stage 2 (transform) -> checksums and filters them
//   stage 3 (aggregate) -> folds results into a final digest
//
// Each stage pair is connected by one spsc_queue; close() propagates
// end-of-stream down the pipeline.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "ffq/core/ffq.hpp"
#include "ffq/runtime/rng.hpp"
#include "ffq/runtime/timing.hpp"

namespace {

struct record {
  std::uint64_t id = 0;
  std::uint64_t payload = 0;
};

struct digest {
  std::uint64_t id = 0;
  std::uint64_t checksum = 0;
};

constexpr std::uint64_t fold(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 1'000'000;

  ffq::core::spsc_queue<record> stage12(1 << 12);
  ffq::core::spsc_queue<digest> stage23(1 << 12);

  ffq::runtime::stopwatch sw;

  std::thread generate([&] {
    ffq::runtime::xoshiro256ss rng(2017);
    for (std::uint64_t i = 0; i < items; ++i) {
      stage12.enqueue(record{i, rng()});
    }
    stage12.close();
  });

  std::thread transform([&] {
    record r;
    std::uint64_t dropped = 0;
    while (stage12.dequeue(r)) {
      const std::uint64_t sum = fold(r.payload);
      if ((sum & 0xf) == 0) {
        ++dropped;  // filter: drop 1/16 of records
        continue;
      }
      stage23.enqueue(digest{r.id, sum});
    }
    stage23.close();
    std::printf("transform: dropped %llu records\n",
                static_cast<unsigned long long>(dropped));
  });

  std::uint64_t final_digest = 0;
  std::uint64_t passed = 0;
  std::thread aggregate([&] {
    digest d;
    while (stage23.dequeue(d)) {
      final_digest ^= d.checksum + d.id;
      ++passed;
    }
  });

  generate.join();
  transform.join();
  aggregate.join();
  const double secs = sw.seconds();

  std::printf("pipeline: %llu records in %.3f s (%.1f M records/s)\n",
              static_cast<unsigned long long>(items), secs,
              static_cast<double>(items) / secs / 1e6);
  std::printf("passed %llu, digest %016llx\n",
              static_cast<unsigned long long>(passed),
              static_cast<unsigned long long>(final_digest));
  return 0;
}
