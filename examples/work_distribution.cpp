// work_distribution — SPMC fan-out with heterogeneous task costs: the
// scenario FFQ's lock-free dequeue is designed for ("it does not matter
// which of the consumer threads actually executes the system call"; a
// slow consumer must not block the others).
//
//   build/examples/work_distribution [workers] [tasks]
//
// The producer publishes tasks whose cost varies by three orders of
// magnitude. With a FIFO handoff queue, a slow task would head-of-line
// block a naive design; with FFQ, the producer skips the cell a slow
// consumer still occupies (announcing a gap) and the other workers keep
// streaming. The demo prints the per-worker task counts and the gap/skip
// statistics that show the mechanism firing.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"
#include "ffq/runtime/rng.hpp"
#include "ffq/runtime/timing.hpp"

namespace {

struct task {
  std::uint64_t id = 0;
  std::uint64_t cost_ns = 0;  ///< simulated work
};

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t tasks = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 50000;

  // Small ring on purpose: with long-running tasks in flight the
  // producer regularly wraps onto busy cells and exercises the gap
  // protocol (watch the statistics below). The explicit enabled
  // telemetry policy keeps the gap statistics live in any build mode.
  ffq::core::spmc_queue<task, ffq::core::layout_aligned,
                        ffq::telemetry::enabled>
      q(64);

  std::vector<std::thread> pool;
  std::vector<std::uint64_t> done(workers, 0);
  std::atomic<std::uint64_t> total_work_ns{0};
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      task t;
      std::uint64_t local_ns = 0;
      while (q.dequeue(t)) {
        ffq::runtime::spin_ns(static_cast<double>(t.cost_ns));
        ++done[w];
        local_ns += t.cost_ns;
      }
      total_work_ns.fetch_add(local_ns);
    });
  }

  ffq::runtime::xoshiro256ss rng(7);
  ffq::runtime::stopwatch sw;
  for (std::uint64_t i = 0; i < tasks; ++i) {
    // 1 in 500 tasks is pathological (100 us); the rest are 100-400 ns.
    const std::uint64_t cost =
        rng.bounded(500) == 0 ? 100000 : 100 + rng.bounded(300);
    q.enqueue(task{i, cost});
  }
  q.close();
  for (auto& t : pool) t.join();
  const double secs = sw.seconds();

  std::uint64_t total = 0;
  for (int w = 0; w < workers; ++w) {
    std::printf("worker %d: %llu tasks\n", w,
                static_cast<unsigned long long>(done[w]));
    total += done[w];
  }
  std::printf("\n%llu/%llu tasks in %.3f s (%.1fk tasks/s); simulated work "
              "%.3f s across %d workers\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(tasks), secs,
              static_cast<double>(total) / secs / 1e3,
              static_cast<double>(total_work_ns.load()) * 1e-9, workers);
  std::printf("gap mechanism: producer announced %llu gaps; consumers "
              "skipped %llu dead ranks\n",
              static_cast<unsigned long long>(q.gaps_created()),
              static_cast<unsigned long long>(q.consumer_skips()));
  return 0;
}
