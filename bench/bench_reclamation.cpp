// bench_reclamation — ablation (not a paper figure): hazard pointers vs
// epoch-based reclamation under the Michael-Scott queue.
//
// The paper's §II survey contrasts queue algorithms but holds the memory
// management constant; this ablation shows how much of a node-based
// queue's cost is the reclamation protocol itself (per-traversal seq_cst
// hazard publication vs per-operation epoch pin/unpin). FFQ itself needs
// neither — its array cells are recycled in place — which is part of its
// performance story.
#include <cstdio>
#include <thread>
#include <vector>

#include "ffq/baselines/ms_queue.hpp"
#include "ffq/baselines/reclaimers.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/timing.hpp"

using namespace ffq;
using namespace ffq::baselines;
using namespace ffq::harness;

namespace {

template <typename Reclaimer>
double run_once(int threads, std::uint64_t pairs_per_thread) {
  ms_queue<std::uint64_t, Reclaimer> q;
  runtime::spin_barrier barrier(static_cast<std::size_t>(threads) + 1);
  runtime::time_window_recorder window(static_cast<std::size_t>(threads));
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(t));
      std::uint64_t out;
      runtime::yielding_backoff bo;
      for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
        q.enqueue(i + 1);
        while (!q.try_dequeue(out)) bo.pause();
        bo.reset();
      }
      window.mark_end(static_cast<std::size_t>(t));
      barrier.arrive_and_wait();
    });
  }
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : ts) t.join();
  return 2.0 * static_cast<double>(pairs_per_thread) * threads /
         window.seconds();
}

template <typename Reclaimer>
run_stats run_many(int threads, std::uint64_t pairs, int runs) {
  std::vector<double> s;
  for (int r = 0; r < runs; ++r) s.push_back(run_once<Reclaimer>(threads, pairs));
  return summarize(s);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Reclamation ablation (extra)",
      "MS-queue enqueue/dequeue pairs under hazard pointers vs epochs.");

  const std::uint64_t pairs =
      static_cast<std::uint64_t>(std::max(10000.0, 300000 * cli.scale));

  table t({"threads", "hazard (ops/s)", "epoch (ops/s)", "epoch/hazard"});
  for (int threads : {1, 2, 4}) {
    const auto hz = run_many<hazard_reclaimer>(threads, pairs / threads, cli.runs);
    const auto ep = run_many<epoch_reclaimer>(threads, pairs / threads, cli.runs);
    t.add_row({std::to_string(threads), human_rate(hz.mean),
               human_rate(ep.mean), fixed(ep.mean / hz.mean, 2)});
    std::printf("done: %d thread(s)\n", threads);
  }
  std::printf("\n%s", t.str().c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  std::printf(
      "\nexpectation: epochs win on read-side cost (no per-pointer "
      "seq_cst publication); hazards bound garbage under stalls.\n");
  write_trace_if_requested(cli);
  return 0;
}
