// bench_fig3_queue_size — reproduces paper Fig. 3:
//
// "Throughput as a function of the queue size (Skylake). In a single-
// producer/single-consumer configuration, when reaching 64k entries, the
// throughput starts to decrease."
//
// The sweep runs the §V-A microbenchmark with one producer and one
// consumer over queue sizes 2^6 .. 2^20 (cache-aligned cells). The
// expected shape: throughput rises as the ring decouples producer from
// consumer, peaks when the working set saturates the last cache level
// that still fits, then decays once it spills.
#include <cstdio>

#include "ffq/core/ffq.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/spmc_bench.hpp"
#include "ffq/harness/stats.hpp"

using namespace ffq;
using namespace ffq::harness;

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Figure 3 — throughput vs queue size (1p/1c)",
      "FFQ SPMC microbenchmark, single producer, single consumer, "
      "cache-aligned cells; sweep of the ring size.");

  table t({"entries", "roundtrips/s", "stddev", "min", "max"});
  double best = 0.0;
  std::size_t best_entries = 0;
  for (unsigned lg = 6; lg <= 20; lg += 2) {
    const std::size_t entries = std::size_t{1} << lg;
    spmc_bench_config cfg;
    cfg.submission_capacity = entries;
    cfg.response_capacity = entries;
    cfg.items_per_producer =
        static_cast<std::uint64_t>(500000 * cli.scale);
    if (cfg.items_per_producer < 1000) cfg.items_per_producer = 1000;
    using q = core::spmc_queue<std::uint64_t, core::layout_aligned>;
    const auto s = run_spmc_bench<q, core::layout_aligned>(cfg, cli.runs);
    t.add_row({std::to_string(entries), human_rate(s.mean),
               human_rate(s.stddev), human_rate(s.min), human_rate(s.max)});
    if (s.mean > best) {
      best = s.mean;
      best_entries = entries;
    }
    std::printf("done: %zu entries\n", entries);
  }

  std::printf("\n%s", t.str().c_str());
  std::printf("\npeak at %zu entries (%s roundtrips/s)\n", best_entries,
              human_rate(best).c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  std::printf(
      "paper reference (Skylake): maximum throughput at 64k entries, "
      "decline beyond as the ring exceeds cache capacity.\n");
  write_trace_if_requested(cli);
  return 0;
}
