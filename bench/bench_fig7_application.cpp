// bench_fig7_application — reproduces paper Fig. 7 (both panels):
//
// Left: "Throughput of the benchmark application with different number
// of available cores" — native vs SGX+MPMC vs SGX+FFQ; "In contrast to
// the MPMC variant, the binary with FFQ achieves a 5 times higher
// throughput and scales linearly."
//
// Right: "latency of the getppid system call with different queues" —
// single application thread; "The system call latency of FFQ is almost
// twice as low compared to the MPMC variant. The latency is higher than
// the [native] baseline because it involves a ping/pong of request and
// answer between two threads."
//
// SGX is simulated (DESIGN.md §5.1); the extra `sgx-sync` variant shows
// the traditional exit/trap/re-enter path the async design replaces.
#include <unistd.h>

#include <cstdio>

#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/timing.hpp"
#include "ffq/runtime/topology.hpp"
#include "ffq/sgxsim/syscall_service.hpp"
#include "ffq/telemetry/registry.hpp"

using namespace ffq;
using namespace ffq::harness;
using namespace ffq::sgxsim;

namespace {

service_result run_avg(service_config cfg, int runs) {
  std::vector<double> tput, lat;
  service_result last{};
  for (int r = 0; r < runs; ++r) {
    last = run_syscall_service(cfg);
    tput.push_back(last.calls_per_sec);
    lat.push_back(last.avg_latency_cycles);
  }
  last.calls_per_sec = summarize(tput).mean;
  last.avg_latency_cycles = summarize(lat).mean;
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Figure 7 — application benchmark: async syscalls for enclaves",
      "getppid(2) service; native vs simulated-SGX variants (sync ocall, "
      "external MPMC queue, FFQ).");
  {
    // Context: in sandboxed environments (gVisor etc.) the raw syscall
    // costs microseconds and dominates every variant.
    ffq::runtime::stopwatch sw;
    for (int i = 0; i < 2000; ++i) {
      volatile long r = ::getppid();
      (void)r;
    }
    std::printf("raw getppid cost here: ~%.0f ns\n\n",
                sw.seconds() / 2000 * 1e9);
  }

  const auto topo = runtime::cpu_topology::discover();
  const int max_cores = static_cast<int>(
      std::min<std::size_t>(4, std::max<std::size_t>(1, topo.num_cores())));
  const std::uint64_t calls = static_cast<std::uint64_t>(
      std::max(2000.0, 30000 * cli.scale));
  const int runs = std::max(2, cli.runs / 2);

  // --- left panel: throughput vs cores ---------------------------------
  // Two regimes: the real syscall (whatever it costs in this
  // environment), and the paper's regime -- a ~100 ns syscall that makes
  // the queues the bottleneck (simulated; see DESIGN.md s5). The second
  // regime additionally scales producers with "cores" because the
  // MPMC-vs-FFQ gap of Fig. 7 comes from producer contention on the
  // shared submission queue.
  for (int regime = 0; regime < 2; ++regime) {
    const double sim_ns = regime == 0 ? 0.0 : 100.0;
    table left({"cores", "native", "sgx-sync", "sgx-mpmc", "sgx-ffq",
                "ffq/mpmc"});
    // The FFQ-vs-MPMC gap of Fig. 7 comes from several producers
    // contending on the one shared MPMC queue; sweep the queue-bound
    // regime up to 4 producer groups even when that oversubscribes this
    // machine (the paper's Skylake hosts them on real cores).
    const int sweep_max = regime == 0 ? max_cores : 4;
    for (int cores = 1; cores <= sweep_max; ++cores) {
      service_config cfg;
      cfg.simulated_syscall_ns = sim_ns;
      if (regime == 0) {
        // Total threads fit the core budget (paper methodology).
        cfg.app_threads = std::max(1, cores / 2);
        cfg.os_threads = std::max(1, cores - cfg.app_threads);
      } else {
        // Queue-bound regime: producers scale with "cores" to build up
        // contention on the submission path.
        cfg.app_threads = cores;
        cfg.os_threads = cores;
      }
      cfg.calls_per_thread =
          calls / static_cast<std::uint64_t>(cfg.app_threads);
      cfg.pin_threads = true;
      cfg.cpu_limit = cores;  // emulate "available cores"

      cfg.variant = service_variant::native;
      const auto native = run_avg(cfg, runs);
      cfg.variant = service_variant::sgx_sync;
      const auto sync = run_avg(cfg, runs);
      cfg.variant = service_variant::sgx_mpmc;
      const auto mpmc = run_avg(cfg, runs);
      cfg.variant = service_variant::sgx_ffq;
      const auto ffqv = run_avg(cfg, runs);

      left.add_row({std::to_string(cores), human_rate(native.calls_per_sec),
                    human_rate(sync.calls_per_sec),
                    human_rate(mpmc.calls_per_sec),
                    human_rate(ffqv.calls_per_sec),
                    fixed(ffqv.calls_per_sec / mpmc.calls_per_sec, 2)});
      std::printf("done: %d core(s) [%s]\n", cores,
                  regime == 0 ? "real syscall" : "queue-bound");
    }
    std::printf("\nthroughput (calls/s) -- %s:\n%s",
                regime == 0 ? "real getppid(2)"
                            : "queue-bound regime (simulated 100 ns syscall)",
                left.str().c_str());
    if (regime == 1 && !cli.csv_path.empty() && left.write_csv(cli.csv_path)) {
      std::printf("csv written to %s\n", cli.csv_path.c_str());
    }
  }

  // --- right panel: single-thread end-to-end latency --------------------
  // collect_telemetry turns on the per-thread latency histograms: the
  // paper reports the average; the percentile columns expose the tail
  // the average hides (DESIGN.md §8).
  telemetry::registry::instance().reset();
  table right({"variant", "avg latency (cycles)", "avg latency (ns)",
               "p50 (ns)", "p99 (ns)", "p999 (ns)"});
  for (auto v : {service_variant::native, service_variant::sgx_sync,
                 service_variant::sgx_mpmc, service_variant::sgx_ffq}) {
    service_config cfg;
    cfg.variant = v;
    cfg.app_threads = 1;
    cfg.os_threads = 1;
    cfg.calls_per_thread = calls;
    cfg.collect_telemetry = true;
    const auto r = run_avg(cfg, runs);
    const auto e2e = telemetry::registry::instance()
                         .recorder(std::string("syscall.") + to_string(v) +
                                   ".e2e_ns")
                         .merge()
                         .summary();
    right.add_row({to_string(v), fixed(r.avg_latency_cycles, 0),
                   fixed(ffq::runtime::tsc_to_ns(
                             static_cast<std::uint64_t>(r.avg_latency_cycles)),
                         0),
                   std::to_string(e2e.p50), std::to_string(e2e.p99),
                   std::to_string(e2e.p999)});
  }
  std::printf("\nlatency (single app thread):\n%s", right.str().c_str());

  const auto snap = telemetry::registry::instance().snapshot();
  if (!cli.json_path.empty() &&
      right.write_json(cli.json_path, "fig7_application_latency",
                       snap.empty() ? nullptr : &snap)) {
    std::printf("json written to %s\n", cli.json_path.c_str());
  }
  if (!cli.metrics_path.empty() && snap.write_json_file(cli.metrics_path)) {
    std::printf("metrics written to %s\n", cli.metrics_path.c_str());
  }
  write_trace_if_requested(cli, snap.empty() ? nullptr : &snap);

  std::printf(
      "\npaper reference: FFQ ~5x the external-MPMC throughput, scaling "
      "~linearly with cores; latency native < FFQ < MPMC (~2x FFQ). "
      "Caveat: in sandboxed containers the raw syscall cost dominates "
      "and compresses the queue-induced gap; orderings still hold.\n");
  return 0;
}
