// bench_fig45_cache_affinity — reproduces paper Figs. 4 and 5:
//
// Fig. 4: "IPC, frequency, and L2 cache hit ratio for a single-producer/
// single-consumer configuration" per affinity policy and queue size.
// Fig. 5: "L3 cache hit ratio, L3 cache misses, and memory access
// bandwidth" for the same sweep.
//
// Two data sources (DESIGN.md §5.2):
//  * hardware PMU counters via perf_event_open when the environment
//    permits them (rare in containers) — measured around a real 1p/1c
//    FFQ run pinned per policy;
//  * the coherent cache simulator replaying the queue's access pattern —
//    always available, reproduces the shapes (hit ratios rise with queue
//    size until a level spills, then fall; same-core placements share
//    L1/L2, cross-core only L3).
#include <cstdio>
#include <thread>

#include "ffq/cachesim/queue_trace.hpp"
#include "ffq/core/ffq.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/spmc_bench.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/perf_counters.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

struct policy_row {
  const char* label;
  bool shared_domain;  // same-HT / sibling-HT share private caches
  runtime::placement_policy policy;
};

const policy_row kPolicies[] = {
    {"same-HT", true, runtime::placement_policy::same_ht},
    {"sibling-HT", true, runtime::placement_policy::sibling_ht},
    {"other-core", false, runtime::placement_policy::other_core},
    {"no-affinity", false, runtime::placement_policy::none},
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Figures 4+5 — cache behaviour vs queue size and affinity (1p/1c)",
      "Cache-simulator replay of the FFQ access pattern (always), plus "
      "hardware PMU counters when available.");

  // --- simulated counters (Figs. 4 panel c + all of Fig. 5) ------------
  table sim({"policy", "entries", "L1-hit", "L2-hit", "L3-hit", "L3-miss",
             "mem-MB", "IPC-proxy", "cyc/pair"});
  const std::uint64_t items =
      static_cast<std::uint64_t>(400000 * (cli.quick ? 0.25 : 1.0));
  for (const auto& p : kPolicies) {
    for (unsigned lg = 8; lg <= 20; lg += 2) {
      cachesim::queue_trace_config cfg;
      cfg.queue_entries = std::size_t{1} << lg;
      cfg.cell_bytes = 64;
      cfg.items = items;
      cfg.shared_domain = p.shared_domain;
      const auto r = cachesim::simulate_queue_trace(cfg);
      sim.add_row({p.label, std::to_string(cfg.queue_entries),
                   fixed(r.l1_hit_ratio, 3), fixed(r.l2_hit_ratio, 3),
                   fixed(r.l3_hit_ratio, 3), std::to_string(r.l3_misses),
                   fixed(static_cast<double>(r.memory_bytes) / 1e6, 1),
                   fixed(r.ipc_proxy, 2), fixed(r.cycles_per_pair, 1)});
    }
  }
  std::printf("%s\n", sim.str().c_str());
  if (!cli.csv_path.empty() && sim.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }

  // --- hardware counters, when permitted (Fig. 4 panels a+b) -----------
  runtime::perf_counter_group probe(
      {runtime::perf_event_kind::cycles, runtime::perf_event_kind::instructions,
       runtime::perf_event_kind::cache_references,
       runtime::perf_event_kind::cache_misses});
  if (!probe.available()) {
    std::printf("hardware PMU: unavailable (%s); skipping measured IPC.\n",
                probe.error().c_str());
  } else {
    table hwt({"policy", "entries", "IPC", "LLC-miss-ratio", "roundtrips/s"});
    for (const auto& p : kPolicies) {
      for (unsigned lg = 8; lg <= 16; lg += 4) {
        runtime::perf_counter_group grp(
            {runtime::perf_event_kind::cycles,
             runtime::perf_event_kind::instructions,
             runtime::perf_event_kind::cache_references,
             runtime::perf_event_kind::cache_misses});
        spmc_bench_config cfg;
        cfg.submission_capacity = std::size_t{1} << lg;
        cfg.response_capacity = cfg.submission_capacity;
        cfg.items_per_producer = items / 2;
        cfg.policy = p.policy;
        grp.start();
        using q = core::spmc_queue<std::uint64_t, core::layout_aligned>;
        const double rt = run_spmc_bench_once<q, core::layout_aligned>(cfg);
        grp.stop();
        const auto cyc = grp.value(runtime::perf_event_kind::cycles);
        const auto ins = grp.value(runtime::perf_event_kind::instructions);
        const auto refs = grp.value(runtime::perf_event_kind::cache_references);
        const auto miss = grp.value(runtime::perf_event_kind::cache_misses);
        hwt.add_row({p.label, std::to_string(std::size_t{1} << lg),
                     cyc ? fixed(static_cast<double>(ins) / cyc, 2) : "-",
                     refs ? fixed(static_cast<double>(miss) / refs, 3) : "-",
                     human_rate(rt)});
      }
    }
    std::printf("%s\n", hwt.str().c_str());
  }

  std::printf(
      "\npaper reference: hit ratios rise with queue size, L3 collapses "
      "when the ring exceeds L3 (Fig. 5); same-core placements show the "
      "best private-cache locality; cross-core placements pay coherence "
      "misses (Fig. 4). Core frequency (Fig. 4 middle panel) is hardware-"
      "only and not modelled by the simulator.\n");
  write_trace_if_requested(cli);
  return 0;
}
