// bench_micro_ops — google-benchmark micro-costs (extra ablation).
//
// Quantifies the building blocks the paper's design decisions trade off:
//  * uncontended enqueue+dequeue cost per FFQ variant (SPSC vs SPMC vs
//    MPMC — the price of the fetch-and-add and of the DWCAS);
//  * layout policies (index-rotation arithmetic on the hot path);
//  * the primitive costs themselves: FAA vs CAS vs DWCAS (the paper's
//    observation 4: FAA guarantees progress; §V-G: lcrq is slower than
//    wfqueue due to heavier synchronization).
#include <benchmark/benchmark.h>

#include <atomic>

#include "ffq/baselines/vyukov_mpmc.hpp"
#include "ffq/core/ffq.hpp"
#include "ffq/runtime/dwcas.hpp"

using namespace ffq;

// --- primitive costs --------------------------------------------------------

static void BM_FetchAdd(benchmark::State& state) {
  std::atomic<std::int64_t> x{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.fetch_add(1, std::memory_order_relaxed));
  }
}
BENCHMARK(BM_FetchAdd);

static void BM_CompareExchange(benchmark::State& state) {
  std::atomic<std::int64_t> x{0};
  std::int64_t expected = 0;
  for (auto _ : state) {
    x.compare_exchange_strong(expected, expected + 1,
                              std::memory_order_acq_rel);
    benchmark::DoNotOptimize(expected);
  }
}
BENCHMARK(BM_CompareExchange);

static void BM_DoubleWordCas(benchmark::State& state) {
  runtime::atomic_i64_pair p;
  runtime::atomic_i64_pair::value_type expected{0, 0};
  for (auto _ : state) {
    p.compare_exchange(expected, {expected.first + 1, expected.second + 1});
    benchmark::DoNotOptimize(expected);
  }
}
BENCHMARK(BM_DoubleWordCas);

// --- FFQ variants, uncontended pair cost ------------------------------------

template <typename Q>
static void BM_QueuePair(benchmark::State& state) {
  Q q(1 << 10);
  std::uint64_t v = 1, out;
  for (auto _ : state) {
    q.enqueue(v);
    benchmark::DoNotOptimize(q.dequeue(out));
  }
}

template <typename Q>
static void BM_QueuePairTry(benchmark::State& state) {
  Q q(1 << 10);
  std::uint64_t v = 1, out;
  for (auto _ : state) {
    q.enqueue(v);
    benchmark::DoNotOptimize(q.try_dequeue(out));
  }
}

BENCHMARK_TEMPLATE(BM_QueuePairTry,
                   core::spsc_queue<std::uint64_t, core::layout_aligned>)
    ->Name("BM_FfqSpscPair/aligned");
BENCHMARK_TEMPLATE(BM_QueuePairTry,
                   core::spsc_queue<std::uint64_t, core::layout_compact>)
    ->Name("BM_FfqSpscPair/compact");
BENCHMARK_TEMPLATE(BM_QueuePair,
                   core::spmc_queue<std::uint64_t, core::layout_aligned>)
    ->Name("BM_FfqSpmcPair/aligned");
BENCHMARK_TEMPLATE(BM_QueuePair,
                   core::spmc_queue<std::uint64_t, core::layout_randomized>)
    ->Name("BM_FfqSpmcPair/randomized");
BENCHMARK_TEMPLATE(BM_QueuePair,
                   core::spmc_queue<std::uint64_t, core::layout_aligned_randomized>)
    ->Name("BM_FfqSpmcPair/aligned+randomized");
BENCHMARK_TEMPLATE(BM_QueuePair,
                   core::mpmc_queue<std::uint64_t, core::layout_aligned>)
    ->Name("BM_FfqMpmcPair/aligned");

static void BM_VyukovPair(benchmark::State& state) {
  baselines::vyukov_mpmc_queue<std::uint64_t> q(1 << 10);
  std::uint64_t out;
  for (auto _ : state) {
    q.enqueue(1);
    benchmark::DoNotOptimize(q.try_dequeue(out));
  }
}
BENCHMARK(BM_VyukovPair);

// --- layout index arithmetic -------------------------------------------------

static void BM_IndexIdentity(benchmark::State& state) {
  core::capacity_info cap(1 << 16);
  std::int64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cap.slot<core::layout_aligned>(r++));
  }
}
BENCHMARK(BM_IndexIdentity);

static void BM_IndexRotated(benchmark::State& state) {
  core::capacity_info cap(1 << 16);
  std::int64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cap.slot<core::layout_randomized>(r++));
  }
}
BENCHMARK(BM_IndexRotated);
