// bench_fig6_affinity_throughput — reproduces paper Fig. 6:
//
// "Throughput for different queue sizes and affinity settings (Skylake).
// When executing on two hardware threads on the same core, the
// performance decreases with increasing queue size. When running on
// different cores, the queue benefits from large queue sizes (that
// decouple producer and consumer) and the additional cycles of the
// cores."
//
// Sweep: affinity policy × queue size × number of producer groups (one
// consumer per producer, as in the paper's §V-E runs).
#include <cstdio>

#include "ffq/core/ffq.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/spmc_bench.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/topology.hpp"

using namespace ffq;
using namespace ffq::harness;

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Figure 6 — throughput vs queue size and affinity",
      "FFQ SPMC microbenchmark, one consumer per producer; policies "
      "sibling-HT / same-HT / other-core / no-affinity.");

  const auto topo = runtime::cpu_topology::discover();
  // The paper runs 1..4 producers on a 4-core machine; scale the sweep
  // to the cores available here (at least 1, at most 4 groups).
  const std::size_t max_groups =
      std::min<std::size_t>(4, std::max<std::size_t>(1, topo.num_cores()));

  const runtime::placement_policy policies[] = {
      runtime::placement_policy::sibling_ht, runtime::placement_policy::same_ht,
      runtime::placement_policy::other_core, runtime::placement_policy::none};

  table t({"policy", "groups", "entries", "roundtrips/s", "stddev"});
  for (auto policy : policies) {
    for (std::size_t groups = 1; groups <= max_groups; groups *= 2) {
      for (unsigned lg = 6; lg <= 18; lg += 4) {
        spmc_bench_config cfg;
        cfg.groups = groups;
        cfg.consumers_per_group = 1;
        cfg.submission_capacity = std::size_t{1} << lg;
        cfg.response_capacity = cfg.submission_capacity;
        cfg.policy = policy;
        cfg.items_per_producer = static_cast<std::uint64_t>(
            200000 * cli.scale / static_cast<double>(groups));
        if (cfg.items_per_producer < 1000) cfg.items_per_producer = 1000;
        using q = core::spmc_queue<std::uint64_t, core::layout_aligned>;
        const auto s = run_spmc_bench<q, core::layout_aligned>(cfg, cli.runs);
        t.add_row({runtime::to_string(policy), std::to_string(groups),
                   std::to_string(std::size_t{1} << lg), human_rate(s.mean),
                   human_rate(s.stddev)});
      }
      std::printf("done: %s, %zu group(s)\n", runtime::to_string(policy),
                  groups);
    }
  }

  std::printf("\n%s", t.str().c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  std::printf(
      "\npaper reference: sibling-HT best at small and large queue "
      "sizes; same-HT wins at cache-friendly medium sizes; other-core/"
      "no-affinity benefit from large queues that decouple the threads. "
      "NOTE: on a machine without SMT, sibling-HT degrades to same-HT "
      "(the topology header above shows HT/core).\n");
  write_trace_if_requested(cli);
  return 0;
}
