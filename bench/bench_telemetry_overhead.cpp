// bench_telemetry_overhead — proves the telemetry policy's cost model
// (ISSUE 2 / DESIGN.md §8):
//
//   * OFF is free by construction: `queue_counters<disabled>` is an
//     empty class held through [[no_unique_address]] with no-op inline
//     members, so a disabled-policy queue is byte-identical to the
//     pre-telemetry layout (static_asserts in tests/test_telemetry.cpp)
//     and its hot path compiles to the same code. The disabled rows
//     below ARE the baseline.
//   * ON must stay under 5% on the pairwise workload: every counter
//     lives on a miss/contention path (gap, skip, retry, stall), never
//     on the uncontended enqueue/dequeue fast path, and bumps are
//     relaxed fetch-adds on queue-local lines.
//
// Both policies are instantiated in this one binary — the comparison
// needs no rebuild and is independent of the FFQ_TELEMETRY build mode.
// Think time is disabled (0 ns) so queue-operation cost is the entire
// measurement: the overhead reported here is the worst case, real
// workloads dilute it with actual work.
#include <cstdio>
#include <string>
#include <vector>

#include "ffq/harness/pairwise.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/telemetry/registry.hpp"
#include "ffq/telemetry/telemetry.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

template <typename Q, const char* Name>
struct policy_adapter {
  using queue_type = Q;
  struct context {};
  static const char* name() { return Name; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) {
    q.enqueue(v);
  }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    return q.dequeue(out);
  }
};

constexpr char kSpscOff[] = "spsc/off";
constexpr char kSpscOn[] = "spsc/on";
constexpr char kSpmcOff[] = "spmc/off";
constexpr char kSpmcOn[] = "spmc/on";
constexpr char kMpmcOff[] = "mpmc/off";
constexpr char kMpmcOn[] = "mpmc/on";

template <typename Telemetry>
using spsc_q = core::spsc_queue<std::uint64_t, core::layout_aligned, Telemetry>;
template <typename Telemetry>
using spmc_q = core::spmc_queue<std::uint64_t, core::layout_aligned, Telemetry>;
template <typename Telemetry>
using mpmc_q = core::mpmc_queue<std::uint64_t, core::layout_aligned, Telemetry>;

struct family_result {
  std::string family;
  double off_ns_op = 0.0;
  double on_ns_op = 0.0;
  double overhead_pct = 0.0;
};

template <typename OffAdapter, typename OnAdapter>
family_result measure(const char* family, int threads, const bench_cli& cli) {
  pairwise_config cfg;
  cfg.threads = threads;
  cfg.total_pairs = static_cast<std::uint64_t>(2'000'000 * cli.scale);
  if (cfg.total_pairs < 20000) cfg.total_pairs = 20000;
  cfg.think_min_ns = 0;  // no think time: measure pure queue-op cost
  cfg.think_max_ns = 0;
  cfg.params.capacity = 1 << 16;

  // Interleave OFF/ON runs so slow drift (thermal, noisy neighbours)
  // hits both policies equally, and compare best-of-N: with identical
  // per-op work the fastest observed run is the least-perturbed one, so
  // min-of-N converges on the true cost where a median still carries
  // scheduler noise (this repo's CI containers are 1-2 shared cores).
  std::vector<double> off_ops, on_ops;
  const int reps = std::max(cli.runs, 7);
  for (int r = 0; r < reps; ++r) {
    pairwise_config c = cfg;
    c.seed = cfg.seed + static_cast<std::uint64_t>(r) * 977;
    off_ops.push_back(run_pairwise_once<OffAdapter>(c));
    on_ops.push_back(run_pairwise_once<OnAdapter>(c));
  }

  family_result res;
  res.family = family;
  res.off_ns_op = 1e9 / summarize(off_ops).max;  // max ops/s == min ns/op
  res.on_ns_op = 1e9 / summarize(on_ops).max;
  res.overhead_pct = (res.on_ns_op / res.off_ns_op - 1.0) * 100.0;
  std::printf("done: %s (%d thread%s)\n", family, threads,
              threads == 1 ? "" : "s");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Telemetry overhead — enabled vs disabled counter policy",
      "Pairwise enqueue/dequeue loop with zero think time; both policies "
      "in one binary. disabled == pre-telemetry baseline by construction.");

  std::vector<family_result> results;
  results.push_back(
      measure<policy_adapter<spsc_q<telemetry::disabled>, kSpscOff>,
              policy_adapter<spsc_q<telemetry::enabled>, kSpscOn>>("ffq-spsc",
                                                                   1, cli));
  results.push_back(
      measure<policy_adapter<spmc_q<telemetry::disabled>, kSpmcOff>,
              policy_adapter<spmc_q<telemetry::enabled>, kSpmcOn>>("ffq-spmc",
                                                                   1, cli));
  results.push_back(
      measure<policy_adapter<mpmc_q<telemetry::disabled>, kMpmcOff>,
              policy_adapter<mpmc_q<telemetry::enabled>, kMpmcOn>>("ffq-mpmc",
                                                                   2, cli));

  table t({"queue", "disabled ns/op", "enabled ns/op", "overhead %"});
  bool all_within_budget = true;
  for (const auto& r : results) {
    t.add_row({r.family, fixed(r.off_ns_op, 2), fixed(r.on_ns_op, 2),
               fixed(r.overhead_pct, 2)});
    if (r.overhead_pct >= 5.0) all_within_budget = false;
  }
  std::printf("\n%s", t.str().c_str());
  std::printf("\nbudget: enabled-policy overhead must stay < 5%% -> %s\n",
              all_within_budget ? "PASS" : "FAIL");

  // The enabled-policy runs fed the registry through the pairwise
  // harness; exporting the snapshot demonstrates the full pipeline.
  const auto snap = telemetry::registry::instance().snapshot();
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty() &&
      t.write_json(cli.json_path, "telemetry_overhead",
                   snap.empty() ? nullptr : &snap)) {
    std::printf("json written to %s\n", cli.json_path.c_str());
  }
  if (!cli.metrics_path.empty() && snap.write_json_file(cli.metrics_path)) {
    std::printf("metrics written to %s\n", cli.metrics_path.c_str());
  }
  return all_within_budget ? 0 : 1;
}
