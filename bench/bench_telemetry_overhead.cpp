// bench_telemetry_overhead — proves the telemetry policy's cost model
// (ISSUE 2 / DESIGN.md §8):
//
//   * OFF is free by construction: `queue_counters<disabled>` is an
//     empty class held through [[no_unique_address]] with no-op inline
//     members, so a disabled-policy queue is byte-identical to the
//     pre-telemetry layout (static_asserts in tests/test_telemetry.cpp)
//     and its hot path compiles to the same code. The disabled rows
//     below ARE the baseline.
//   * ON must stay under 5% on the pairwise workload: every counter
//     lives on a miss/contention path (gap, skip, retry, stall), never
//     on the uncontended enqueue/dequeue fast path, and bumps are
//     relaxed fetch-adds on queue-local lines.
//
// Both policies are instantiated in this one binary — the comparison
// needs no rebuild and is independent of the FFQ_TELEMETRY build mode.
// Think time is disabled (0 ns) so queue-operation cost is the entire
// measurement: the overhead reported here is the worst case, real
// workloads dilute it with actual work.
#include <cstdio>
#include <string>
#include <vector>

#include "ffq/harness/pairwise.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/telemetry/registry.hpp"
#include "ffq/telemetry/telemetry.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

template <typename Q, const char* Name>
struct policy_adapter {
  using queue_type = Q;
  struct context {};
  static const char* name() { return Name; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) {
    q.enqueue(v);
  }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    return q.dequeue(out);
  }
};

constexpr char kSpscOff[] = "spsc/off";
constexpr char kSpscOn[] = "spsc/on";
constexpr char kSpmcOff[] = "spmc/off";
constexpr char kSpmcOn[] = "spmc/on";
constexpr char kMpmcOff[] = "mpmc/off";
constexpr char kMpmcOn[] = "mpmc/on";

template <typename Telemetry>
using spsc_q = core::spsc_queue<std::uint64_t, core::layout_aligned, Telemetry>;
template <typename Telemetry>
using spmc_q = core::spmc_queue<std::uint64_t, core::layout_aligned, Telemetry>;
template <typename Telemetry>
using mpmc_q = core::mpmc_queue<std::uint64_t, core::layout_aligned, Telemetry>;

struct family_result {
  std::string family;
  double off_ns_med = 0.0;  ///< median ns/op, disabled policy
  double on_ns_med = 0.0;   ///< median ns/op, enabled policy
  double off_ns_min = 0.0, off_ns_max = 0.0;  ///< min/max spread
  double on_ns_min = 0.0, on_ns_max = 0.0;
  double overhead_pct = 0.0;  ///< from the medians

  /// The ON median landing inside the OFF policy's own min/max spread
  /// means the measured difference is indistinguishable from run-to-run
  /// noise of a single binary.
  bool within_noise() const {
    return on_ns_med >= off_ns_min && on_ns_med <= off_ns_max;
  }
};

template <typename OffAdapter, typename OnAdapter>
family_result measure(const char* family, int threads, const bench_cli& cli) {
  pairwise_config cfg;
  cfg.threads = threads;
  cfg.total_pairs = static_cast<std::uint64_t>(2'000'000 * cli.scale);
  if (cfg.total_pairs < 20000) cfg.total_pairs = 20000;
  cfg.think_min_ns = 0;  // no think time: measure pure queue-op cost
  cfg.think_max_ns = 0;
  cfg.params.capacity = 1 << 16;

  // Interleave OFF/ON runs so slow drift (thermal, noisy neighbours)
  // hits both policies equally, and compare median-of-N (N >= 5): the
  // earlier best-of-N comparison routinely reported *negative* overhead,
  // because the minimum is an extreme-value statistic — whichever policy
  // got lucky with the least-perturbed run "won" regardless of its true
  // cost. The median is robust against both tails, and the min/max
  // spread is reported alongside so residual scheduler noise (this
  // repo's CI containers are 1-2 shared cores) is visible in the table
  // instead of silently baked into a single point estimate.
  std::vector<double> off_ops, on_ops;
  const int reps = std::max(cli.runs, 5);
  for (int r = 0; r < reps; ++r) {
    pairwise_config c = cfg;
    c.seed = cfg.seed + static_cast<std::uint64_t>(r) * 977;
    off_ops.push_back(run_pairwise_once<OffAdapter>(c));
    on_ops.push_back(run_pairwise_once<OnAdapter>(c));
  }

  const auto off = summarize(off_ops);
  const auto on = summarize(on_ops);
  family_result res;
  res.family = family;
  res.off_ns_med = 1e9 / off.median;
  res.on_ns_med = 1e9 / on.median;
  res.off_ns_min = 1e9 / off.max;  // max ops/s == min ns/op
  res.off_ns_max = 1e9 / off.min;
  res.on_ns_min = 1e9 / on.max;
  res.on_ns_max = 1e9 / on.min;
  res.overhead_pct = (res.on_ns_med / res.off_ns_med - 1.0) * 100.0;
  std::printf("done: %s (%d thread%s)\n", family, threads,
              threads == 1 ? "" : "s");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Telemetry overhead — enabled vs disabled counter policy",
      "Pairwise enqueue/dequeue loop with zero think time; both policies "
      "in one binary. disabled == pre-telemetry baseline by construction.");

  std::vector<family_result> results;
  results.push_back(
      measure<policy_adapter<spsc_q<telemetry::disabled>, kSpscOff>,
              policy_adapter<spsc_q<telemetry::enabled>, kSpscOn>>("ffq-spsc",
                                                                   1, cli));
  results.push_back(
      measure<policy_adapter<spmc_q<telemetry::disabled>, kSpmcOff>,
              policy_adapter<spmc_q<telemetry::enabled>, kSpmcOn>>("ffq-spmc",
                                                                   1, cli));
  results.push_back(
      measure<policy_adapter<mpmc_q<telemetry::disabled>, kMpmcOff>,
              policy_adapter<mpmc_q<telemetry::enabled>, kMpmcOn>>("ffq-mpmc",
                                                                   2, cli));

  table t({"queue", "disabled ns/op", "disabled min-max", "enabled ns/op",
           "enabled min-max", "overhead %", "within noise"});
  bool all_within_budget = true;
  for (const auto& r : results) {
    t.add_row({r.family, fixed(r.off_ns_med, 2),
               fixed(r.off_ns_min, 2) + "-" + fixed(r.off_ns_max, 2),
               fixed(r.on_ns_med, 2),
               fixed(r.on_ns_min, 2) + "-" + fixed(r.on_ns_max, 2),
               fixed(r.overhead_pct, 2), r.within_noise() ? "yes" : "no"});
    // The budget gate: the median overhead must stay under 5%, or the
    // difference must be within the disabled policy's own run-to-run
    // spread (a noisy box can push any point estimate past a few %).
    if (r.overhead_pct >= 5.0 && !r.within_noise()) all_within_budget = false;
  }
  std::printf("\n%s", t.str().c_str());
  std::printf("\nbudget: enabled-policy median overhead must stay < 5%% "
              "(or within the disabled policy's spread) -> %s\n",
              all_within_budget ? "PASS" : "FAIL");

  // The enabled-policy runs fed the registry through the pairwise
  // harness; exporting the snapshot demonstrates the full pipeline.
  const auto snap = telemetry::registry::instance().snapshot();
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty() &&
      t.write_json(cli.json_path, "telemetry_overhead",
                   snap.empty() ? nullptr : &snap)) {
    std::printf("json written to %s\n", cli.json_path.c_str());
  }
  if (!cli.metrics_path.empty() && snap.write_json_file(cli.metrics_path)) {
    std::printf("metrics written to %s\n", cli.metrics_path.c_str());
  }
  write_trace_if_requested(cli, snap.empty() ? nullptr : &snap);
  return all_within_budget ? 0 : 1;
}
