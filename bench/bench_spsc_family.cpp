// bench_spsc_family — extra ablation (not a paper figure): head-to-head
// of the §II related-work SPSC queues against FFQ's SPSC variant.
//
// Workload: one producer streams 64-bit values to one consumer through a
// bounded ring; throughput = items transferred per second. This isolates
// the control-variable traffic differences the related-work section
// discusses (shared counters vs batched counters vs in-band signalling
// vs FFQ's rank/gap protocol).
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "ffq/baselines/baselines.hpp"
#include "ffq/core/ffq.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/timing.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

/// Generic streaming driver: `Enq(q, v)->bool try`, `Deq(q, &v)->bool`,
/// `Flush(q)` at stream end.
template <typename Q, typename Enq, typename Deq, typename Flush>
double stream_once(Q& q, std::uint64_t items, Enq enq, Deq deq, Flush flush) {
  runtime::spin_barrier barrier(3);
  runtime::time_window_recorder window(2);
  std::thread consumer([&] {
    barrier.arrive_and_wait();
    window.mark_start(0);
    std::uint64_t out;
    std::uint64_t received = 0;
    runtime::yielding_backoff bo;
    while (received < items) {
      if (deq(q, out)) {
        ++received;
        bo.reset();
      } else {
        bo.pause();
      }
    }
    window.mark_end(0);
    barrier.arrive_and_wait();
  });
  std::thread producer([&] {
    barrier.arrive_and_wait();
    window.mark_start(1);
    runtime::yielding_backoff bo;
    for (std::uint64_t i = 1; i <= items; ++i) {
      while (!enq(q, i)) bo.pause();
    }
    flush(q);
    window.mark_end(1);
    barrier.arrive_and_wait();
  });
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  producer.join();
  consumer.join();
  return static_cast<double>(items) / window.seconds();
}

template <typename MakeQ, typename Enq, typename Deq, typename Flush>
void bench(table& t, const char* name, const bench_cli& cli, MakeQ make,
           Enq enq, Deq deq, Flush flush) {
  const std::uint64_t items =
      static_cast<std::uint64_t>(2'000'000 * cli.scale);
  std::vector<double> samples;
  for (int r = 0; r < cli.runs; ++r) {
    auto q = make();
    samples.push_back(stream_once(*q, std::max<std::uint64_t>(items, 10000),
                                  enq, deq, flush));
  }
  const auto s = summarize(samples);
  t.add_row({name, human_rate(s.mean) + "items/s", human_rate(s.stddev)});
  std::printf("done: %s\n", name);
}

constexpr std::size_t kCap = 1 << 12;

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "SPSC family ablation (extra; relates to paper §II)",
      "1 producer -> 1 consumer streaming through a 4096-entry ring.");

  table t({"queue", "throughput", "stddev"});

  bench(t, "lamport", cli,
        [] { return std::make_unique<baselines::lamport_queue<std::uint64_t>>(kCap); },
        [](auto& q, std::uint64_t v) { return q.try_enqueue(v); },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto&) {});

  bench(t, "fastforward", cli,
        [] { return std::make_unique<baselines::fastforward_queue<std::uint64_t>>(kCap); },
        [](auto& q, std::uint64_t v) { return q.try_enqueue(v); },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto&) {});

  bench(t, "mcringbuffer", cli,
        [] { return std::make_unique<baselines::mcring_queue<std::uint64_t>>(kCap, 64); },
        [](auto& q, std::uint64_t v) { return q.try_enqueue(v); },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto& q) { q.flush_producer(); });

  bench(t, "b-queue", cli,
        [] { return std::make_unique<baselines::bqueue<std::uint64_t>>(kCap, 64); },
        [](auto& q, std::uint64_t v) { return q.try_enqueue(v); },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto&) {});

  bench(t, "batchqueue", cli,
        [] { return std::make_unique<baselines::batchqueue<std::uint64_t>>(kCap); },
        [](auto& q, std::uint64_t v) { return q.try_enqueue(v); },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto& q) {
          while (!q.flush_producer()) std::this_thread::yield();
        });

  bench(t, "ffq-spsc", cli,
        [] {
          return std::make_unique<
              core::spsc_queue<std::uint64_t, core::layout_aligned>>(kCap);
        },
        [](auto& q, std::uint64_t v) {
          q.enqueue(v);  // wait-free under flow control
          return true;
        },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto&) {});

  bench(t, "ffq-spsc-compact", cli,
        [] {
          return std::make_unique<
              core::spsc_queue<std::uint64_t, core::layout_compact>>(kCap);
        },
        [](auto& q, std::uint64_t v) {
          q.enqueue(v);
          return true;
        },
        [](auto& q, std::uint64_t& o) { return q.try_dequeue(o); },
        [](auto&) {});

  std::printf("\n%s", t.str().c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  write_trace_if_requested(cli);
  return 0;
}
