// bench_batch_ops — batched bulk operations ablation (DESIGN.md §5.8,
// not a paper figure).
//
// FFQ's dequeue cost is dominated by the per-item fetch-and-increment on
// the shared head (§III-A — the very operation the SPSC specialization
// removes). dequeue_bulk claims a *run* of ranks with one fetch-and-add
// and enqueue_bulk publishes tail once per batch, so the coherence
// traffic on the control lines drops by the batch factor — the same
// amortization MCRingBuffer and BatchQueue apply to their SPSC control
// variables (Torquati; Preud'homme et al.).
//
// Sweep: batch size {1, 4, 16, 64} × consumers {1, 2, 4, 8} on a
// producer→consumers fan-out of 64-bit integers. batch = 1 runs the
// scalar enqueue()/dequeue() paths, so each row's speedup against the
// batch-1 row of the same consumer count is the direct amortization win.
// MCRingBuffer (control-update batching) and BatchQueue (half-buffer
// publication) run as single-consumer reference lines.
//
// Output: the standard table/CSV plus the JSON report (--json) consumed
// by BENCH_batch_ops.json, the repo's perf-trajectory baseline.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "ffq/baselines/spsc/batchqueue.hpp"
#include "ffq/baselines/spsc/mcringbuffer.hpp"
#include "ffq/core/ffq.hpp"
#include "ffq/harness/driver.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/timing.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

/// One fan-out run over an FFQ-family queue: a producer streams `items`
/// integers, `consumers` threads drain them; batch > 1 uses the bulk
/// APIs on both sides. Returns items/second.
template <typename Queue>
double run_ffq_fanout_once(std::size_t consumers, std::size_t batch,
                           std::uint64_t items, std::size_t capacity) {
  Queue q(capacity);
  const std::size_t total_threads = consumers + 1;
  ffq::runtime::spin_barrier barrier(total_threads + 1);
  ffq::runtime::time_window_recorder window(total_threads);
  std::atomic<std::uint64_t> drained{0};

  std::vector<std::thread> threads;
  threads.reserve(total_threads);
  for (std::size_t ci = 0; ci < consumers; ++ci) {
    threads.emplace_back([&, ci] {
      barrier.arrive_and_wait();
      window.mark_start(ci);
      std::uint64_t count = 0;
      if (batch <= 1) {
        std::uint64_t v;
        while (q.dequeue(v)) ++count;
      } else {
        std::vector<std::uint64_t> buf(batch);
        std::size_t n;
        while ((n = q.dequeue_bulk(buf.data(), batch)) > 0) count += n;
      }
      window.mark_end(ci);
      drained.fetch_add(count, std::memory_order_relaxed);
      barrier.arrive_and_wait();
    });
  }
  threads.emplace_back([&] {
    const std::size_t slot = consumers;
    barrier.arrive_and_wait();
    window.mark_start(slot);
    // Implicit flow control: stay under half the ring so the producer
    // never reaches the gap-flood / full-ring regime.
    const std::int64_t high_water =
        static_cast<std::int64_t>(capacity) / 2;
    std::vector<std::uint64_t> buf(batch);
    ffq::runtime::yielding_backoff idle;
    std::uint64_t next = 1;
    while (next <= items) {
      if (q.approx_size() > high_water) {
        idle.pause();
        continue;
      }
      idle.reset();
      if (batch <= 1) {
        q.enqueue(next);
        ++next;
      } else {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(batch, items - next + 1);
        for (std::uint64_t i = 0; i < chunk; ++i) {
          buf[static_cast<std::size_t>(i)] = next + i;
        }
        q.enqueue_bulk(buf.data(), static_cast<std::size_t>(chunk));
        next += chunk;
      }
    }
    q.close();
    window.mark_end(slot);
    barrier.arrive_and_wait();
  });

  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  assert(drained.load() == items && "conservation");
  (void)drained;
  return static_cast<double>(items) / window.seconds();
}

/// Single-consumer reference line over a try-API SPSC baseline.
/// `Flush` force-publishes the producer side at stream end.
template <typename Queue, typename Flush>
double run_spsc_baseline_once(Queue& q, std::uint64_t items, Flush&& flush) {
  ffq::runtime::spin_barrier barrier(3);
  ffq::runtime::time_window_recorder window(2);

  std::thread consumer([&] {
    barrier.arrive_and_wait();
    window.mark_start(0);
    std::uint64_t v, count = 0;
    ffq::runtime::yielding_backoff bo;
    while (count < items) {
      if (q.try_dequeue(v)) {
        ++count;
        bo.reset();
      } else {
        bo.pause();
      }
    }
    window.mark_end(0);
    barrier.arrive_and_wait();
  });
  std::thread producer([&] {
    barrier.arrive_and_wait();
    window.mark_start(1);
    ffq::runtime::yielding_backoff bo;
    for (std::uint64_t i = 1; i <= items;) {
      if (q.try_enqueue(i)) {
        ++i;
        bo.reset();
      } else {
        bo.pause();
      }
    }
    flush();
    window.mark_end(1);
    barrier.arrive_and_wait();
  });

  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  consumer.join();
  producer.join();
  return static_cast<double>(items) / window.seconds();
}

run_stats sample(int runs, const std::function<double()>& once) {
  std::vector<double> s;
  s.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) s.push_back(once());
  return summarize(s);
}

void add_row(table& t, const char* queue, std::size_t batch,
             std::size_t consumers, const run_stats& s) {
  t.add_row({queue, std::to_string(batch), std::to_string(consumers),
             fixed(s.mean, 0), fixed(s.stddev, 0),
             oversubscribed(static_cast<int>(consumers) + 1) ? "yes" : "no"});
  std::printf("done: %-14s batch=%-3zu consumers=%zu  %s items/s\n", queue,
              batch, consumers, human_rate(s.mean).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "batch_ops — bulk operation ablation",
      "Producer→consumers fan-out; batch sweeps amortize the head "
      "fetch-and-add (dequeue_bulk) and tail publication (enqueue_bulk) "
      "against the scalar FFQ paths and the SPSC batching baselines.");

  std::uint64_t items = static_cast<std::uint64_t>(1'000'000 * cli.scale);
  if (items < 10000) items = 10000;
  constexpr std::size_t kCapacity = 1 << 16;
  const std::vector<std::size_t> batches = {1, 4, 16, 64};
  const std::vector<std::size_t> consumer_counts = {1, 2, 4, 8};

  table t({"queue", "batch", "consumers", "items_per_sec", "stddev",
           "oversubscribed"});

  using spmc = core::spmc_queue<std::uint64_t, core::layout_aligned>;
  using spsc = core::spsc_queue<std::uint64_t, core::layout_aligned>;

  for (std::size_t consumers : consumer_counts) {
    for (std::size_t batch : batches) {
      const auto s = sample(cli.runs, [&] {
        return run_ffq_fanout_once<spmc>(consumers, batch, items, kCapacity);
      });
      add_row(t, "ffq-spmc", batch, consumers, s);
    }
  }

  // SPSC lines: FFQ's own SPSC specialization plus the two batching
  // baselines the amortization argument is borrowed from.
  for (std::size_t batch : batches) {
    const auto s = sample(cli.runs, [&] {
      return run_ffq_fanout_once<spsc>(1, batch, items, kCapacity);
    });
    add_row(t, "ffq-spsc", batch, 1, s);
  }
  for (std::size_t batch : batches) {
    const auto s = sample(cli.runs, [&] {
      baselines::mcring_queue<std::uint64_t> q(kCapacity, batch);
      return run_spsc_baseline_once(q, items, [&] { q.flush_producer(); });
    });
    add_row(t, "mcringbuffer", batch, 1, s);
  }
  {
    const auto s = sample(cli.runs, [&] {
      baselines::batchqueue<std::uint64_t> q(kCapacity);
      return run_spsc_baseline_once(q, items, [&] {
        while (!q.flush_producer()) std::this_thread::yield();
      });
    });
    // BatchQueue's batch is its half-buffer; report it as such.
    add_row(t, "batchqueue", kCapacity / 2, 1, s);
  }

  std::printf("\n%s", t.str().c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty() &&
      t.write_json(cli.json_path, "batch_ops")) {
    std::printf("json written to %s\n", cli.json_path.c_str());
  }
  std::printf(
      "\nexpectation: ffq-spmc batch>=16 at 4+ consumers >= 1.5x its "
      "batch-1 row (head fetch-add amortized across the claimed run); "
      "ffq-spsc gains come from the single tail publication only, so "
      "they are smaller; mcringbuffer/batchqueue bound what control-"
      "variable batching buys a pure SPSC design.\n");
  write_trace_if_requested(cli);
  return 0;
}
