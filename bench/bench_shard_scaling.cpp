// bench_shard_scaling — producer-scaling ablation for the shard fabric
// (DESIGN.md §11, not a paper figure).
//
// FFQ^m pays a DWCAS per enqueue and every producer contends on the one
// shared tail (paper §III-B). The shard fabric gives each producer its
// own FFQ^s ring — enqueue is the wait-free Algorithm-1 path, and the
// only cross-producer sharing left is the consumers' shard scheduler.
// This bench sweeps producer count with the consumer side held fixed
// and plots both designs over the *same total cell footprint*
// (shard_capacity = capacity / producers), so the comparison isolates
// the enqueue-side contention model rather than memory budget.
//
// Expectation (the acceptance criterion CHANGES.md tracks): the fabric
// meets or beats ffq-mpmc at 4+ producers. At producers = 1 the fabric
// is a thin wrapper over one FFQ^s, so it bounds the scheduler's
// overhead; the ordered line prices the epoch stamp + k-way merge.
//
// Output: standard table/CSV plus the JSON report (--json) committed as
// BENCH_shard_scaling.json, the repo's perf-trajectory baseline.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"
#include "ffq/harness/driver.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/timing.hpp"
#include "ffq/shard/shard.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

constexpr std::size_t kConsumers = 2;
constexpr std::size_t kBatch = 64;
constexpr std::size_t kCapacity = 1 << 16;

/// One producers→consumers run over ffq-mpmc. All producers share the
/// queue's DWCAS tail; consumers drain through dequeue_bulk. Returns
/// items/second over the union of thread windows.
double run_mpmc_once(std::size_t producers, std::uint64_t items) {
  core::mpmc_queue<std::uint64_t, core::layout_aligned> q(kCapacity);
  const std::size_t total_threads = producers + kConsumers;
  ffq::runtime::spin_barrier barrier(total_threads + 1);
  ffq::runtime::time_window_recorder window(total_threads);
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::size_t> live_producers{producers};
  const std::uint64_t share = items / producers;

  std::vector<std::thread> threads;
  threads.reserve(total_threads);
  for (std::size_t ci = 0; ci < kConsumers; ++ci) {
    threads.emplace_back([&, ci] {
      barrier.arrive_and_wait();
      window.mark_start(ci);
      std::vector<std::uint64_t> buf(kBatch);
      std::uint64_t count = 0;
      std::size_t n;
      while ((n = q.dequeue_bulk(buf.data(), kBatch)) > 0) count += n;
      window.mark_end(ci);
      drained.fetch_add(count, std::memory_order_relaxed);
      barrier.arrive_and_wait();
    });
  }
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t slot = kConsumers + p;
      barrier.arrive_and_wait();
      window.mark_start(slot);
      // Implicit flow control: stay under half the ring so producers
      // never reach the gap-flood / full-ring regime (same discipline
      // as bench_batch_ops).
      const std::int64_t high_water =
          static_cast<std::int64_t>(kCapacity) / 2;
      ffq::runtime::yielding_backoff idle;
      for (std::uint64_t i = 0; i < share;) {
        if (q.approx_size() > high_water) {
          idle.pause();
          continue;
        }
        idle.reset();
        q.enqueue(p * share + i);
        ++i;
      }
      if (live_producers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        q.close();
      }
      window.mark_end(slot);
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  const std::uint64_t expect = share * producers;
  assert(drained.load() == expect && "conservation");
  (void)drained;
  return static_cast<double>(expect) / window.seconds();
}

/// One producers→consumers run over the shard fabric. Each producer
/// flow-controls against its *own* shard (the only ring its enqueues
/// can fill); consumers drain through the scheduler's bulk path.
template <bool Ordered>
double run_fabric_once(std::size_t producers, std::uint64_t items) {
  const std::size_t shard_cap =
      std::max<std::size_t>(kCapacity / producers, 1024);
  shard::fabric<std::uint64_t, Ordered> fab(producers, shard_cap);
  const std::size_t total_threads = producers + kConsumers;
  ffq::runtime::spin_barrier barrier(total_threads + 1);
  ffq::runtime::time_window_recorder window(total_threads);
  std::atomic<std::uint64_t> drained{0};
  std::atomic<std::size_t> live_producers{producers};
  const std::uint64_t share = items / producers;

  std::vector<std::thread> threads;
  threads.reserve(total_threads);
  for (std::size_t ci = 0; ci < kConsumers; ++ci) {
    threads.emplace_back([&, ci] {
      barrier.arrive_and_wait();
      window.mark_start(ci);
      auto c = fab.consumer();
      std::vector<std::uint64_t> buf(kBatch);
      std::uint64_t count = 0;
      std::size_t n;
      while ((n = c.dequeue_bulk(buf.data(), kBatch)) > 0) count += n;
      window.mark_end(ci);
      drained.fetch_add(count, std::memory_order_relaxed);
      barrier.arrive_and_wait();
    });
  }
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t slot = kConsumers + p;
      barrier.arrive_and_wait();
      window.mark_start(slot);
      auto prod = fab.producer(p);
      const std::int64_t high_water =
          static_cast<std::int64_t>(shard_cap) / 2;
      ffq::runtime::yielding_backoff idle;
      for (std::uint64_t i = 0; i < share;) {
        if (fab.shard(p).approx_size() > high_water) {
          idle.pause();
          continue;
        }
        idle.reset();
        prod.enqueue(p * share + i);
        ++i;
      }
      if (live_producers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        fab.close();
      }
      window.mark_end(slot);
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  const std::uint64_t expect = share * producers;
  assert(drained.load() == expect && "conservation");
  (void)drained;
  return static_cast<double>(expect) / window.seconds();
}

run_stats sample(int runs, const std::function<double()>& once) {
  std::vector<double> s;
  s.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) s.push_back(once());
  return summarize(s);
}

void add_row(table& t, const char* queue, std::size_t producers,
             const run_stats& s) {
  t.add_row({queue, std::to_string(producers), std::to_string(kConsumers),
             fixed(s.mean, 0), fixed(s.stddev, 0),
             oversubscribed(static_cast<int>(producers + kConsumers)) ? "yes"
                                                                      : "no"});
  std::printf("done: %-18s producers=%zu consumers=%zu  %s items/s\n", queue,
              producers, kConsumers, human_rate(s.mean).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "shard_scaling — fabric vs FFQ^m at producer scale",
      "Producers→2-consumer fan-in; ffq-mpmc shares one DWCAS tail while "
      "the fabric gives each producer a private FFQ^s shard over the same "
      "total cell footprint (shard_capacity = capacity / producers).");

  std::uint64_t items = static_cast<std::uint64_t>(1'000'000 * cli.scale);
  if (items < 10000) items = 10000;
  const std::vector<std::size_t> producer_counts = {1, 2, 4, 8};

  table t({"queue", "producers", "consumers", "items_per_sec", "stddev",
           "oversubscribed"});

  std::vector<double> mpmc_mean(producer_counts.size());
  std::vector<double> fabric_mean(producer_counts.size());
  for (std::size_t i = 0; i < producer_counts.size(); ++i) {
    const std::size_t producers = producer_counts[i];
    auto s = sample(cli.runs, [&] { return run_mpmc_once(producers, items); });
    mpmc_mean[i] = s.mean;
    add_row(t, "ffq-mpmc", producers, s);

    s = sample(cli.runs,
               [&] { return run_fabric_once<false>(producers, items); });
    fabric_mean[i] = s.mean;
    add_row(t, "ffq-shard", producers, s);

    s = sample(cli.runs,
               [&] { return run_fabric_once<true>(producers, items); });
    add_row(t, "ffq-shard-ordered", producers, s);
  }

  std::printf("\n%s", t.str().c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty() && t.write_json(cli.json_path, "shard_scaling")) {
    std::printf("json written to %s\n", cli.json_path.c_str());
  }

  std::printf("\nfabric / ffq-mpmc throughput ratio:\n");
  for (std::size_t i = 0; i < producer_counts.size(); ++i) {
    std::printf("  producers=%zu  %.2fx\n", producer_counts[i],
                fabric_mean[i] / mpmc_mean[i]);
  }
  std::printf(
      "\nexpectation: ffq-shard >= ffq-mpmc at 4+ producers (each enqueue "
      "is the wait-free Algorithm-1 path on a private ring instead of a "
      "contended DWCAS); ffq-shard-ordered trails unordered by the epoch "
      "fetch-add plus the k-way merge's per-item shard probe.\n");
  write_trace_if_requested(cli);
  return 0;
}
