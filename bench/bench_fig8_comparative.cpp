// bench_fig8_comparative — reproduces paper Fig. 8:
//
// "Throughput of the benchmark from [21] ... all threads repeatedly
// execute pairs of enqueue and dequeue operations on a single queue, for
// a total of 10^7 pairs partitioned evenly among all threads. We hence
// use the MPMC variant of FFQ ... Between two operations, the benchmark
// adds an arbitrary delay (between 50 and 150 ns). ... We also indicate
// in the graphs the performance of the SPSC and SPMC variants of FFQ
// when running with a single thread."
//
// Queues: ffq-mpmc, wfqueue, lcrq, ccqueue, msqueue, htm (+ single-
// thread ffq-spsc / ffq-spmc reference lines).
//
// Default workload is 10^6 pairs (×--scale to reach the paper's 10^7):
// the shape — who wins at which thread count — is what the figure is
// about, and it stabilizes well below 10^7 pairs on one machine.
#include <cstdio>
#include <string>
#include <vector>

#include "ffq/harness/driver.hpp"
#include "ffq/harness/pairwise.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/telemetry/registry.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

template <typename Adapter>
void bench_queue(table& t, const bench_cli& cli,
                 const std::vector<int>& thread_counts) {
  for (int threads : thread_counts) {
    pairwise_config cfg;
    cfg.threads = threads;
    cfg.total_pairs =
        static_cast<std::uint64_t>(1'000'000 * cli.scale);
    if (cfg.total_pairs < 10000) cfg.total_pairs = 10000;
    cfg.params.capacity = 1 << 16;
    const auto s = run_pairwise<Adapter>(cfg, cli.runs);
    t.add_row({Adapter::name(), std::to_string(threads),
               human_rate(s.mean) + "ops/s", human_rate(s.stddev),
               oversubscribed(threads) ? "yes" : "no"});
  }
  std::printf("done: %s\n", Adapter::name());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Figure 8 — comparative study (benchmark of Yang & Mellor-Crummey)",
      "Pairs of enqueue/dequeue split across threads, 50-150 ns think "
      "time; MPMC variant of every queue.");
  std::printf("think-time cost: %.0f ns/draw (target mean 100 ns)\n\n",
              measure_think_overhead_ns(50, 150));

  const std::vector<int> threads = {1, 2, 4, 8};

  table t({"queue", "threads", "throughput", "stddev", "oversubscribed"});

  // Single-thread reference lines (paper: "The throughput values
  // indicated for SPSC and SPMC are for single-threaded runs").
  bench_queue<ffq_spsc_adapter<>>(t, cli, {1});
  bench_queue<ffq_spmc_adapter<>>(t, cli, {1});

  bench_queue<ffq_mpmc_adapter<>>(t, cli, threads);
  bench_queue<wf_adapter>(t, cli, threads);
  bench_queue<lcrq_adapter>(t, cli, threads);
  bench_queue<cc_adapter>(t, cli, threads);
  bench_queue<ms_adapter>(t, cli, threads);
  bench_queue<htm_adapter>(t, cli, threads);

  std::printf("\n%s", t.str().c_str());

  // The pairwise harness folds every FFQ queue's event counters into the
  // registry as the queue dies; export them alongside the table. In a
  // default (FFQ_TELEMETRY=OFF) build the snapshot is empty.
  const auto snap = telemetry::registry::instance().snapshot();
  if (!snap.counters.empty()) {
    std::printf("\nqueue event counters (telemetry):\n");
    for (const auto& [key, value] : snap.counters) {
      std::printf("  %-48s %llu\n", key.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty() &&
      t.write_json(cli.json_path, "fig8_comparative",
                   snap.empty() ? nullptr : &snap)) {
    std::printf("json written to %s\n", cli.json_path.c_str());
  }
  if (!cli.metrics_path.empty() && snap.write_json_file(cli.metrics_path)) {
    std::printf("metrics written to %s\n", cli.metrics_path.c_str());
  }
  write_trace_if_requested(cli, snap.empty() ? nullptr : &snap);
  std::printf(
      "\npaper reference (Skylake/Haswell/P8): FFQ^m consistently among "
      "the fastest at every thread count; SPSC > SPMC > MPMC single-"
      "thread (SPMC ~50%% over MPMC); ccqueue best sequentially but "
      "drops with threads; wfqueue strongest FAA competitor; msqueue "
      "worst; HTM fine at 1 thread, collapsing under concurrency.\n");
  return 0;
}
