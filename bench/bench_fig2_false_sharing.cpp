// bench_fig2_false_sharing — reproduces paper Fig. 2:
//
// "Impact of alignment and randomization on throughput with the MPMC
// variant of FFQ for a single producer and consumer, one producer with 8
// consumers, and 8 producers with 8 consumers per producer. Throughput
// is normalized to the non-aligned variant."
//
// All runs use the MPMC variant of FFQ (as in the paper); the 8-producer
// configuration uses 8 distinct queues with 8 consumers each.
//
// Paper shapes to look for:
//  * 1p/1c: neither alignment nor randomization helps (compact wins
//    slightly on cache footprint);
//  * 1p/8c: alignment helps, randomization helps, the combination wins;
//  * 8p/8c: alignment helps, randomization becomes counter-productive.
#include <cstdio>

#include "ffq/core/ffq.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/spmc_bench.hpp"
#include "ffq/harness/stats.hpp"

using namespace ffq;
using namespace ffq::harness;

namespace {

struct config_row {
  const char* label;
  std::size_t groups;
  std::size_t consumers;
  std::uint64_t items;
};

template <typename Layout>
double measure(const config_row& c, int runs, double scale) {
  spmc_bench_config cfg;
  cfg.groups = c.groups;
  cfg.consumers_per_group = c.consumers;
  cfg.submission_capacity = 1 << 12;
  cfg.response_capacity = 1 << 12;
  cfg.items_per_producer =
      static_cast<std::uint64_t>(static_cast<double>(c.items) * scale);
  if (cfg.items_per_producer < 1000) cfg.items_per_producer = 1000;
  const auto stats =
      run_spmc_bench<core::mpmc_queue<std::uint64_t, Layout>, Layout>(cfg, runs);
  return stats.mean;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench_cli::parse(argc, argv);
  print_experiment_header(
      "Figure 2 — false sharing: alignment x randomization",
      "FFQ^m microbenchmark (submission SPMC interface, MPMC variant); "
      "throughput normalized to the not-aligned layout of each config.");

  // Items tuned per configuration so each cell takes seconds, not
  // minutes, on a small machine; relative results are what matter here.
  const config_row rows[] = {
      {"1p/1c", 1, 1, 400000},
      {"1p/8c", 1, 8, 60000},
      {"8p/8c-each", 8, 8, 8000},
  };

  table t({"config", "not-aligned", "aligned", "randomized", "both",
           "(roundtrips/s @ not-aligned)"});
  for (const auto& r : rows) {
    const double base = measure<core::layout_compact>(r, cli.runs, cli.scale);
    const double aligned = measure<core::layout_aligned>(r, cli.runs, cli.scale);
    const double rnd = measure<core::layout_randomized>(r, cli.runs, cli.scale);
    const double both =
        measure<core::layout_aligned_randomized>(r, cli.runs, cli.scale);
    t.add_row({r.label, fixed(1.0), fixed(aligned / base), fixed(rnd / base),
               fixed(both / base), human_rate(base)});
    std::printf("done: %s\n", r.label);
  }

  std::printf("\n%s", t.str().c_str());
  if (!cli.csv_path.empty() && t.write_csv(cli.csv_path)) {
    std::printf("csv written to %s\n", cli.csv_path.c_str());
  }
  std::printf(
      "\npaper reference (Skylake): 1p/1c ~1.0/0.95/0.9/0.9; 1p/8c "
      "alignment and randomization each help, 'both' best; 8p/8c aligned "
      "best, randomization counter-productive.\n");
  write_trace_if_requested(cli);
  return 0;
}
