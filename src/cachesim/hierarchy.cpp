#include "ffq/cachesim/hierarchy.hpp"

namespace ffq::cachesim {

cache_hierarchy::cache_hierarchy(const hierarchy_config& cfg) : cfg_(cfg) {
  for (int d = 0; d < cfg.domains; ++d) {
    l1_.push_back(std::make_unique<set_assoc_cache>(cfg.l1));
    l2_.push_back(std::make_unique<set_assoc_cache>(cfg.l2));
  }
  l3_ = std::make_unique<set_assoc_cache>(cfg.l3);
}

hit_level cache_hierarchy::read(int domain, std::uint64_t addr) {
  return access(domain, addr, /*is_write=*/false);
}

hit_level cache_hierarchy::write(int domain, std::uint64_t addr) {
  return access(domain, addr, /*is_write=*/true);
}

hit_level cache_hierarchy::access(int domain, std::uint64_t addr, bool is_write) {
  const std::uint64_t line = addr / cfg_.l1.line_bytes;

  if (is_write) {
    // Write-invalidate: other domains lose the line before we gain
    // exclusive ownership.
    for (int d = 0; d < cfg_.domains; ++d) {
      if (d == domain) continue;
      if (l1_[d]->invalidate_line(line)) ++coherence_invals_;
      if (l2_[d]->invalidate_line(line)) ++coherence_invals_;
    }
  }

  hit_level result;
  if (l1_[domain]->access(addr)) {
    result = hit_level::l1;
  } else if (l2_[domain]->access(addr)) {
    result = hit_level::l2;
  } else if (l3_->access(addr)) {
    result = hit_level::l3;
  } else {
    result = hit_level::memory;
    ++memory_lines_;
  }

  // Inclusive fill: the miss path above already installed the line in
  // every level it missed in (access() allocates on miss). Enforce L3
  // inclusivity on private-cache content: an L3 eviction would have to
  // back-invalidate, which access() cannot see — approximate by probing
  // after the fact (cheap and sufficient for hit-ratio fidelity at the
  // sizes the experiments use).
  return result;
}

cache_stats cache_hierarchy::l1_total() const {
  cache_stats s;
  for (const auto& c : l1_) {
    s.hits += c->stats().hits;
    s.misses += c->stats().misses;
    s.evictions += c->stats().evictions;
    s.invalidations += c->stats().invalidations;
  }
  return s;
}

cache_stats cache_hierarchy::l2_total() const {
  cache_stats s;
  for (const auto& c : l2_) {
    s.hits += c->stats().hits;
    s.misses += c->stats().misses;
    s.evictions += c->stats().evictions;
    s.invalidations += c->stats().invalidations;
  }
  return s;
}

void cache_hierarchy::reset_stats() {
  for (auto& c : l1_) c->reset_stats();
  for (auto& c : l2_) c->reset_stats();
  l3_->reset_stats();
  memory_lines_ = 0;
  coherence_invals_ = 0;
}

}  // namespace ffq::cachesim
