#include "ffq/cachesim/queue_trace.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "ffq/core/layout.hpp"

namespace ffq::cachesim {
namespace {

// Approximate load-to-use latencies (cycles), Skylake-class.
constexpr double kLatL1 = 4.0;
constexpr double kLatL2 = 12.0;
constexpr double kLatL3 = 42.0;
constexpr double kLatMem = 200.0;

// Non-memory instructions retired per enqueue or dequeue (index math,
// branches, the atomic op) — only used for the IPC proxy's numerator.
constexpr double kInstrPerOp = 25.0;

struct latency_accumulator {
  double cycles = 0.0;
  std::uint64_t accesses = 0;

  void add(hit_level l) {
    ++accesses;
    switch (l) {
      case hit_level::l1:
        cycles += kLatL1;
        break;
      case hit_level::l2:
        cycles += kLatL2;
        break;
      case hit_level::l3:
        cycles += kLatL3;
        break;
      case hit_level::memory:
        cycles += kLatMem;
        break;
    }
  }
};

}  // namespace

queue_trace_result simulate_queue_trace(const queue_trace_config& cfg) {
  assert(std::has_single_bit(cfg.queue_entries));
  cache_hierarchy hw(cfg.hw);

  const unsigned log2n =
      static_cast<unsigned>(std::bit_width(cfg.queue_entries) - 1);
  const std::uint64_t mask = cfg.queue_entries - 1;

  // Address map: cells first, then one dedicated line per control
  // variable (tail is producer-private, head consumer-private in the
  // SPSC configuration these figures use).
  const std::uint64_t cells_base = 0;
  const std::uint64_t tail_line =
      cells_base + cfg.queue_entries * cfg.cell_bytes + 0 * 64;
  const std::uint64_t head_line =
      cells_base + cfg.queue_entries * cfg.cell_bytes + 1 * 64;

  const int prod_domain = 0;
  const int cons_domain = cfg.shared_domain ? 0 : 1;

  auto cell_addr = [&](std::uint64_t rank) {
    std::uint64_t slot = rank & mask;
    if (cfg.randomized_index) {
      slot = ffq::core::rotate_index(slot, log2n, 4);
    }
    return cells_base + slot * cfg.cell_bytes;
  };

  const std::size_t lag =
      cfg.lag != 0 ? std::min<std::size_t>(cfg.lag, cfg.queue_entries - 1)
                   : std::max<std::size_t>(1, cfg.queue_entries / 2);

  latency_accumulator lat;

  auto produce = [&](std::uint64_t rank) {
    const std::uint64_t c = cell_addr(rank);
    lat.add(hw.read(prod_domain, c));        // rank field: free check
    lat.add(hw.write(prod_domain, c + 16));  // data
    lat.add(hw.write(prod_domain, c));       // rank publish
    lat.add(hw.write(prod_domain, tail_line));
  };
  auto consume = [&](std::uint64_t rank) {
    const std::uint64_t c = cell_addr(rank);
    lat.add(hw.write(cons_domain, head_line));  // head FAA / bump
    lat.add(hw.read(cons_domain, c));           // rank check
    lat.add(hw.read(cons_domain, c + 16));      // data
    lat.add(hw.write(cons_domain, c));          // rank reset
  };

  // Warm-up: fill the pipe to the steady-state lag (not counted).
  for (std::uint64_t r = 0; r < lag; ++r) produce(r);
  hw.reset_stats();
  lat = {};

  // Steady state: producer at r, consumer at r - lag, interleaved like
  // two free-running threads.
  for (std::uint64_t r = lag; r < lag + cfg.items; ++r) {
    produce(r);
    consume(r - lag);
  }

  queue_trace_result out;
  out.l1_hit_ratio = hw.l1_total().hit_ratio();
  out.l2_hit_ratio = hw.l2_total().hit_ratio();
  out.l3_hit_ratio = hw.l3_stats().hit_ratio();
  out.l3_misses = hw.l3_stats().misses;
  out.memory_bytes = hw.memory_bytes();
  out.coherence_invalidations = hw.coherence_invalidations();
  out.cycles_per_pair =
      lat.cycles / static_cast<double>(cfg.items == 0 ? 1 : cfg.items);
  const double instr = 2.0 * kInstrPerOp * static_cast<double>(cfg.items) +
                       static_cast<double>(lat.accesses);
  out.ipc_proxy = lat.cycles == 0.0 ? 0.0 : instr / lat.cycles;
  return out;
}

}  // namespace ffq::cachesim
