#include "ffq/cachesim/cache.hpp"

#include <cassert>

namespace ffq::cachesim {

set_assoc_cache::set_assoc_cache(const cache_geometry& geo)
    : geo_(geo), set_mask_(geo.num_sets() - 1), ways_(geo.num_sets() * geo.ways) {
  assert(geo.valid() && "size must be a power-of-two multiple of line*ways");
}

bool set_assoc_cache::access(std::uint64_t addr, std::uint64_t* evicted_line) {
  if (evicted_line != nullptr) *evicted_line = kInvalid;
  const std::uint64_t line = line_of(addr);
  way_entry* set = &ways_[set_of_line(line) * geo_.ways];
  ++tick_;

  way_entry* victim = &set[0];
  for (std::size_t w = 0; w < geo_.ways; ++w) {
    if (set[w].line == line) {
      set[w].lru = tick_;
      ++stats_.hits;
      return true;
    }
    // Prefer an empty way, else the least recently used.
    if (set[w].line == kInvalid) {
      if (victim->line != kInvalid) victim = &set[w];
    } else if (victim->line != kInvalid && set[w].lru < victim->lru) {
      victim = &set[w];
    }
  }
  ++stats_.misses;
  if (victim->line != kInvalid) {
    ++stats_.evictions;
    if (evicted_line != nullptr) *evicted_line = victim->line;
  }
  victim->line = line;
  victim->lru = tick_;
  return false;
}

bool set_assoc_cache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr / geo_.line_bytes;
  const way_entry* set = &ways_[set_of_line(line) * geo_.ways];
  for (std::size_t w = 0; w < geo_.ways; ++w) {
    if (set[w].line == line) return true;
  }
  return false;
}

bool set_assoc_cache::invalidate_line(std::uint64_t line_addr) {
  way_entry* set = &ways_[set_of_line(line_addr) * geo_.ways];
  for (std::size_t w = 0; w < geo_.ways; ++w) {
    if (set[w].line == line_addr) {
      set[w].line = kInvalid;
      set[w].lru = 0;
      ++stats_.invalidations;
      return true;
    }
  }
  return false;
}

}  // namespace ffq::cachesim
