#include "ffq/shard/placement.hpp"

#include <sstream>

namespace ffq::shard {

std::string placement_plan::summary() const {
  std::ostringstream os;
  os << "policy=" << ffq::runtime::to_string(policy)
     << " shards=" << groups.size();
  for (std::size_t s = 0; s < groups.size(); ++s) {
    os << " s" << s << "=[p:";
    const auto& g = groups[s];
    if (g.producer_cpus.empty()) {
      os << "any";
    } else {
      for (std::size_t i = 0; i < g.producer_cpus.size(); ++i) {
        os << (i ? "," : "") << g.producer_cpus[i];
      }
    }
    os << " c:";
    if (g.consumer_cpus.empty()) {
      os << "any";
    } else {
      for (std::size_t i = 0; i < g.consumer_cpus.size(); ++i) {
        os << (i ? "," : "") << g.consumer_cpus[i];
      }
    }
    os << "]";
  }
  return os.str();
}

placement_plan plan_shards(const ffq::runtime::cpu_topology& topo,
                           ffq::runtime::placement_policy policy,
                           std::size_t shards) {
  placement_plan plan;
  plan.policy = policy;
  if (policy == ffq::runtime::placement_policy::none || shards == 0) {
    return plan;  // advisory-only: leave scheduling to the OS
  }
  plan.groups = ffq::runtime::plan_placement(topo, policy, shards);
  return plan;
}

placement_plan plan_shards(ffq::runtime::placement_policy policy,
                           std::size_t shards) {
  if (policy == ffq::runtime::placement_policy::none || shards == 0) {
    placement_plan plan;
    plan.policy = policy;
    return plan;  // skip the sysfs walk entirely
  }
  return plan_shards(ffq::runtime::cpu_topology::discover(), policy, shards);
}

}  // namespace ffq::shard
