#include "ffq/model/checker.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

namespace ffq::model {

check_result check(const world& initial, std::size_t max_states) {
  check_result res;

  std::unordered_map<std::string, std::int32_t> ids;
  std::vector<std::vector<std::int32_t>> succ;  // forward edges by id
  std::vector<std::uint8_t> terminal;
  std::deque<world> frontier;

  auto intern = [&](const world& w, bool& fresh) {
    auto [it, inserted] = ids.try_emplace(w.encode(),
                                          static_cast<std::int32_t>(ids.size()));
    fresh = inserted;
    if (inserted) {
      succ.emplace_back();
      terminal.push_back(w.all_done() ? 1 : 0);
    }
    return it->second;
  };

  bool fresh = false;
  const std::int32_t root = intern(initial, fresh);
  (void)root;
  frontier.push_back(initial);
  std::deque<std::int32_t> frontier_ids;
  frontier_ids.push_back(0);

  while (!frontier.empty()) {
    if (ids.size() > max_states) {
      res.exhausted = false;
      break;
    }
    world w = std::move(frontier.front());
    frontier.pop_front();
    const std::int32_t id = frontier_ids.front();
    frontier_ids.pop_front();

    if (terminal[static_cast<std::size_t>(id)]) {
      ++res.terminals;
      continue;
    }

    for (std::size_t t = 0; t < w.threads_.size(); ++t) {
      if (w.threads_[t]->done()) continue;
      world next(w);  // deep copy
      next.threads_[t]->step(next);
      ++res.transitions;
      if (!next.violation_.empty()) {
        res.ok = false;
        res.violation = "safety: " + next.violation_;
        res.states = ids.size();
        return res;
      }
      bool is_new = false;
      const std::int32_t nid = intern(next, is_new);
      succ[static_cast<std::size_t>(id)].push_back(nid);
      if (is_new) {
        frontier.push_back(std::move(next));
        frontier_ids.push_back(nid);
      }
    }
  }

  res.states = ids.size();

  if (!res.exhausted) {
    // Truncated graph: cannot soundly run the liveness phase. Report
    // what we know; callers treat this as inconclusive.
    res.ok = res.violation.empty();
    return res;
  }

  // --- liveness: backward reachability from terminal states -------------
  const std::size_t n = succ.size();
  std::vector<std::vector<std::int32_t>> pred(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::int32_t d : succ[s]) {
      pred[static_cast<std::size_t>(d)].push_back(static_cast<std::int32_t>(s));
    }
  }
  std::vector<std::uint8_t> can_finish(n, 0);
  std::deque<std::int32_t> work;
  std::size_t terminal_count = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (terminal[s]) {
      can_finish[s] = 1;
      work.push_back(static_cast<std::int32_t>(s));
      ++terminal_count;
    }
  }
  res.terminals = terminal_count;
  while (!work.empty()) {
    const std::int32_t s = work.front();
    work.pop_front();
    for (std::int32_t p : pred[static_cast<std::size_t>(s)]) {
      if (!can_finish[static_cast<std::size_t>(p)]) {
        can_finish[static_cast<std::size_t>(p)] = 1;
        work.push_back(p);
      }
    }
  }
  std::size_t stuck = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!can_finish[s]) ++stuck;
  }
  if (terminal_count == 0) {
    res.ok = false;
    res.violation = "liveness: no schedule completes at all";
  } else if (stuck > 0) {
    res.ok = false;
    res.violation = "liveness: " + std::to_string(stuck) +
                    " reachable state(s) cannot reach completion "
                    "(lost item or wedged protocol)";
  } else {
    res.ok = true;
  }
  return res;
}

}  // namespace ffq::model
