// watchdog.cpp — liveness sampling, stall classification, and the
// post-mortem dump renderer. Contract in include/ffq/trace/watchdog.hpp.
//
// Lock ordering: the watchdog mutex is taken first, the trace-registry
// mutex (inside for_each_ring / snapshot) second; registry methods never
// call back into the watchdog, so the order is acyclic. The sink runs
// with the watchdog mutex *dropped* so a sink may call dump_now().

#include "ffq/trace/watchdog.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "ffq/trace/registry.hpp"

namespace ffq::trace {

namespace {

/// Severity order for the sticky last_verdict(): protocol violations
/// outrank liveness incidents, which outrank ok.
int severity(verdict v) noexcept {
  switch (v) {
    case verdict::ok: return 0;
    case verdict::stuck_consumer: return 1;
    case verdict::full_ring_livelock: return 2;
    case verdict::stuck_producer: return 3;
    case verdict::lost_rank: return 4;
  }
  return 0;
}

}  // namespace

const char* to_string(verdict v) noexcept {
  switch (v) {
    case verdict::ok: return "ok";
    case verdict::stuck_consumer: return "stuck_consumer";
    case verdict::stuck_producer: return "stuck_producer";
    case verdict::full_ring_livelock: return "full_ring_livelock";
    case verdict::lost_rank: return "lost_rank";
  }
  return "?";
}

watchdog::watchdog() : watchdog(config{}) {}

watchdog::watchdog(config cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.sink) {
    cfg_.sink = [](verdict, const std::string& dump) {
      std::fputs(dump.c_str(), stderr);
    };
  }
  if (!cfg_.clock) {
    cfg_.clock = [] { return std::chrono::steady_clock::now(); };
  }
}

watchdog::~watchdog() { stop(); }

void watchdog::add_probe(queue_probe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.push_back(std::move(probe));
  // Arm the baseline now so sample_once() works without start().
  probe_state st;
  st.last_head = probes_.back().head();
  st.last_progress_at = cfg_.clock();
  states_.push_back(st);
}

void watchdog::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  last_verdict_ = verdict::ok;
  triggers_ = 0;
  const auto now = cfg_.clock();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    states_[i].last_head = probes_[i].head();
    states_[i].last_progress_at = now;
    states_[i].reported = false;
  }
  ring_progress_.clear();
  sampler_ = std::thread([this] { sampler_loop(); });
}

void watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

verdict watchdog::last_verdict() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_verdict_;
}

std::uint64_t watchdog::triggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return triggers_;
}

std::string watchdog::dump_now() {
  std::unique_lock<std::mutex> lock(mu_);
  update_ring_progress(cfg_.clock());
  std::string out;
  if (probes_.empty()) {
    out = render_dump(verdict::ok, static_cast<std::size_t>(-1));
  } else {
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      out += render_dump(classify(probes_[i]), i);
    }
  }
  return out;
}

void watchdog::sampler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    cv_.wait_for(lock, cfg_.sample_interval, [this] { return !running_; });
    if (!running_) break;
    sample_locked(lock);
  }
}

void watchdog::sample_once() {
  std::unique_lock<std::mutex> lock(mu_);
  sample_locked(lock);
}

void watchdog::sample_locked(std::unique_lock<std::mutex>& lock) {
  const auto now = cfg_.clock();
  update_ring_progress(now);
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    const queue_probe& p = probes_[i];
    probe_state& st = states_[i];
    const std::int64_t head = p.head();
    const std::int64_t tail = p.tail();
    if (head != st.last_head) {  // consumers moved: incident (if any) over
      st.last_head = head;
      st.last_progress_at = now;
      st.reported = false;
      continue;
    }
    if (tail <= head) {  // idle, not stalled
      st.last_progress_at = now;
      st.reported = false;
      continue;
    }
    if (now - st.last_progress_at < cfg_.stall_threshold) continue;
    if (cfg_.once_per_incident && st.reported) continue;
    st.reported = true;
    const verdict v = classify(p);
    if (severity(v) > severity(last_verdict_)) last_verdict_ = v;
    ++triggers_;
    const std::string dump = render_dump(v, i);
    auto sink = cfg_.sink;  // copy: cfg_ is stable but the sink may block
    lock.unlock();
    sink(v, dump);
    lock.lock();
  }
}

void watchdog::update_ring_progress(
    std::chrono::steady_clock::time_point now) {
  registry::instance().for_each_ring([&](const trace_ring& r) {
    auto [it, fresh] = ring_progress_.try_emplace(
        r.tid(), ring_progress{r.progress(), now});
    if (!fresh && it->second.epoch != r.progress()) {
      it->second.epoch = r.progress();
      it->second.changed_at = now;
    }
  });
}

verdict watchdog::classify(const queue_probe& p) const {
  const std::int64_t head = p.head();
  const std::int64_t tail = p.tail();
  const cell_view c = p.cell(head);
  // A -2 at the head rank's cell is an MPMC reservation: some producer
  // claimed the cell but never published — consumers cannot decide the
  // rank until it does.
  if (c.rank == -2) return verdict::stuck_producer;
  // The cell already holds a *later* rank and no gap covers head: rank
  // `head` can never be decided. This is a protocol violation detector —
  // the FFQ invariants say it cannot happen.
  if (c.rank >= 0 && c.rank > head && c.gap < head) return verdict::lost_rank;
  if (tail - head >= static_cast<std::int64_t>(p.capacity())) {
    return verdict::full_ring_livelock;
  }
  return verdict::stuck_consumer;
}

std::string watchdog::render_dump(verdict v, std::size_t probe_idx) const {
  const auto now = cfg_.clock();
  std::ostringstream os;
  os << "=== ffq watchdog: " << to_string(v) << " ===\n";

  if (probe_idx < probes_.size()) {
    const queue_probe& p = probes_[probe_idx];
    const std::int64_t head = p.head();
    const std::int64_t tail = p.tail();
    os << "queue " << p.name << ": head=" << head << " tail=" << tail
       << " pending=" << (tail - head) << " capacity=" << p.capacity()
       << " closed=" << (p.closed() ? 1 : 0) << "\n";
    os << "cells around head (rank: cell.rank cell.gap):\n";
    const std::int64_t lo = std::max<std::int64_t>(0, head - 2);
    const std::int64_t hi = head + 5;
    for (std::int64_t r = lo; r <= hi; ++r) {
      const cell_view c = p.cell(r);
      os << "  rank " << r << ": " << c.rank << " " << c.gap;
      if (r == head) os << "   <- head";
      if (r == tail) os << "   <- tail";
      os << "\n";
    }
    if (tail > hi || tail < lo) {
      const cell_view c = p.cell(tail);
      os << "  rank " << tail << ": " << c.rank << " " << c.gap
         << "   <- tail\n";
    }
  }

  os << "threads:\n";
  bool named_stuck = false;
  registry::instance().for_each_ring([&](const trace_ring& r) {
    os << "  [" << r.tid() << "] " << r.name()
       << ": progress=" << r.progress() << " written=" << r.written();
    // A consumer = a thread that has consumed before (progress > 0); it
    // is stalled if its epoch has not moved across the stall window.
    const auto it = ring_progress_.find(r.tid());
    if (r.progress() > 0 && it != ring_progress_.end() &&
        it->second.epoch == r.progress() &&
        now - it->second.changed_at >= cfg_.stall_threshold) {
      os << "   STALLED CONSUMER";
      named_stuck = true;
    }
    os << "\n";
    const thread_snapshot snap = r.snapshot();
    const std::size_t n =
        std::min(cfg_.dump_last_events, snap.records.size());
    if (n > 0) {
      os << "    last events:";
      for (std::size_t i = snap.records.size() - n; i < snap.records.size();
           ++i) {
        const event_record& e = snap.records[i];
        os << " " << to_string(e.type) << "(" << e.arg << ")@" << e.seq;
      }
      os << "\n";
    }
  });

  switch (v) {
    case verdict::stuck_consumer:
      os << "verdict: work is pending but the head rank has not advanced; "
         << (named_stuck ? "the thread(s) marked STALLED CONSUMER above "
                           "stopped consuming"
                         : "no consumer thread is making progress")
         << "\n";
      break;
    case verdict::stuck_producer:
      os << "verdict: the head rank's cell holds a -2 reservation — a "
            "producer claimed it and never published\n";
      break;
    case verdict::full_ring_livelock:
      os << "verdict: the ring is full and neither head nor tail is "
            "moving\n";
      break;
    case verdict::lost_rank:
      os << "verdict: the head rank's cell holds a later rank with no "
            "covering gap — the head rank can never be decided (protocol "
            "violation)\n";
      break;
    case verdict::ok:
      os << "verdict: all watched queues progressing or idle\n";
      break;
  }
  os << "=== end dump ===\n";
  return os.str();
}

}  // namespace ffq::trace
