// chrome_trace.cpp — merge per-thread trace rings and render Chrome
// Trace Event JSON ("ffq.trace.v1"). Format contract in
// include/ffq/trace/export.hpp; byte-stability (fixed key order, one
// event per line, %.3f microsecond timestamps, std::map-ordered counter
// tracks) is what makes the golden-file test possible.

#include "ffq/trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "ffq/runtime/timing.hpp"
#include "ffq/telemetry/json.hpp"
#include "ffq/trace/registry.hpp"

namespace ffq::trace {

namespace {

constexpr int kPid = 1;  // one process; pid only namespaces the tracks

/// "%.3f" without locale surprises: snprintf in the C locale territory
/// of digits only (values are non-negative microsecond offsets).
std::string us3(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void append_event_args(std::string& out, const std::string& queue_name,
                       const event_record& r) {
  out += "\"args\":{\"queue\":\"";
  out += ffq::telemetry::json_escape(queue_name);
  out += "\",\"rank\":";
  out += std::to_string(r.arg);
  out += ",\"seq\":";
  out += std::to_string(r.seq);
  out += "}}";
}

}  // namespace

std::vector<merged_event> merge_snapshots(
    const std::vector<thread_snapshot>& snaps) {
  std::vector<merged_event> out;
  std::size_t total = 0;
  for (const auto& s : snaps) total += s.records.size();
  out.reserve(total);
  for (const auto& s : snaps) {
    for (const auto& r : s.records) out.push_back(merged_event{s.tid, r});
  }
  std::sort(out.begin(), out.end(),
            [](const merged_event& a, const merged_event& b) {
              return std::tie(a.rec.tsc, a.tid, a.rec.seq) <
                     std::tie(b.rec.tsc, b.tid, b.rec.seq);
            });
  return out;
}

std::string chrome_trace_json(const std::vector<thread_snapshot>& snaps,
                              const export_options& opts) {
  const double ticks_per_us = opts.ticks_per_us > 0.0
                                  ? opts.ticks_per_us
                                  : ffq::runtime::tsc_ghz() * 1000.0;

  const std::vector<merged_event> events = merge_snapshots(snaps);

  std::uint64_t base = opts.base_tsc;
  if (base == ~std::uint64_t{0}) {
    base = 0;
    if (!events.empty()) {
      base = events.front().rec.tsc;  // merge order: min tsc is first
      for (const auto& e : events) base = std::min(base, e.rec.tsc);
    }
  }
  auto to_us = [&](std::uint64_t tsc) {
    return us3(tsc >= base ? static_cast<double>(tsc - base) / ticks_per_us
                           : 0.0);
  };

  // Queue-id -> display-name table, resolved once (events carry 16-bit
  // ids; the registry owns the names).
  auto& reg = registry::instance();

  std::string out;
  out.reserve(256 + events.size() * 160);
  out += "{\"schema\":\"";
  out += kTraceSchema;
  out += "\",\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  bool first = true;
  auto line = [&](std::string&& ev) {
    if (!first) out += ",\n";
    first = false;
    out += ev;
  };

  // Metadata: process track plus one named thread track per ring, in tid
  // order (registry order), present even for threads with zero records.
  line("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
       ",\"name\":\"process_name\",\"args\":{\"name\":\"ffq\"}}");
  for (const auto& s : snaps) {
    line("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(s.tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         ffq::telemetry::json_escape(s.name) + "\"}}");
  }

  std::uint64_t max_tsc = base;
  for (const auto& e : events) {
    const event_record& r = e.rec;
    max_tsc = std::max(max_tsc, r.tsc);
    const std::string qname = reg.queue_name(r.queue);
    std::string ev;
    ev.reserve(160);
    if (is_duration(r.type)) {
      ev += "{\"ph\":\"X\",\"name\":\"";
      ev += to_string(r.type);
      ev += "\",\"cat\":\"queue\",\"pid\":" + std::to_string(kPid) +
            ",\"tid\":" + std::to_string(e.tid) + ",\"ts\":" + to_us(r.tsc) +
            ",\"dur\":" +
            us3(static_cast<double>(r.dur) / ticks_per_us) + ",";
    } else {
      // "s":"t": thread-scoped instant (a tick on that thread's track).
      ev += "{\"ph\":\"i\",\"name\":\"";
      ev += to_string(r.type);
      ev += "\",\"cat\":\"queue\",\"s\":\"t\",\"pid\":" +
            std::to_string(kPid) + ",\"tid\":" + std::to_string(e.tid) +
            ",\"ts\":" + to_us(r.tsc) + ",";
    }
    append_event_args(ev, qname, r);
    line(std::move(ev));
  }

  // Counter tracks from the metrics snapshot, stamped at the end of the
  // timeline: the overlay answers "how many gaps/retries in total did
  // this timeline rack up". std::map order keeps it deterministic.
  if (opts.metrics != nullptr) {
    const std::string ts_end = to_us(max_tsc);
    for (const auto& [key, val] : opts.metrics->counters) {
      line("{\"ph\":\"C\",\"name\":\"" + ffq::telemetry::json_escape(key) +
           "\",\"pid\":" + std::to_string(kPid) + ",\"ts\":" + ts_end +
           ",\"args\":{\"value\":" + std::to_string(val) + "}}");
    }
  }

  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const export_options& opts) {
  const auto snaps = registry::instance().snapshot_all();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << chrome_trace_json(snaps, opts);
  return static_cast<bool>(f);
}

}  // namespace ffq::trace
