#include "ffq/sgxsim/enclave.hpp"

#include "ffq/runtime/timing.hpp"

namespace ffq::sgxsim {

void enclave_thread::charge(std::uint64_t cycles) {
  if (cycles == 0) return;
  ffq::runtime::spin_ns_tsc(ffq::runtime::rdtsc() + cycles);
}

void enclave_thread::eenter() {
  charge(model_.transition_cycles);
  inside_ = true;
  ++transitions_;
  if (counter_ != nullptr) counter_->fetch_add(1, std::memory_order_relaxed);
}

void enclave_thread::eexit() {
  charge(model_.transition_cycles);
  inside_ = false;
  ++transitions_;
  if (counter_ != nullptr) counter_->fetch_add(1, std::memory_order_relaxed);
}

void enclave_thread::charge_inside_op() {
  if (inside_) charge(model_.inside_op_cycles);
}

}  // namespace ffq::sgxsim
