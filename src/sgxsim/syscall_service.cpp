#include "ffq/sgxsim/syscall_service.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "ffq/baselines/vyukov_mpmc.hpp"
#include "ffq/core/ffq.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/timing.hpp"
#include "ffq/runtime/topology.hpp"
#include "ffq/runtime/affinity.hpp"
#include "ffq/telemetry/registry.hpp"
#include "ffq/trace/export.hpp"
#include "ffq/trace/registry.hpp"

namespace ffq::sgxsim {

const char* to_string(service_variant v) noexcept {
  switch (v) {
    case service_variant::native:
      return "native";
    case service_variant::sgx_sync:
      return "sgx-sync";
    case service_variant::sgx_ffq:
      return "sgx-ffq";
    case service_variant::sgx_mpmc:
      return "sgx-mpmc";
  }
  return "?";
}

namespace {

namespace rt = ffq::runtime;

/// The actual system call under test. getppid(2) "executes fast and
/// involves no costly system call argument copying, making system call
/// queues a bottleneck". When cfg.simulated_syscall_ns > 0, a calibrated
/// spin stands in for it (see the header comment).
inline std::uint64_t do_syscall(const service_config& cfg) {
  if (cfg.simulated_syscall_ns > 0.0) {
    rt::spin_ns(cfg.simulated_syscall_ns);
    return 42;
  }
  return static_cast<std::uint64_t>(::getppid());
}

void maybe_pin(const service_config& cfg, const rt::cpu_topology& topo, int idx) {
  if (!cfg.pin_threads || topo.cpus().empty()) return;
  const auto& cpus = topo.cpus();
  std::size_t usable = cpus.size();
  if (cfg.cpu_limit > 0) {
    usable = std::min<std::size_t>(usable, static_cast<std::size_t>(cfg.cpu_limit));
  }
  rt::pin_self_to(cpus[static_cast<std::size_t>(idx) % usable].os_id);
}

namespace tel = ffq::telemetry;

/// Latency recorders for one service run; all pointers null when
/// cfg.collect_telemetry is off, so the hot paths pay one predictable
/// branch per sample and nothing else.
struct service_recorders {
  tel::latency_recorder* enqueue = nullptr;
  tel::latency_recorder* dequeue = nullptr;
  tel::latency_recorder* e2e = nullptr;
  double tsc_ghz = 1.0;

  static service_recorders make(const service_config& cfg, bool queued) {
    service_recorders r;
    if (!cfg.collect_telemetry) return r;
    auto& reg = tel::registry::instance();
    const std::string base = std::string("syscall.") + to_string(cfg.variant);
    r.e2e = &reg.recorder(base + ".e2e_ns");
    if (queued) {
      r.enqueue = &reg.recorder(base + ".enqueue_ns");
      r.dequeue = &reg.recorder(base + ".dequeue_ns");
    }
    r.tsc_ghz = rt::tsc_ghz();
    return r;
  }

  std::uint64_t to_ns(std::uint64_t cycles) const noexcept {
    return static_cast<std::uint64_t>(static_cast<double>(cycles) / tsc_ghz);
  }
};

inline void record_ns(const service_recorders& rec, tel::log_histogram* shard,
                      std::uint64_t cycles) noexcept {
  if (shard != nullptr) shard->record(rec.to_ns(cycles));
}

// --------------------------------------------------------------------------
// native: direct calls.
// --------------------------------------------------------------------------
service_result run_native(const service_config& cfg) {
  const auto topo = rt::cpu_topology::discover();
  const auto rec = service_recorders::make(cfg, /*queued=*/false);
  rt::spin_barrier barrier(static_cast<std::size_t>(cfg.app_threads) + 1);
  rt::time_window_recorder window(static_cast<std::size_t>(cfg.app_threads));
  std::atomic<std::uint64_t> latency_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.app_threads; ++t) {
    threads.emplace_back([&, t] {
      maybe_pin(cfg, topo, t);
      auto* e2e = rec.e2e != nullptr ? rec.e2e->new_shard() : nullptr;
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(t));
      std::uint64_t local_lat = 0;
      for (std::uint64_t i = 0; i < cfg.calls_per_thread; ++i) {
        const std::uint64_t t0 = rt::rdtsc();
        volatile std::uint64_t r = do_syscall(cfg);
        (void)r;
        const std::uint64_t d = rt::rdtsc() - t0;
        local_lat += d;
        record_ns(rec, e2e, d);
      }
      latency_sum.fetch_add(local_lat, std::memory_order_relaxed);
      window.mark_end(static_cast<std::size_t>(t));
      barrier.arrive_and_wait();
    });
  }
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  const double secs = window.seconds();

  service_result res;
  res.total_calls = cfg.calls_per_thread * static_cast<std::uint64_t>(cfg.app_threads);
  res.calls_per_sec = static_cast<double>(res.total_calls) / secs;
  res.avg_latency_cycles =
      static_cast<double>(latency_sum.load()) / static_cast<double>(res.total_calls);
  return res;
}

// --------------------------------------------------------------------------
// sgx_sync: the traditional exit/trap/re-enter path.
// --------------------------------------------------------------------------
service_result run_sgx_sync(const service_config& cfg) {
  const auto topo = rt::cpu_topology::discover();
  const auto rec = service_recorders::make(cfg, /*queued=*/false);
  rt::spin_barrier barrier(static_cast<std::size_t>(cfg.app_threads) + 1);
  rt::time_window_recorder window(static_cast<std::size_t>(cfg.app_threads));
  std::atomic<std::uint64_t> latency_sum{0};
  std::atomic<std::uint64_t> transitions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.app_threads; ++t) {
    threads.emplace_back([&, t] {
      maybe_pin(cfg, topo, t);
      enclave_thread enclave(cfg.cost, &transitions);
      enclave.eenter();
      auto* e2e = rec.e2e != nullptr ? rec.e2e->new_shard() : nullptr;
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(t));
      std::uint64_t local_lat = 0;
      for (std::uint64_t i = 0; i < cfg.calls_per_thread; ++i) {
        const std::uint64_t t0 = rt::rdtsc();
        enclave.charge_inside_op();
        volatile std::uint64_t r = enclave.ocall([&] { return do_syscall(cfg); });
        (void)r;
        const std::uint64_t d = rt::rdtsc() - t0;
        local_lat += d;
        record_ns(rec, e2e, d);
      }
      latency_sum.fetch_add(local_lat, std::memory_order_relaxed);
      window.mark_end(static_cast<std::size_t>(t));
      barrier.arrive_and_wait();
      enclave.eexit();
    });
  }
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  const double secs = window.seconds();

  service_result res;
  res.total_calls = cfg.calls_per_thread * static_cast<std::uint64_t>(cfg.app_threads);
  res.calls_per_sec = static_cast<double>(res.total_calls) / secs;
  res.avg_latency_cycles =
      static_cast<double>(latency_sum.load()) / static_cast<double>(res.total_calls);
  res.enclave_transitions = transitions.load();
  return res;
}

// --------------------------------------------------------------------------
// sgx_ffq: per-app-thread FFQ SPMC submission + FFQ SPSC response.
// --------------------------------------------------------------------------
service_result run_sgx_ffq(const service_config& cfg) {
  using submission_q = ffq::core::spmc_queue<syscall_request>;
  using response_q = ffq::core::spsc_queue<syscall_response>;

  const auto topo = rt::cpu_topology::discover();
  const int apps = cfg.app_threads;
  // Every submission queue needs at least one executor.
  const int oss = std::max(cfg.os_threads, apps);

  // "an array with SPSC response queues for each of the consumers
  // assigned to the producer" (§V-A): one response queue per
  // (app thread, executor) pair, so each stays single-producer.
  std::vector<std::unique_ptr<submission_q>> submissions;
  std::vector<std::vector<std::unique_ptr<response_q>>> responses(apps);
  for (int a = 0; a < apps; ++a) {
    submissions.push_back(std::make_unique<submission_q>(cfg.queue_capacity));
  }
  for (int j = 0; j < oss; ++j) {
    responses[j % apps].push_back(
        std::make_unique<response_q>(cfg.queue_capacity));
  }

  const auto rec = service_recorders::make(cfg, /*queued=*/true);
  rt::spin_barrier barrier(static_cast<std::size_t>(apps + oss) + 1);
  rt::time_window_recorder window(static_cast<std::size_t>(apps + oss));
  std::atomic<std::uint64_t> latency_sum{0};
  std::atomic<std::uint64_t> transitions{0};
  std::vector<std::thread> threads;

  // OS executor threads: each serves the submission queues assigned to
  // it round-robin (os thread j primarily serves queue j % apps; with
  // more OS threads than apps, queues get multiple consumers — the SPMC
  // fan-out the design exists for).
  for (int j = 0; j < oss; ++j) {
    threads.emplace_back([&, j] {
      maybe_pin(cfg, topo, apps + j);
      if (!cfg.trace_path.empty()) {
        ffq::trace::set_thread_name("os-" + std::to_string(j));
      }
      auto& sub = *submissions[static_cast<std::size_t>(j % apps)];
      auto& resp = *responses[static_cast<std::size_t>(j % apps)]
                             [static_cast<std::size_t>(j / apps)];
      auto* deq = rec.dequeue != nullptr ? rec.dequeue->new_shard() : nullptr;
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(apps + j));
      syscall_request req;
      for (;;) {
        // The dequeue sample includes the blocking wait for work — that
        // is the latency an executor actually pays per request.
        const std::uint64_t t0 = deq != nullptr ? rt::rdtsc() : 0;
        if (!sub.dequeue(req)) break;
        if (deq != nullptr) record_ns(rec, deq, rt::rdtsc() - t0);
        syscall_response r;
        r.result = do_syscall(cfg);
        r.issue_tsc = req.issue_tsc;
        resp.enqueue(r);
      }
      window.mark_end(static_cast<std::size_t>(apps + j));
      barrier.arrive_and_wait();
    });
  }

  // App threads ("inside the enclave"): one outstanding call at a time —
  // the paper's flow-control assumption.
  for (int a = 0; a < apps; ++a) {
    threads.emplace_back([&, a] {
      maybe_pin(cfg, topo, a);
      if (!cfg.trace_path.empty()) {
        ffq::trace::set_thread_name("app-" + std::to_string(a));
      }
      enclave_thread enclave(cfg.cost, &transitions);
      enclave.eenter();
      auto* enq = rec.enqueue != nullptr ? rec.enqueue->new_shard() : nullptr;
      auto* e2e = rec.e2e != nullptr ? rec.e2e->new_shard() : nullptr;
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(a));
      auto& sub = *submissions[a];
      auto& my_responses = responses[a];
      std::uint64_t local_lat = 0;
      std::size_t rr = 0;  // round-robin over this thread's response queues
      for (std::uint64_t i = 0; i < cfg.calls_per_thread; ++i) {
        enclave.charge_inside_op();
        syscall_request req;
        req.app_thread = static_cast<std::uint32_t>(a);
        req.issue_tsc = rt::rdtsc();
        sub.enqueue(req);
        if (enq != nullptr) record_ns(rec, enq, rt::rdtsc() - req.issue_tsc);
        // "loop through the response queues for dequeuing values".
        syscall_response r;
        rt::yielding_backoff bo;
        for (;;) {
          if (my_responses[rr]->try_dequeue(r)) break;
          rr = (rr + 1) % my_responses.size();
          if (rr == 0) bo.pause();
        }
        const std::uint64_t d = rt::rdtsc() - r.issue_tsc;
        local_lat += d;
        record_ns(rec, e2e, d);
      }
      sub.close();
      latency_sum.fetch_add(local_lat, std::memory_order_relaxed);
      window.mark_end(static_cast<std::size_t>(a));
      barrier.arrive_and_wait();
      enclave.eexit();
    });
  }

  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  const double secs = window.seconds();

  if (cfg.collect_telemetry) {
    // Fold queue event counters into registry totals before the queues
    // die with this scope (no-op in FFQ_TELEMETRY=OFF builds, where the
    // default policy's counter block is empty).
    auto& reg = tel::registry::instance();
    for (const auto& s : submissions) {
      reg.accumulate_queue("queue.sgx-ffq.submission", s->telemetry());
    }
    for (const auto& per_app : responses) {
      for (const auto& r : per_app) {
        reg.accumulate_queue("queue.sgx-ffq.response", r->telemetry());
      }
    }
  }

  service_result res;
  res.total_calls = cfg.calls_per_thread * static_cast<std::uint64_t>(apps);
  res.calls_per_sec = static_cast<double>(res.total_calls) / secs;
  res.avg_latency_cycles =
      static_cast<double>(latency_sum.load()) / static_cast<double>(res.total_calls);
  res.enclave_transitions = transitions.load();
  return res;
}

// --------------------------------------------------------------------------
// sgx_mpmc: one global generic MPMC queue for submissions (the paper's
// "external MPMC queue"), per-app-thread MPMC response queues.
// --------------------------------------------------------------------------
service_result run_sgx_mpmc(const service_config& cfg) {
  using submission_q = ffq::baselines::vyukov_mpmc_queue<syscall_request>;
  using response_q = ffq::baselines::vyukov_mpmc_queue<syscall_response>;

  const auto topo = rt::cpu_topology::discover();
  const int apps = cfg.app_threads;
  const int oss = std::max(cfg.os_threads, 1);

  submission_q submission(cfg.queue_capacity);
  std::vector<std::unique_ptr<response_q>> responses;
  for (int a = 0; a < apps; ++a) {
    responses.push_back(std::make_unique<response_q>(cfg.queue_capacity));
  }

  const auto rec = service_recorders::make(cfg, /*queued=*/true);
  rt::spin_barrier barrier(static_cast<std::size_t>(apps + oss) + 1);
  rt::time_window_recorder window(static_cast<std::size_t>(apps + oss));
  std::atomic<std::uint64_t> latency_sum{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<int> producers_done{0};
  std::vector<std::thread> threads;

  for (int j = 0; j < oss; ++j) {
    threads.emplace_back([&, j] {
      maybe_pin(cfg, topo, apps + j);
      auto* deq = rec.dequeue != nullptr ? rec.dequeue->new_shard() : nullptr;
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(apps + j));
      syscall_request req;
      rt::yielding_backoff bo;
      std::uint64_t wait_start = deq != nullptr ? rt::rdtsc() : 0;
      for (;;) {
        if (submission.try_dequeue(req)) {
          bo.reset();
          if (deq != nullptr) {
            const std::uint64_t now = rt::rdtsc();
            record_ns(rec, deq, now - wait_start);
          }
          syscall_response r;
          r.result = do_syscall(cfg);
          r.issue_tsc = req.issue_tsc;
          responses[req.app_thread]->enqueue(r);
          if (deq != nullptr) wait_start = rt::rdtsc();
        } else if (producers_done.load(std::memory_order_acquire) == apps) {
          if (!submission.try_dequeue(req)) break;
          syscall_response r;
          r.result = do_syscall(cfg);
          r.issue_tsc = req.issue_tsc;
          responses[req.app_thread]->enqueue(r);
        } else {
          bo.pause();
        }
      }
      window.mark_end(static_cast<std::size_t>(apps + j));
      barrier.arrive_and_wait();
    });
  }

  for (int a = 0; a < apps; ++a) {
    threads.emplace_back([&, a] {
      maybe_pin(cfg, topo, a);
      enclave_thread enclave(cfg.cost, &transitions);
      enclave.eenter();
      auto* enq = rec.enqueue != nullptr ? rec.enqueue->new_shard() : nullptr;
      auto* e2e = rec.e2e != nullptr ? rec.e2e->new_shard() : nullptr;
      barrier.arrive_and_wait();
      window.mark_start(static_cast<std::size_t>(a));
      auto& resp = *responses[a];
      std::uint64_t local_lat = 0;
      for (std::uint64_t i = 0; i < cfg.calls_per_thread; ++i) {
        enclave.charge_inside_op();
        syscall_request req;
        req.app_thread = static_cast<std::uint32_t>(a);
        req.issue_tsc = rt::rdtsc();
        submission.enqueue(req);
        if (enq != nullptr) record_ns(rec, enq, rt::rdtsc() - req.issue_tsc);
        syscall_response r;
        rt::yielding_backoff bo;
        while (!resp.try_dequeue(r)) bo.pause();
        const std::uint64_t d = rt::rdtsc() - r.issue_tsc;
        local_lat += d;
        record_ns(rec, e2e, d);
      }
      producers_done.fetch_add(1, std::memory_order_release);
      latency_sum.fetch_add(local_lat, std::memory_order_relaxed);
      window.mark_end(static_cast<std::size_t>(a));
      barrier.arrive_and_wait();
      enclave.eexit();
    });
  }

  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  const double secs = window.seconds();

  service_result res;
  res.total_calls = cfg.calls_per_thread * static_cast<std::uint64_t>(apps);
  res.calls_per_sec = static_cast<double>(res.total_calls) / secs;
  res.avg_latency_cycles =
      static_cast<double>(latency_sum.load()) / static_cast<double>(res.total_calls);
  res.enclave_transitions = transitions.load();
  return res;
}

}  // namespace

service_result run_syscall_service(const service_config& cfg) {
  service_result res{};
  switch (cfg.variant) {
    case service_variant::native:
      res = run_native(cfg);
      break;
    case service_variant::sgx_sync:
      res = run_sgx_sync(cfg);
      break;
    case service_variant::sgx_ffq:
      res = run_sgx_ffq(cfg);
      break;
    case service_variant::sgx_mpmc:
      res = run_sgx_mpmc(cfg);
      break;
  }
  if (!cfg.trace_path.empty()) {
    ffq::trace::export_options opts;
    tel::metrics_snapshot snap;
    if (cfg.collect_telemetry) {
      snap = tel::registry::instance().snapshot();
      if (!snap.empty()) opts.metrics = &snap;
    }
    ffq::trace::write_chrome_trace(cfg.trace_path, opts);
  }
  return res;
}

}  // namespace ffq::sgxsim
