#include "ffq/check/sched.hpp"

#include <ucontext.h>

#include <cassert>
#include <vector>

#include "ffq/check/yield.hpp"

namespace ffq::check {

namespace {

struct task_state {
  ucontext_t ctx{};
  std::vector<char> stack;
  std::function<void()> fn;
  bool started = false;
  bool finished = false;
};

constexpr std::size_t kStackBytes = 64 * 1024;

}  // namespace

struct coop_sched::impl {
  ucontext_t driver_ctx{};
  std::vector<std::unique_ptr<task_state>> tasks;
  task_state* current = nullptr;

  static thread_local impl* active;  // scheduler stepping on this OS thread

  static void trampoline() {
    impl* self = active;
    task_state* t = self->current;
    t->fn();
    t->finished = true;
    // Back to step(); this context is never resumed again.
    swapcontext(&t->ctx, &self->driver_ctx);
  }

  static void yield_from_hook() { coop_sched::yield(); }
};

thread_local coop_sched::impl* coop_sched::impl::active = nullptr;

coop_sched::coop_sched() : impl_(std::make_unique<impl>()) {}
coop_sched::~coop_sched() = default;

int coop_sched::spawn(std::function<void()> fn) {
  auto t = std::make_unique<task_state>();
  t->stack.resize(kStackBytes);
  t->fn = std::move(fn);
  getcontext(&t->ctx);
  t->ctx.uc_stack.ss_sp = t->stack.data();
  t->ctx.uc_stack.ss_size = t->stack.size();
  t->ctx.uc_link = nullptr;  // termination handled by the trampoline
  makecontext(&t->ctx, reinterpret_cast<void (*)()>(&impl::trampoline), 0);
  impl_->tasks.push_back(std::move(t));
  return static_cast<int>(impl_->tasks.size()) - 1;
}

bool coop_sched::step(int t) {
  if (t < 0 || static_cast<std::size_t>(t) >= impl_->tasks.size()) return false;
  task_state* task = impl_->tasks[static_cast<std::size_t>(t)].get();
  if (task->finished) return false;
  assert(impl::active == nullptr && "nested coop_sched steps on one OS thread");

  impl* prev_active = impl::active;
  impl::active = impl_.get();
  impl_->current = task;
  task->started = true;
  ++steps_;
  {
    // Route FFQ_CHECK_YIELD() in the resumed code back to this driver.
    hook_guard hooked(&impl::yield_from_hook);
    swapcontext(&impl_->driver_ctx, &task->ctx);
  }
  impl_->current = nullptr;
  impl::active = prev_active;
  return !task->finished;
}

bool coop_sched::done(int t) const {
  if (t < 0 || static_cast<std::size_t>(t) >= impl_->tasks.size()) return true;
  return impl_->tasks[static_cast<std::size_t>(t)]->finished;
}

bool coop_sched::all_done() const {
  for (const auto& t : impl_->tasks) {
    if (!t->finished) return false;
  }
  return true;
}

std::vector<int> coop_sched::runnable() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < impl_->tasks.size(); ++i) {
    if (!impl_->tasks[i]->finished) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::size_t coop_sched::task_count() const noexcept { return impl_->tasks.size(); }

void coop_sched::yield() {
  impl* self = impl::active;
  if (self == nullptr || self->current == nullptr) return;  // not in a task
  task_state* t = self->current;
  swapcontext(&t->ctx, &self->driver_ctx);
}

}  // namespace ffq::check
