#include "ffq/check/explore.hpp"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ffq/runtime/rng.hpp"

namespace ffq::check {

namespace {

using ffq::model::world;

/// Terminal-state oracles: exactly-once delivery + gap accounting.
std::string terminal_violation(const world& w, bool require_all_consumed) {
  if (require_all_consumed) {
    for (std::size_t v = 1; v < w.consumed_count_.size(); ++v) {
      if (w.consumed_count_[v] != 1) {
        return "terminal: value " + std::to_string(v) + " consumed " +
               std::to_string(w.consumed_count_[v]) + " times (expected 1)";
      }
    }
  }
  return w.check_gap_accounting();
}

struct dfs_ctx {
  const dfs_options* opt = nullptr;
  explore_result* res = nullptr;
  // encoding+last_tid -> best remaining budget already explored. A state
  // is re-entered only with strictly more budget (budget dominance).
  std::unordered_map<std::string, int> memo;
  std::vector<int> path;
};

/// Returns true when a violation was found (res filled, search stops).
bool dfs(const world& w, int last_tid, int budget, dfs_ctx& ctx) {
  if (!w.violation_.empty()) {
    ctx.res->ok = false;
    ctx.res->violation = "safety: " + w.violation_;
    ctx.res->witness.picks = ctx.path;
    return true;
  }
  if (w.all_done()) {
    ++ctx.res->terminals;
    const std::string t = terminal_violation(w, ctx.opt->require_all_consumed);
    if (!t.empty()) {
      ctx.res->ok = false;
      ctx.res->violation = "safety: " + t;
      ctx.res->witness.picks = ctx.path;
      return true;
    }
    return false;
  }

  std::string key = w.encode();
  key.push_back(static_cast<char>(last_tid + 1));
  auto [it, inserted] = ctx.memo.try_emplace(std::move(key), budget);
  if (!inserted) {
    if (it->second >= budget) return false;  // dominated: prune
    it->second = budget;
  } else {
    ++ctx.res->states;
    if (ctx.res->states >= ctx.opt->max_states) {
      ctx.res->exhausted = false;
      return false;
    }
  }

  const bool last_runnable = last_tid >= 0 &&
                             !w.threads_[static_cast<std::size_t>(last_tid)]->done();
  const int n = static_cast<int>(w.threads_.size());
  // Continuation first (free), then preempting switches (cost 1 each
  // while the last thread still runs).
  for (int off = 0; off < n; ++off) {
    const int tid = last_tid >= 0 ? (last_tid + off) % n : off;
    if (w.threads_[static_cast<std::size_t>(tid)]->done()) continue;
    const int cost = (last_runnable && tid != last_tid) ? 1 : 0;
    if (cost > budget) continue;
    world next(w);
    next.threads_[static_cast<std::size_t>(tid)]->step(next);
    ctx.path.push_back(tid);
    if (dfs(next, tid, budget - cost, ctx)) return true;
    ctx.path.pop_back();
    if (!ctx.res->exhausted) return false;  // state budget gone: wind down
  }
  return false;
}

}  // namespace

explore_result dfs_explore(const world& initial, const dfs_options& opt) {
  explore_result res;
  dfs_ctx ctx;
  ctx.opt = &opt;
  ctx.res = &res;
  dfs(initial, -1, opt.preemption_bound, ctx);
  return res;
}

explore_result replay_model(const world& initial, const schedule& s,
                            bool require_all_consumed) {
  explore_result res;
  res.witness = s;
  world w(initial);
  for (std::size_t i = 0; i < s.picks.size(); ++i) {
    const int tid = s.picks[i];
    if (tid < 0 || static_cast<std::size_t>(tid) >= w.threads_.size() ||
        w.threads_[static_cast<std::size_t>(tid)]->done()) {
      res.ok = false;
      res.violation = "replay: pick " + std::to_string(i) + " names thread " +
                      std::to_string(tid) + ", which is invalid or finished";
      return res;
    }
    w.threads_[static_cast<std::size_t>(tid)]->step(w);
    res.states += 1;
    if (!w.violation_.empty()) {
      res.ok = false;
      res.violation = "safety: " + w.violation_;
      res.witness.picks.resize(i + 1);
      return res;
    }
  }
  if (!w.all_done()) {
    res.ok = false;
    res.violation = "replay: schedule ended before all threads finished";
    return res;
  }
  ++res.terminals;
  const std::string t = terminal_violation(w, require_all_consumed);
  if (!t.empty()) {
    res.ok = false;
    res.violation = "safety: " + t;
  }
  return res;
}

explore_result fuzz_model(const world& initial, std::uint64_t seed,
                          std::uint64_t schedules, std::uint64_t max_steps,
                          bool require_all_consumed) {
  explore_result res;
  ffq::runtime::splitmix64 seeder(seed);
  for (std::uint64_t run = 0; run < schedules; ++run) {
    ffq::runtime::xoshiro256ss rng(seeder.next());
    world w(initial);
    schedule sched;
    std::uint64_t steps = 0;
    while (!w.all_done()) {
      if (++steps > max_steps) {
        res.ok = false;
        res.violation = "liveness: step bound " + std::to_string(max_steps) +
                        " exceeded (livelock or starvation)";
        res.witness = std::move(sched);
        return res;
      }
      std::vector<int> runnable;
      for (std::size_t i = 0; i < w.threads_.size(); ++i) {
        if (!w.threads_[i]->done()) runnable.push_back(static_cast<int>(i));
      }
      const int tid = runnable[rng.bounded(runnable.size())];
      sched.picks.push_back(tid);
      w.threads_[static_cast<std::size_t>(tid)]->step(w);
      res.states += 1;
      if (!w.violation_.empty()) {
        res.ok = false;
        res.violation = "safety: " + w.violation_;
        res.witness = std::move(sched);
        return res;
      }
    }
    ++res.terminals;
    const std::string t = terminal_violation(w, require_all_consumed);
    if (!t.empty()) {
      res.ok = false;
      res.violation = "safety: " + t;
      res.witness = std::move(sched);
      return res;
    }
  }
  return res;
}

}  // namespace ffq::check
