#include "ffq/runtime/htm.hpp"

#if defined(FFQ_HAVE_RTM) && defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace ffq::runtime {

bool htm_hardware_available() noexcept {
#if defined(FFQ_HAVE_RTM) && defined(__x86_64__)
  static const bool avail = [] {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
    return (ebx & (1u << 11)) != 0;  // RTM
  }();
  return avail;
#else
  return false;
#endif
}

bool htm_context::begin_tx(htm_lock& lk) noexcept {
#if defined(FFQ_HAVE_RTM) && defined(__x86_64__)
  if (htm_hardware_available()) {
    if (_xbegin() == _XBEGIN_STARTED) {
      // Subscribe to the fallback lock: abort if someone holds it, and
      // bring its line into our read set so a later lock() aborts us.
      if (lk.is_locked()) {
        _xabort(0xff);
      }
      in_hw_tx_ = true;
      return true;
    }
    return false;
  }
#endif
  // --- Emulation path -----------------------------------------------
  if (lk.is_locked()) {
    // Lock contended: a real transaction would conflict-abort with some
    // probability depending on overlap; model that before even trying.
    if (rng_.bounded(1000) < abort_rate_permille_) return false;
  }
  // "Begin" = acquire the emulation lock non-blockingly; failure to
  // acquire is a conflict abort.
  if (lk.is_locked()) return false;
  lk.lock();  // TATAS; effectively a short trylock after the check above
  holds_emulation_lock_ = true;
  return true;
}

void htm_context::end_tx(htm_lock& lk) noexcept {
#if defined(FFQ_HAVE_RTM) && defined(__x86_64__)
  if (in_hw_tx_) {
    _xend();
    in_hw_tx_ = false;
    return;
  }
#endif
  if (holds_emulation_lock_) {
    lk.unlock();
    holds_emulation_lock_ = false;
  }
  (void)lk;
}

}  // namespace ffq::runtime
