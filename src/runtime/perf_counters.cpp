#include "ffq/runtime/perf_counters.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ffq::runtime {

const char* to_string(perf_event_kind k) noexcept {
  switch (k) {
    case perf_event_kind::cycles:
      return "cycles";
    case perf_event_kind::instructions:
      return "instructions";
    case perf_event_kind::cache_references:
      return "cache-references";
    case perf_event_kind::cache_misses:
      return "cache-misses";
    case perf_event_kind::l1d_read_access:
      return "L1d-read-access";
    case perf_event_kind::l1d_read_miss:
      return "L1d-read-miss";
  }
  return "?";
}

#if defined(__linux__)
namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                         unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

bool fill_attr(perf_event_kind k, perf_event_attr& attr) {
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  switch (k) {
    case perf_event_kind::cycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      return true;
    case perf_event_kind::instructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      return true;
    case perf_event_kind::cache_references:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_REFERENCES;
      return true;
    case perf_event_kind::cache_misses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      return true;
    case perf_event_kind::l1d_read_access:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      return true;
    case perf_event_kind::l1d_read_miss:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      return true;
  }
  return false;
}

}  // namespace

perf_counter_group::perf_counter_group(const std::vector<perf_event_kind>& kinds) {
  available_ = true;
  for (perf_event_kind k : kinds) {
    perf_event_attr attr;
    if (!fill_attr(k, attr)) {
      available_ = false;
      error_ = "unknown counter kind";
      break;
    }
    const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                        /*group_fd=*/-1, /*flags=*/0);
    if (fd < 0) {
      available_ = false;
      error_ = std::string(to_string(k)) + ": " + std::strerror(errno);
      break;
    }
    counters_.push_back({k, static_cast<int>(fd)});
  }
  if (!available_) {
    for (auto& c : counters_) close(c.fd);
    counters_.clear();
  }
}

perf_counter_group::~perf_counter_group() {
  for (auto& c : counters_) {
    if (c.fd >= 0) close(c.fd);
  }
}

void perf_counter_group::start() noexcept {
  for (auto& c : counters_) {
    ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void perf_counter_group::stop() noexcept {
  for (auto& c : counters_) ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
}

std::vector<perf_counter_group::sample> perf_counter_group::read_all() const {
  std::vector<sample> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) {
    std::uint64_t v = 0;
    if (read(c.fd, &v, sizeof(v)) == static_cast<ssize_t>(sizeof(v))) {
      out.push_back({c.kind, v});
    }
  }
  return out;
}

#else  // !__linux__

perf_counter_group::perf_counter_group(const std::vector<perf_event_kind>&) {
  available_ = false;
  error_ = "perf_event_open unsupported on this platform";
}
perf_counter_group::~perf_counter_group() = default;
void perf_counter_group::start() noexcept {}
void perf_counter_group::stop() noexcept {}
std::vector<perf_counter_group::sample> perf_counter_group::read_all() const {
  return {};
}

#endif

perf_counter_group::perf_counter_group(perf_counter_group&& o) noexcept
    : counters_(std::move(o.counters_)),
      available_(std::exchange(o.available_, false)),
      error_(std::move(o.error_)) {
  o.counters_.clear();
}

perf_counter_group& perf_counter_group::operator=(perf_counter_group&& o) noexcept {
  if (this != &o) {
#if defined(__linux__)
    for (auto& c : counters_) {
      if (c.fd >= 0) close(c.fd);
    }
#endif
    counters_ = std::move(o.counters_);
    o.counters_.clear();
    available_ = std::exchange(o.available_, false);
    error_ = std::move(o.error_);
  }
  return *this;
}

std::uint64_t perf_counter_group::value(perf_event_kind k) const {
  for (const auto& s : read_all()) {
    if (s.kind == k) return s.value;
  }
  return 0;
}

std::string perf_capability_summary() {
  perf_counter_group probe({perf_event_kind::cycles, perf_event_kind::instructions});
  if (probe.available()) return "perf counters: available";
  return "perf counters: unavailable (" + probe.error() +
         ") — cache figures fall back to the cache simulator";
}

}  // namespace ffq::runtime
