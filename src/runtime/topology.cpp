#include "ffq/runtime/topology.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace ffq::runtime {
namespace {

bool read_int_file(const std::string& path, int& out) {
  std::ifstream f(path);
  if (!f) return false;
  f >> out;
  return static_cast<bool>(f);
}

/// Parses a kernel cpulist string like "0-3,8,10-11" into individual ids.
std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> ids;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    if (dash == std::string::npos) {
      ids.push_back(std::stoi(tok));
    } else {
      const int lo = std::stoi(tok.substr(0, dash));
      const int hi = std::stoi(tok.substr(dash + 1));
      for (int i = lo; i <= hi; ++i) ids.push_back(i);
    }
  }
  return ids;
}

std::vector<int> online_cpus() {
  std::ifstream f("/sys/devices/system/cpu/online");
  if (f) {
    std::string line;
    std::getline(f, line);
    auto ids = parse_cpulist(line);
    if (!ids.empty()) return ids;
  }
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> ids(n);
  for (unsigned i = 0; i < n; ++i) ids[i] = static_cast<int>(i);
  return ids;
}

}  // namespace

void cpu_topology::finalize() {
  // Normalize (package_id, raw core_id) pairs into dense core ids and
  // assign smt indexes in os_id order within each core.
  std::map<std::pair<int, int>, int> core_map;
  std::map<int, int> package_map;
  std::sort(cpus_.begin(), cpus_.end(),
            [](const logical_cpu& a, const logical_cpu& b) { return a.os_id < b.os_id; });
  std::map<int, int> smt_counter;
  for (auto& c : cpus_) {
    auto [pit, pnew] = package_map.try_emplace(c.package_id,
                                               static_cast<int>(package_map.size()));
    (void)pnew;
    c.package_id = pit->second;
    auto key = std::make_pair(c.package_id, c.core_id);
    auto [cit, cnew] = core_map.try_emplace(key, static_cast<int>(core_map.size()));
    (void)cnew;
    c.core_id = cit->second;
    c.smt_index = smt_counter[c.core_id]++;
  }
  num_cores_ = core_map.size();
  num_packages_ = package_map.size();
}

cpu_topology cpu_topology::discover() {
  cpu_topology t;
  for (int id : online_cpus()) {
    logical_cpu c;
    c.os_id = id;
    const std::string base = "/sys/devices/system/cpu/cpu" + std::to_string(id) + "/topology/";
    int v = 0;
    c.package_id = read_int_file(base + "physical_package_id", v) ? v : 0;
    // Fallback: treat each logical CPU as its own core when sysfs is
    // unavailable (containers often mask it) — degrades affinity policies
    // to "other core"/"none", which the planners handle.
    c.core_id = read_int_file(base + "core_id", v) ? v : id;
    t.cpus_.push_back(c);
  }
  t.finalize();
  return t;
}

cpu_topology cpu_topology::synthetic(int packages, int cores_per_package,
                                     int threads_per_core) {
  cpu_topology t;
  int os_id = 0;
  for (int smt = 0; smt < threads_per_core; ++smt) {
    // os_ids enumerate all first-HTs before all second-HTs, matching the
    // common Linux enumeration on Intel (cpu0..3 = HT0 of cores 0..3,
    // cpu4..7 = HT1 of cores 0..3).
    for (int p = 0; p < packages; ++p) {
      for (int core = 0; core < cores_per_package; ++core) {
        logical_cpu c;
        c.os_id = os_id++;
        c.package_id = p;
        c.core_id = p * cores_per_package + core;
        t.cpus_.push_back(c);
      }
    }
  }
  t.finalize();
  return t;
}

std::vector<int> cpu_topology::core_members(int core_id) const {
  std::vector<const logical_cpu*> members;
  for (const auto& c : cpus_) {
    if (c.core_id == core_id) members.push_back(&c);
  }
  std::sort(members.begin(), members.end(),
            [](const logical_cpu* a, const logical_cpu* b) {
              return a->smt_index < b->smt_index;
            });
  std::vector<int> ids;
  ids.reserve(members.size());
  for (const auto* c : members) ids.push_back(c->os_id);
  return ids;
}

std::vector<int> cpu_topology::primary_threads() const {
  std::vector<int> ids;
  for (const auto& c : cpus_) {
    if (c.smt_index == 0) ids.push_back(c.os_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

int cpu_topology::sibling_of(int os_id) const {
  const int core = core_of(os_id);
  if (core < 0) return -1;
  for (const auto& c : cpus_) {
    if (c.core_id == core && c.os_id != os_id) return c.os_id;
  }
  return -1;
}

int cpu_topology::core_of(int os_id) const {
  for (const auto& c : cpus_) {
    if (c.os_id == os_id) return c.core_id;
  }
  return -1;
}

std::string cpu_topology::summary() const {
  std::ostringstream os;
  os << num_packages_ << " package(s), " << num_cores_ << " core(s), "
     << cpus_.size() << " hardware thread(s), " << threads_per_core()
     << " HT/core";
  return os.str();
}

}  // namespace ffq::runtime
