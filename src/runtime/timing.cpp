#include "ffq/runtime/timing.hpp"

#include <chrono>
#include <mutex>
#include <thread>

namespace ffq::runtime {
namespace {

double calibrate_tsc_ghz() {
  using clock = std::chrono::steady_clock;
  // Two back-to-back windows; keep the slower (less preempted) estimate is
  // not meaningful for frequency, so average the two ~5 ms windows. Total
  // calibration cost ~10 ms, paid once per process.
  double sum = 0.0;
  for (int i = 0; i < 2; ++i) {
    const auto t0 = clock::now();
    const std::uint64_t c0 = rdtsc_fenced();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::uint64_t c1 = rdtsc_fenced();
    const auto t1 = clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    sum += static_cast<double>(c1 - c0) / ns;
  }
  const double ghz = sum / 2.0;
  // Defensive clamp: a broken TSC (or the non-x86 fallback, which counts
  // nanoseconds and therefore calibrates to ~1.0) stays usable.
  if (ghz < 0.1 || ghz > 10.0) return 1.0;
  return ghz;
}

}  // namespace

double tsc_ghz() {
  static const double ghz = calibrate_tsc_ghz();
  return ghz;
}

double tsc_to_ns(std::uint64_t cycles) {
  return static_cast<double>(cycles) / tsc_ghz();
}

std::uint64_t ns_to_tsc(double ns) {
  return static_cast<std::uint64_t>(ns * tsc_ghz());
}

void spin_ns(double ns) {
  const std::uint64_t deadline = rdtsc() + ns_to_tsc(ns);
  spin_ns_tsc(deadline);
}

}  // namespace ffq::runtime
