#include "ffq/runtime/eventcount.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <thread>
#endif

namespace ffq::runtime {

#if defined(__linux__)
namespace {
long futex(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                 nullptr, nullptr, 0);
}
}  // namespace

void eventcount::wait(key_type key) noexcept {
  // Park while the generation still matches the key. FUTEX_WAIT
  // re-validates atomically against concurrent notifies; spurious
  // wake-ups are absorbed by the loop in the caller's re-check pattern
  // (we return and the caller re-examines its condition).
  if (epoch_->load(std::memory_order_seq_cst) == key) {
    futex(&epoch_.value, FUTEX_WAIT_PRIVATE, key);
  }
  waiters_->fetch_sub(1, std::memory_order_seq_cst);
}

void eventcount::notify_one() noexcept {
  if (waiters_->load(std::memory_order_seq_cst) == 0) return;
  epoch_->fetch_add(1, std::memory_order_seq_cst);
  futex(&epoch_.value, FUTEX_WAKE_PRIVATE, 1);
}

void eventcount::notify_all() noexcept {
  if (waiters_->load(std::memory_order_seq_cst) == 0) return;
  epoch_->fetch_add(1, std::memory_order_seq_cst);
  futex(&epoch_.value, FUTEX_WAKE_PRIVATE, 0x7fffffff);
}

#else  // portable fallback: yield-loop (correct, less efficient)

void eventcount::wait(key_type key) noexcept {
  while (epoch_->load(std::memory_order_seq_cst) == key) {
    std::this_thread::yield();
  }
  waiters_->fetch_sub(1, std::memory_order_seq_cst);
}

void eventcount::notify_one() noexcept {
  if (waiters_->load(std::memory_order_seq_cst) == 0) return;
  epoch_->fetch_add(1, std::memory_order_seq_cst);
}

void eventcount::notify_all() noexcept { notify_one(); }

#endif

}  // namespace ffq::runtime
