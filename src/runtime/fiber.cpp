#include "ffq/runtime/fiber.hpp"

#include <ucontext.h>

#include <cassert>
#include <deque>
#include <vector>

namespace ffq::runtime {

namespace {

struct fiber_state {
  ucontext_t ctx{};
  std::vector<char> stack;
  std::function<void()> fn;
  bool finished = false;
};

}  // namespace

struct fiber_scheduler::impl {
  ucontext_t main_ctx{};
  std::deque<fiber_state*> ready;
  std::vector<std::unique_ptr<fiber_state>> all;
  fiber_state* current = nullptr;

  static thread_local impl* active;  // scheduler running on this OS thread

  static void trampoline() {
    impl* self = active;
    fiber_state* f = self->current;
    f->fn();
    f->finished = true;
    // Back to the scheduler loop; this context is never resumed again.
    swapcontext(&f->ctx, &self->main_ctx);
  }
};

thread_local fiber_scheduler::impl* fiber_scheduler::impl::active = nullptr;

fiber_scheduler::fiber_scheduler() : impl_(std::make_unique<impl>()) {}
fiber_scheduler::~fiber_scheduler() = default;

void fiber_scheduler::spawn(std::function<void()> fn) {
  auto f = std::make_unique<fiber_state>();
  f->stack.resize(kStackBytes);
  f->fn = std::move(fn);
  getcontext(&f->ctx);
  f->ctx.uc_stack.ss_sp = f->stack.data();
  f->ctx.uc_stack.ss_size = f->stack.size();
  f->ctx.uc_link = nullptr;  // termination handled by the trampoline
  makecontext(&f->ctx, reinterpret_cast<void (*)()>(&impl::trampoline), 0);
  impl_->ready.push_back(f.get());
  impl_->all.push_back(std::move(f));
}

void fiber_scheduler::run() {
  assert(impl::active == nullptr && "nested schedulers on one OS thread");
  impl::active = impl_.get();
  while (!impl_->ready.empty()) {
    fiber_state* f = impl_->ready.front();
    impl_->ready.pop_front();
    impl_->current = f;
    swapcontext(&impl_->main_ctx, &f->ctx);
    impl_->current = nullptr;
    if (!f->finished) {
      impl_->ready.push_back(f);  // yielded: reschedule round-robin
    }
  }
  impl::active = nullptr;
}

std::size_t fiber_scheduler::live_fibers() const noexcept {
  std::size_t n = 0;
  for (const auto& f : impl_->all) {
    if (!f->finished) ++n;
  }
  return n;
}

void fiber_scheduler::yield() {
  impl* self = impl::active;
  if (self == nullptr || self->current == nullptr) return;  // not in a fiber
  fiber_state* f = self->current;
  swapcontext(&f->ctx, &self->main_ctx);
}

bool fiber_scheduler::in_fiber() noexcept {
  return impl::active != nullptr && impl::active->current != nullptr;
}

}  // namespace ffq::runtime
