#include "ffq/runtime/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <algorithm>

namespace ffq::runtime {

const char* to_string(placement_policy p) noexcept {
  switch (p) {
    case placement_policy::same_ht:
      return "same-HT";
    case placement_policy::sibling_ht:
      return "sibling-HT";
    case placement_policy::other_core:
      return "other-core";
    case placement_policy::none:
      return "no-affinity";
  }
  return "?";
}

std::optional<placement_policy> placement_from_string(const std::string& s) {
  if (s == "same-HT" || s == "same_ht" || s == "same") return placement_policy::same_ht;
  if (s == "sibling-HT" || s == "sibling_ht" || s == "sibling")
    return placement_policy::sibling_ht;
  if (s == "other-core" || s == "other_core" || s == "other")
    return placement_policy::other_core;
  if (s == "no-affinity" || s == "none") return placement_policy::none;
  return std::nullopt;
}

bool pin_self_to(int os_cpu_id) noexcept {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(os_cpu_id, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

bool pin_self_to(const std::vector<int>& os_cpu_ids) noexcept {
  if (os_cpu_ids.empty()) return unpin_self();
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int id : os_cpu_ids) CPU_SET(id, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

bool unpin_self() noexcept {
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int i = 0; i < CPU_SETSIZE; ++i) CPU_SET(i, &set);
  // The kernel intersects with the allowed set, so this cannot fail for
  // cpuset reasons; EINVAL only if the intersection is empty (impossible).
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

std::vector<int> current_affinity() {
  cpu_set_t set;
  CPU_ZERO(&set);
  std::vector<int> cpus;
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) return cpus;
  for (int i = 0; i < CPU_SETSIZE; ++i) {
    if (CPU_ISSET(i, &set)) cpus.push_back(i);
  }
  return cpus;
}

std::vector<group_placement> plan_placement(const cpu_topology& topo,
                                            placement_policy policy,
                                            std::size_t groups) {
  std::vector<group_placement> plan(groups);
  if (policy == placement_policy::none || topo.num_cores() == 0) {
    return plan;  // all groups unpinned
  }

  const std::size_t ncores = topo.num_cores();
  for (std::size_t g = 0; g < groups; ++g) {
    const int core = static_cast<int>(g % ncores);
    const auto members = topo.core_members(core);
    if (members.empty()) continue;  // defensive; discover() never yields this

    switch (policy) {
      case placement_policy::same_ht:
        // Everything on the first hardware thread of the core.
        plan[g].producer_cpus = {members.front()};
        plan[g].consumer_cpus = {members.front()};
        break;
      case placement_policy::sibling_ht:
        plan[g].producer_cpus = {members.front()};
        // Consumers on the sibling; cores without SMT degrade to same-HT,
        // which the caller can detect via the topology if it cares.
        plan[g].consumer_cpus = {members.size() > 1 ? members[1] : members.front()};
        break;
      case placement_policy::other_core: {
        plan[g].producer_cpus = {members.front()};
        const std::size_t other =
            ncores > 1 ? (g + std::max<std::size_t>(groups, 1)) % ncores : 0;
        const auto other_members =
            topo.core_members(static_cast<int>(other == g % ncores && ncores > 1
                                                   ? (other + 1) % ncores
                                                   : other));
        plan[g].consumer_cpus = {other_members.empty() ? members.front()
                                                       : other_members.front()};
        break;
      }
      case placement_policy::none:
        break;
    }
  }
  return plan;
}

}  // namespace ffq::runtime
