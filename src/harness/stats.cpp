#include "ffq/harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ffq::harness {

run_stats summarize(std::vector<double> samples) {
  run_stats s;
  s.runs = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples.size() % 2 == 1
                 ? samples[samples.size() / 2]
                 : (samples[samples.size() / 2 - 1] + samples[samples.size() / 2]) / 2.0;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

std::string human_rate(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", ops_per_sec / 1e9);
  } else if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", ops_per_sec);
  }
  return buf;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace ffq::harness
