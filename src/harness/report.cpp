#include "ffq/harness/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "ffq/runtime/perf_counters.hpp"
#include "ffq/runtime/timing.hpp"
#include "ffq/runtime/topology.hpp"
#include "ffq/telemetry/json.hpp"
#include "ffq/trace/export.hpp"

namespace ffq::harness {

table::table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string table::str() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) width[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) os << "  ";
      const std::string& cell = i < row.size() ? row[i] : "";
      // Right-align everything but the first (label) column.
      if (i == 0) {
        os << cell << std::string(width[i] - cell.size(), ' ');
      } else {
        os << std::string(width[i] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < width.size(); ++i) total += width[i] + (i ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

bool table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) f << ',';
      f << (i < row.size() ? row[i] : "");
    }
    f << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(f);
}

namespace {

// Full RFC 8259 escaping (quote, backslash, all control characters),
// shared with the telemetry snapshot writer.
using ffq::telemetry::json_escape;

/// Emit a cell as a bare number when the whole cell parses as one,
/// otherwise as a quoted string.
void emit_json_value(std::ofstream& f, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(v)) {
      f << cell;
      return;
    }
  }
  f << '"' << json_escape(cell) << '"';
}

}  // namespace

bool table::write_json(const std::string& path, const std::string& experiment,
                       const ffq::telemetry::metrics_snapshot* metrics) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"schema\": \"" << kReportSchema << "\",\n";
  f << "  \"experiment\": \"" << json_escape(experiment) << "\",\n";
  f << "  \"columns\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) f << ", ";
    f << '"' << json_escape(columns_[i]) << '"';
  }
  f << "],\n  \"rows\": [\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    f << "    {";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) f << ", ";
      f << '"' << json_escape(columns_[i]) << "\": ";
      emit_json_value(f, i < rows_[r].size() ? rows_[r][i] : "");
    }
    f << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  f << "  ]";
  if (metrics != nullptr) {
    f << ",\n  \"metrics\": " << metrics->to_json(2);
  }
  f << "\n}\n";
  return static_cast<bool>(f);
}

void print_experiment_header(const std::string& experiment_id,
                             const std::string& description) {
  const auto topo = ffq::runtime::cpu_topology::discover();
  std::printf("=== %s ===\n", experiment_id.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("machine: %s; TSC %.2f GHz\n", topo.summary().c_str(),
              ffq::runtime::tsc_ghz());
  std::printf("%s\n", ffq::runtime::perf_capability_summary().c_str());
  std::printf("note: paper testbeds are 8–80 hardware threads; thread "
              "counts beyond this machine run oversubscribed, which "
              "shifts crossover points but preserves orderings.\n\n");
}

bench_cli bench_cli::parse(int argc, char** argv) {
  bench_cli cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      cli.csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      cli.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cli.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      cli.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      cli.scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      cli.quick = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "flags: --csv <path>  --json <path>  --metrics <path>  "
          "--trace <path>  --runs <n>  --scale <f>  --quick\n");
    }
  }
  if (cli.quick) {
    cli.runs = std::min(cli.runs, 3);
    cli.scale *= 0.1;
  }
  if (cli.runs < 1) cli.runs = 1;
  return cli;
}

bool write_trace_if_requested(const bench_cli& cli,
                              const ffq::telemetry::metrics_snapshot* metrics) {
  if (cli.trace_path.empty()) return true;
  ffq::trace::export_options opts;
  opts.metrics = metrics;
  if (!ffq::trace::write_chrome_trace(cli.trace_path, opts)) {
    std::fprintf(stderr, "cannot write trace to %s\n",
                 cli.trace_path.c_str());
    return false;
  }
  std::printf("trace written to %s (open at ui.perfetto.dev)\n",
              cli.trace_path.c_str());
  return true;
}

}  // namespace ffq::harness
