#include "ffq/harness/driver.hpp"

#include <thread>

#include "ffq/runtime/rng.hpp"
#include "ffq/runtime/timing.hpp"

namespace ffq::harness {

double measure_think_overhead_ns(std::uint64_t min_ns, std::uint64_t max_ns,
                                 int samples) {
  ffq::runtime::xoshiro256ss rng(42);
  const double ghz = ffq::runtime::tsc_ghz();
  const std::uint64_t span = max_ns >= min_ns ? max_ns - min_ns + 1 : 1;
  const std::uint64_t t0 = ffq::runtime::rdtsc_fenced();
  for (int i = 0; i < samples; ++i) {
    const double ns = static_cast<double>(min_ns + rng.bounded(span));
    ffq::runtime::spin_ns_tsc(ffq::runtime::rdtsc() +
                              static_cast<std::uint64_t>(ns * ghz));
  }
  const std::uint64_t t1 = ffq::runtime::rdtsc_fenced();
  return ffq::runtime::tsc_to_ns(t1 - t0) / samples;
}

bool oversubscribed(int threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 && static_cast<unsigned>(threads) > hw;
}

}  // namespace ffq::harness
