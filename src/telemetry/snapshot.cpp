#include "ffq/telemetry/snapshot.hpp"

#include <fstream>
#include <string>

#include "ffq/telemetry/json.hpp"

namespace ffq::telemetry {

namespace {

std::string pad(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

void append_uint_map(std::string& out,
                     const std::map<std::string, std::uint64_t>& m,
                     const std::string& in2, const std::string& in3) {
  bool first = true;
  for (const auto& [key, value] : m) {
    if (!first) out += ",";
    first = false;
    out += "\n" + in3 + "\"" + json_escape(key) + "\": " + std::to_string(value);
  }
  if (!m.empty()) out += "\n" + in2;
}

}  // namespace

std::string metrics_snapshot::to_json(int indent) const {
  const std::string in1 = pad(indent);
  const std::string in2 = pad(indent + 2);
  const std::string in3 = pad(indent + 4);
  const std::string in4 = pad(indent + 6);

  std::string out = "{\n";
  out += in2 + "\"schema\": \"" + kMetricsSchema + "\",\n";

  out += in2 + "\"counters\": {";
  append_uint_map(out, counters, in2, in3);
  out += "},\n";

  out += in2 + "\"histograms\": {";
  bool first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n" + in3 + "\"" + json_escape(name) + "\": {\n";
    out += in4 + "\"count\": " + std::to_string(h.count) + ",\n";
    out += in4 + "\"max\": " + std::to_string(h.max) + ",\n";
    out += in4 + "\"mean\": " + std::to_string(h.mean) + ",\n";
    out += in4 + "\"p50\": " + std::to_string(h.p50) + ",\n";
    out += in4 + "\"p90\": " + std::to_string(h.p90) + ",\n";
    out += in4 + "\"p99\": " + std::to_string(h.p99) + ",\n";
    out += in4 + "\"p999\": " + std::to_string(h.p999) + "\n";
    out += in3 + "}";
  }
  if (!histograms.empty()) out += "\n" + in2;
  out += "},\n";

  out += in2 + "\"perf\": {";
  append_uint_map(out, perf, in2, in3);
  out += "}\n";

  out += in1 + "}";
  return out;
}

bool metrics_snapshot::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(0) << "\n";
  return static_cast<bool>(out);
}

}  // namespace ffq::telemetry
