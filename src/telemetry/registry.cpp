#include "ffq/telemetry/registry.hpp"

namespace ffq::telemetry {

log_histogram* latency_recorder::new_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  return &shards_.emplace_back();
}

merged_histogram latency_recorder::merge() const {
  // Lock only the shard list; the shards themselves are read with
  // relaxed loads while their owner threads may still be recording.
  std::lock_guard<std::mutex> lock(mu_);
  merged_histogram m;
  for (const auto& shard : shards_) m.add(shard);
  return m;
}

registry& registry::instance() {
  static registry r;
  return r;
}

latency_recorder& registry::recorder(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return recorders_[std::string(name)];
}

void registry::accumulate(std::string_view domain, std::string_view name,
                          std::uint64_t delta) {
  std::string key;
  key.reserve(domain.size() + 1 + name.size());
  key.append(domain).append("/").append(name);
  std::lock_guard<std::mutex> lock(mu_);
  counters_[key] += delta;
}

void registry::set_perf_sample(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  perf_[std::string(name)] = value;
}

metrics_snapshot registry::snapshot() const {
  metrics_snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters = counters_;
  snap.perf = perf_;
  for (const auto& [name, rec] : recorders_) {
    snap.histograms[name] = rec.merge().summary();
  }
  return snap;
}

void registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  recorders_.clear();
  counters_.clear();
  perf_.clear();
}

}  // namespace ffq::telemetry
