# Empty dependencies file for green_syscalls.
# This may be replaced when dependencies are built.
