file(REMOVE_RECURSE
  "CMakeFiles/green_syscalls.dir/green_syscalls.cpp.o"
  "CMakeFiles/green_syscalls.dir/green_syscalls.cpp.o.d"
  "green_syscalls"
  "green_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
