file(REMOVE_RECURSE
  "CMakeFiles/syscall_service.dir/syscall_service.cpp.o"
  "CMakeFiles/syscall_service.dir/syscall_service.cpp.o.d"
  "syscall_service"
  "syscall_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscall_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
