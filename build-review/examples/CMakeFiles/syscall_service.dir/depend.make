# Empty dependencies file for syscall_service.
# This may be replaced when dependencies are built.
