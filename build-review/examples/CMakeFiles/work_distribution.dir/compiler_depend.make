# Empty compiler generated dependencies file for work_distribution.
# This may be replaced when dependencies are built.
