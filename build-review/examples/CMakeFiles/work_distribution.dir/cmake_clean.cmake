file(REMOVE_RECURSE
  "CMakeFiles/work_distribution.dir/work_distribution.cpp.o"
  "CMakeFiles/work_distribution.dir/work_distribution.cpp.o.d"
  "work_distribution"
  "work_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
