# Empty compiler generated dependencies file for bench_fig3_queue_size.
# This may be replaced when dependencies are built.
