file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_queue_size.dir/bench_fig3_queue_size.cpp.o"
  "CMakeFiles/bench_fig3_queue_size.dir/bench_fig3_queue_size.cpp.o.d"
  "bench_fig3_queue_size"
  "bench_fig3_queue_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_queue_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
