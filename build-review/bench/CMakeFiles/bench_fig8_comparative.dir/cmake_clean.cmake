file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_comparative.dir/bench_fig8_comparative.cpp.o"
  "CMakeFiles/bench_fig8_comparative.dir/bench_fig8_comparative.cpp.o.d"
  "bench_fig8_comparative"
  "bench_fig8_comparative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_comparative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
