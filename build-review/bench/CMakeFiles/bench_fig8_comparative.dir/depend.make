# Empty dependencies file for bench_fig8_comparative.
# This may be replaced when dependencies are built.
