file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_false_sharing.dir/bench_fig2_false_sharing.cpp.o"
  "CMakeFiles/bench_fig2_false_sharing.dir/bench_fig2_false_sharing.cpp.o.d"
  "bench_fig2_false_sharing"
  "bench_fig2_false_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
