# Empty dependencies file for bench_fig2_false_sharing.
# This may be replaced when dependencies are built.
