# Empty dependencies file for bench_fig6_affinity_throughput.
# This may be replaced when dependencies are built.
