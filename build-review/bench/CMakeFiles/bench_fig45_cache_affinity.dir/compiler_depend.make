# Empty compiler generated dependencies file for bench_fig45_cache_affinity.
# This may be replaced when dependencies are built.
