file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_cache_affinity.dir/bench_fig45_cache_affinity.cpp.o"
  "CMakeFiles/bench_fig45_cache_affinity.dir/bench_fig45_cache_affinity.cpp.o.d"
  "bench_fig45_cache_affinity"
  "bench_fig45_cache_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_cache_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
