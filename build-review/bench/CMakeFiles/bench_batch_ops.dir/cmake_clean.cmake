file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_ops.dir/bench_batch_ops.cpp.o"
  "CMakeFiles/bench_batch_ops.dir/bench_batch_ops.cpp.o.d"
  "bench_batch_ops"
  "bench_batch_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
