# Empty compiler generated dependencies file for bench_batch_ops.
# This may be replaced when dependencies are built.
