# Empty compiler generated dependencies file for bench_spsc_family.
# This may be replaced when dependencies are built.
