file(REMOVE_RECURSE
  "CMakeFiles/bench_spsc_family.dir/bench_spsc_family.cpp.o"
  "CMakeFiles/bench_spsc_family.dir/bench_spsc_family.cpp.o.d"
  "bench_spsc_family"
  "bench_spsc_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spsc_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
