file(REMOVE_RECURSE
  "libffq_cachesim.a"
)
