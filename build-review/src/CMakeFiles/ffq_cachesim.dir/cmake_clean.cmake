file(REMOVE_RECURSE
  "CMakeFiles/ffq_cachesim.dir/cachesim/cache.cpp.o"
  "CMakeFiles/ffq_cachesim.dir/cachesim/cache.cpp.o.d"
  "CMakeFiles/ffq_cachesim.dir/cachesim/hierarchy.cpp.o"
  "CMakeFiles/ffq_cachesim.dir/cachesim/hierarchy.cpp.o.d"
  "CMakeFiles/ffq_cachesim.dir/cachesim/queue_trace.cpp.o"
  "CMakeFiles/ffq_cachesim.dir/cachesim/queue_trace.cpp.o.d"
  "libffq_cachesim.a"
  "libffq_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffq_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
