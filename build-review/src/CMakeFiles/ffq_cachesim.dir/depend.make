# Empty dependencies file for ffq_cachesim.
# This may be replaced when dependencies are built.
