
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache.cpp" "src/CMakeFiles/ffq_cachesim.dir/cachesim/cache.cpp.o" "gcc" "src/CMakeFiles/ffq_cachesim.dir/cachesim/cache.cpp.o.d"
  "/root/repo/src/cachesim/hierarchy.cpp" "src/CMakeFiles/ffq_cachesim.dir/cachesim/hierarchy.cpp.o" "gcc" "src/CMakeFiles/ffq_cachesim.dir/cachesim/hierarchy.cpp.o.d"
  "/root/repo/src/cachesim/queue_trace.cpp" "src/CMakeFiles/ffq_cachesim.dir/cachesim/queue_trace.cpp.o" "gcc" "src/CMakeFiles/ffq_cachesim.dir/cachesim/queue_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
