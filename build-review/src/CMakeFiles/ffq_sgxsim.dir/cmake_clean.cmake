file(REMOVE_RECURSE
  "CMakeFiles/ffq_sgxsim.dir/sgxsim/enclave.cpp.o"
  "CMakeFiles/ffq_sgxsim.dir/sgxsim/enclave.cpp.o.d"
  "CMakeFiles/ffq_sgxsim.dir/sgxsim/syscall_service.cpp.o"
  "CMakeFiles/ffq_sgxsim.dir/sgxsim/syscall_service.cpp.o.d"
  "libffq_sgxsim.a"
  "libffq_sgxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffq_sgxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
