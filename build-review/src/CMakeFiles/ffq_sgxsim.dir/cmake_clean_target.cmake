file(REMOVE_RECURSE
  "libffq_sgxsim.a"
)
