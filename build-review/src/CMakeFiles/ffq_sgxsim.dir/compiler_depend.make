# Empty compiler generated dependencies file for ffq_sgxsim.
# This may be replaced when dependencies are built.
