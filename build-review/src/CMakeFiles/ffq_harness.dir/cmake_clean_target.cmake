file(REMOVE_RECURSE
  "libffq_harness.a"
)
