file(REMOVE_RECURSE
  "CMakeFiles/ffq_harness.dir/harness/driver.cpp.o"
  "CMakeFiles/ffq_harness.dir/harness/driver.cpp.o.d"
  "CMakeFiles/ffq_harness.dir/harness/report.cpp.o"
  "CMakeFiles/ffq_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/ffq_harness.dir/harness/stats.cpp.o"
  "CMakeFiles/ffq_harness.dir/harness/stats.cpp.o.d"
  "libffq_harness.a"
  "libffq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
