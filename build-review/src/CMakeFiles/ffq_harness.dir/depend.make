# Empty dependencies file for ffq_harness.
# This may be replaced when dependencies are built.
