
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/driver.cpp" "src/CMakeFiles/ffq_harness.dir/harness/driver.cpp.o" "gcc" "src/CMakeFiles/ffq_harness.dir/harness/driver.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/ffq_harness.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/ffq_harness.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/stats.cpp" "src/CMakeFiles/ffq_harness.dir/harness/stats.cpp.o" "gcc" "src/CMakeFiles/ffq_harness.dir/harness/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/ffq_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/ffq_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
