
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/affinity.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/affinity.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/affinity.cpp.o.d"
  "/root/repo/src/runtime/eventcount.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/eventcount.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/eventcount.cpp.o.d"
  "/root/repo/src/runtime/fiber.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/fiber.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/fiber.cpp.o.d"
  "/root/repo/src/runtime/htm.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/htm.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/htm.cpp.o.d"
  "/root/repo/src/runtime/perf_counters.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/perf_counters.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/perf_counters.cpp.o.d"
  "/root/repo/src/runtime/timing.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/timing.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/timing.cpp.o.d"
  "/root/repo/src/runtime/topology.cpp" "src/CMakeFiles/ffq_runtime.dir/runtime/topology.cpp.o" "gcc" "src/CMakeFiles/ffq_runtime.dir/runtime/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
