file(REMOVE_RECURSE
  "CMakeFiles/ffq_runtime.dir/runtime/affinity.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/affinity.cpp.o.d"
  "CMakeFiles/ffq_runtime.dir/runtime/eventcount.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/eventcount.cpp.o.d"
  "CMakeFiles/ffq_runtime.dir/runtime/fiber.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/fiber.cpp.o.d"
  "CMakeFiles/ffq_runtime.dir/runtime/htm.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/htm.cpp.o.d"
  "CMakeFiles/ffq_runtime.dir/runtime/perf_counters.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/perf_counters.cpp.o.d"
  "CMakeFiles/ffq_runtime.dir/runtime/timing.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/timing.cpp.o.d"
  "CMakeFiles/ffq_runtime.dir/runtime/topology.cpp.o"
  "CMakeFiles/ffq_runtime.dir/runtime/topology.cpp.o.d"
  "libffq_runtime.a"
  "libffq_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffq_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
