file(REMOVE_RECURSE
  "libffq_runtime.a"
)
