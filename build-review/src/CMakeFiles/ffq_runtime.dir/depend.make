# Empty dependencies file for ffq_runtime.
# This may be replaced when dependencies are built.
