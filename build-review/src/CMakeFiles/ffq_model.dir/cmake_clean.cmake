file(REMOVE_RECURSE
  "CMakeFiles/ffq_model.dir/model/checker.cpp.o"
  "CMakeFiles/ffq_model.dir/model/checker.cpp.o.d"
  "libffq_model.a"
  "libffq_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffq_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
