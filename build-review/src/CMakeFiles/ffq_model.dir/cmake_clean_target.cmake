file(REMOVE_RECURSE
  "libffq_model.a"
)
