# Empty dependencies file for ffq_model.
# This may be replaced when dependencies are built.
