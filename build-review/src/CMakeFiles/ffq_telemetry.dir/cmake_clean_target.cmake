file(REMOVE_RECURSE
  "libffq_telemetry.a"
)
