# Empty compiler generated dependencies file for ffq_telemetry.
# This may be replaced when dependencies are built.
