file(REMOVE_RECURSE
  "CMakeFiles/ffq_telemetry.dir/telemetry/registry.cpp.o"
  "CMakeFiles/ffq_telemetry.dir/telemetry/registry.cpp.o.d"
  "CMakeFiles/ffq_telemetry.dir/telemetry/snapshot.cpp.o"
  "CMakeFiles/ffq_telemetry.dir/telemetry/snapshot.cpp.o.d"
  "libffq_telemetry.a"
  "libffq_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffq_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
