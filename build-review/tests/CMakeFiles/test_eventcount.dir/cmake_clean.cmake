file(REMOVE_RECURSE
  "CMakeFiles/test_eventcount.dir/test_eventcount.cpp.o"
  "CMakeFiles/test_eventcount.dir/test_eventcount.cpp.o.d"
  "test_eventcount"
  "test_eventcount.pdb"
  "test_eventcount[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eventcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
