# Empty compiler generated dependencies file for test_eventcount.
# This may be replaced when dependencies are built.
