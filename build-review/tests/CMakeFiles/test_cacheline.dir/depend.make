# Empty dependencies file for test_cacheline.
# This may be replaced when dependencies are built.
