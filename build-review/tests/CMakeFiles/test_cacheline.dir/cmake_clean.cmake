file(REMOVE_RECURSE
  "CMakeFiles/test_cacheline.dir/test_cacheline.cpp.o"
  "CMakeFiles/test_cacheline.dir/test_cacheline.cpp.o.d"
  "test_cacheline"
  "test_cacheline.pdb"
  "test_cacheline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cacheline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
