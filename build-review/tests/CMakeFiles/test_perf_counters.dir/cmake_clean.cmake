file(REMOVE_RECURSE
  "CMakeFiles/test_perf_counters.dir/test_perf_counters.cpp.o"
  "CMakeFiles/test_perf_counters.dir/test_perf_counters.cpp.o.d"
  "test_perf_counters"
  "test_perf_counters.pdb"
  "test_perf_counters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
