# Empty compiler generated dependencies file for test_dwcas.
# This may be replaced when dependencies are built.
