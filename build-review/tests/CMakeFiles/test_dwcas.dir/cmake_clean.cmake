file(REMOVE_RECURSE
  "CMakeFiles/test_dwcas.dir/test_dwcas.cpp.o"
  "CMakeFiles/test_dwcas.dir/test_dwcas.cpp.o.d"
  "test_dwcas"
  "test_dwcas.pdb"
  "test_dwcas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dwcas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
