# Empty compiler generated dependencies file for test_spsc.
# This may be replaced when dependencies are built.
