file(REMOVE_RECURSE
  "CMakeFiles/test_spsc.dir/test_spsc.cpp.o"
  "CMakeFiles/test_spsc.dir/test_spsc.cpp.o.d"
  "test_spsc"
  "test_spsc.pdb"
  "test_spsc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
