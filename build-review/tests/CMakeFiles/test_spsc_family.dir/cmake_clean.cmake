file(REMOVE_RECURSE
  "CMakeFiles/test_spsc_family.dir/test_spsc_family.cpp.o"
  "CMakeFiles/test_spsc_family.dir/test_spsc_family.cpp.o.d"
  "test_spsc_family"
  "test_spsc_family.pdb"
  "test_spsc_family[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spsc_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
