# Empty dependencies file for test_spsc_family.
# This may be replaced when dependencies are built.
