# Empty dependencies file for test_spmc.
# This may be replaced when dependencies are built.
