file(REMOVE_RECURSE
  "CMakeFiles/test_spmc.dir/test_spmc.cpp.o"
  "CMakeFiles/test_spmc.dir/test_spmc.cpp.o.d"
  "test_spmc"
  "test_spmc.pdb"
  "test_spmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
