# Empty dependencies file for test_reclaimers.
# This may be replaced when dependencies are built.
