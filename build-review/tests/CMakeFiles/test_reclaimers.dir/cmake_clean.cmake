file(REMOVE_RECURSE
  "CMakeFiles/test_reclaimers.dir/test_reclaimers.cpp.o"
  "CMakeFiles/test_reclaimers.dir/test_reclaimers.cpp.o.d"
  "test_reclaimers"
  "test_reclaimers.pdb"
  "test_reclaimers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reclaimers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
