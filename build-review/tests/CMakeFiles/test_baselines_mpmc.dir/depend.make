# Empty dependencies file for test_baselines_mpmc.
# This may be replaced when dependencies are built.
