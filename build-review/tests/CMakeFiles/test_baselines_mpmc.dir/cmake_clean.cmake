file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_mpmc.dir/test_baselines_mpmc.cpp.o"
  "CMakeFiles/test_baselines_mpmc.dir/test_baselines_mpmc.cpp.o.d"
  "test_baselines_mpmc"
  "test_baselines_mpmc.pdb"
  "test_baselines_mpmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_mpmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
