# Empty compiler generated dependencies file for test_sgxsim.
# This may be replaced when dependencies are built.
