file(REMOVE_RECURSE
  "CMakeFiles/test_sgxsim.dir/test_sgxsim.cpp.o"
  "CMakeFiles/test_sgxsim.dir/test_sgxsim.cpp.o.d"
  "test_sgxsim"
  "test_sgxsim.pdb"
  "test_sgxsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
