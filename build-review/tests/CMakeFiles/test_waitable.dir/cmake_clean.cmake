file(REMOVE_RECURSE
  "CMakeFiles/test_waitable.dir/test_waitable.cpp.o"
  "CMakeFiles/test_waitable.dir/test_waitable.cpp.o.d"
  "test_waitable"
  "test_waitable.pdb"
  "test_waitable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waitable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
