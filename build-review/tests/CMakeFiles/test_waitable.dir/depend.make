# Empty dependencies file for test_waitable.
# This may be replaced when dependencies are built.
