file(REMOVE_RECURSE
  "CMakeFiles/test_mpmc.dir/test_mpmc.cpp.o"
  "CMakeFiles/test_mpmc.dir/test_mpmc.cpp.o.d"
  "test_mpmc"
  "test_mpmc.pdb"
  "test_mpmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
