# Empty dependencies file for test_mpmc.
# This may be replaced when dependencies are built.
