file(REMOVE_RECURSE
  "CMakeFiles/test_affinity.dir/test_affinity.cpp.o"
  "CMakeFiles/test_affinity.dir/test_affinity.cpp.o.d"
  "test_affinity"
  "test_affinity.pdb"
  "test_affinity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
