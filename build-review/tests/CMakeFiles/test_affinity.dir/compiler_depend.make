# Empty compiler generated dependencies file for test_affinity.
# This may be replaced when dependencies are built.
