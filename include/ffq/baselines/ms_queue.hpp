// ms_queue.hpp — the Michael & Scott non-blocking queue (PODC'96).
//
// Paper §II: "a non-blocking list-based unbounded MPMC queue ... does not
// scale well in practice due to contention on tail and head pointers" —
// it is the worst performer in Fig. 8 and the reference point every other
// baseline improves on.
//
// This implementation is the classic two-pointer CAS algorithm with
// hazard-pointer reclamation (slot 0 protects the node being operated on,
// slot 1 the successor during dequeue). Progress: lock-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "ffq/baselines/reclaimers.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/runtime/hazard.hpp"

namespace ffq::baselines {

/// `Reclaimer` selects the safe-memory-reclamation policy (see
/// reclaimers.hpp); the algorithm itself is identical under both.
template <typename T, typename Reclaimer = hazard_reclaimer>
class ms_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

  struct node {
    std::atomic<node*> next{nullptr};
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    bool has_value = false;

    T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
  };

 public:
  using value_type = T;
  static constexpr const char* kName = "ms-queue";

  ms_queue() {
    node* dummy = new node;
    head_->store(dummy, std::memory_order_relaxed);
    tail_->store(dummy, std::memory_order_relaxed);
  }

  ms_queue(const ms_queue&) = delete;
  ms_queue& operator=(const ms_queue&) = delete;

  ~ms_queue() {
    node* n = head_->load(std::memory_order_relaxed);
    while (n != nullptr) {
      node* next = n->next.load(std::memory_order_relaxed);
      if (n->has_value) std::destroy_at(n->ptr());
      delete n;
      n = next;
    }
  }

  /// Lock-free; any thread.
  void enqueue(T value) {
    node* n = new node;
    std::construct_at(n->ptr(), std::move(value));
    n->has_value = true;

    typename Reclaimer::guard g;
    ffq::runtime::exp_backoff bo;
    for (;;) {
      node* tail = g.protect(0, *tail_);
      node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_->load(std::memory_order_acquire)) continue;
      if (next != nullptr) {
        // Tail lagging: help swing it forward.
        tail_->compare_exchange_weak(tail, next, std::memory_order_release,
                                     std::memory_order_relaxed);
        continue;
      }
      node* expected = nullptr;
      if (tail->next.compare_exchange_weak(expected, n,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        tail_->compare_exchange_strong(tail, n, std::memory_order_release,
                                       std::memory_order_relaxed);
        return;
      }
      bo.pause();
    }
  }

  /// Lock-free; any thread. False when the queue is empty.
  bool try_dequeue(T& out) {
    typename Reclaimer::guard g;
    ffq::runtime::exp_backoff bo;
    for (;;) {
      node* head = g.protect(0, *head_);
      node* tail = tail_->load(std::memory_order_acquire);
      node* next = g.protect(1, head->next);
      if (head != head_->load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        return false;  // empty (head is the dummy)
      }
      if (head == tail) {
        // Tail lagging behind an in-flight enqueue: help.
        tail_->compare_exchange_weak(tail, next, std::memory_order_release,
                                     std::memory_order_relaxed);
        continue;
      }
      // Read the value *before* the CAS publishes the node for reuse;
      // hazard slot 1 keeps `next` alive even if we lose the race.
      if (head_->compare_exchange_weak(head, next, std::memory_order_release,
                                       std::memory_order_relaxed)) {
        out = std::move(*next->ptr());
        std::destroy_at(next->ptr());
        next->has_value = false;
        g.retire(head);  // old dummy
        return true;
      }
      bo.pause();
    }
  }

 private:
  ffq::runtime::padded<std::atomic<node*>> head_;
  ffq::runtime::padded<std::atomic<node*>> tail_;
};

}  // namespace ffq::baselines
