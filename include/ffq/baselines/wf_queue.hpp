// wf_queue.hpp — the Yang & Mellor-Crummey fetch-and-add queue
// (PPoPP'16), fast-path implementation.
//
// Paper §II: "WFQueue provides a wait-free, unbounded MPMC queue that
// also relies on fetch-and-add operations, hence avoiding CAS retries ...
// It uses a fast-path/slow-path approach." In Fig. 8 it is the strongest
// competitor to FFQ^m on Intel.
//
// What is reproduced (see DESIGN.md §5.5): the *fast path*, which is what
// the throughput benchmarks exercise — an unbounded array materialized as
// linked segments, enqueue = FAA on the tail index + CAS of the cell from
// BOTTOM, dequeue = FAA on the head index + XCHG of the cell to TOP. A
// poisoned cell (dequeuer arrived first) sends the enqueuer to a fresh
// index. What is NOT reproduced: the wait-free helping protocol
// (patience/phase records); progress here is lock-free, like LCRQ.
//
// Threads operate through per-thread handles (`queue_register` in the
// original artifact). Memory reclamation follows the original's scheme:
// each handle keeps *sticky, monotone* pointers to the last segment it
// used on each side; these are never cleared between operations, so the
// reclamation floor (the minimum over all handles) can never pass a
// segment any thread — even one stalled right after its fetch-and-add —
// may still access. Reclamation frees the chain prefix below the floor
// under a try-lock (cold path: once per segment).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

class wf_queue {
 public:
  using value_type = std::uint64_t;
  static constexpr const char* kName = "wfqueue";

  /// Cells per segment (the original also uses 2^10).
  static constexpr std::size_t kSegmentCells = 1024;

  /// Reserved cell states; payloads must avoid both (the harness's
  /// sequence numbers never get near 2^64-2).
  static constexpr std::uint64_t kBottom = ~0ULL;   ///< never written
  static constexpr std::uint64_t kTop = ~0ULL - 1;  ///< poisoned by a dequeuer


 private:
  struct segment {
    explicit segment(std::uint64_t seg_id) : id(seg_id) {
      for (auto& c : cells) c.store(kBottom, std::memory_order_relaxed);
    }
    const std::uint64_t id;
    std::atomic<segment*> next{nullptr};
    std::atomic<std::uint64_t> cells[kSegmentCells];
  };

  /// Per-handle sticky protection record (see file comment).
  struct record {
    std::atomic<segment*> enq_seg{nullptr};
    std::atomic<segment*> deq_seg{nullptr};
    bool active = true;
  };

 public:
  wf_queue() { first_ = new segment(0); }

  wf_queue(const wf_queue&) = delete;
  wf_queue& operator=(const wf_queue&) = delete;

  ~wf_queue() {
    segment* s = first_;
    while (s != nullptr) {
      segment* n = s->next.load(std::memory_order_relaxed);
      delete s;
      s = n;
    }
  }

  /// Per-thread access token. Holds the sticky segment protections.
  /// Handles must not outlive the queue; a live but idle handle stalls
  /// reclamation (as in the original), it never breaks safety.
  class handle {
   public:
    explicit handle(wf_queue& q) : q_(&q) {
      std::lock_guard<std::mutex> lk(q.reclaim_mutex_);
      rec_ = q.alloc_record_locked();
      rec_->enq_seg.store(q.first_, std::memory_order_relaxed);
      rec_->deq_seg.store(q.first_, std::memory_order_relaxed);
    }

    ~handle() {
      if (q_ != nullptr) {
        std::lock_guard<std::mutex> lk(q_->reclaim_mutex_);
        rec_->active = false;  // drops out of the reclamation floor
      }
    }

    handle(handle&& o) noexcept
        : q_(std::exchange(o.q_, nullptr)), rec_(o.rec_) {}
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;

   private:
    friend class wf_queue;
    wf_queue* q_;
    record* rec_ = nullptr;
  };

  handle make_handle() { return handle(*this); }

  /// Lock-free; any thread (through its own handle).
  void enqueue(handle& h, std::uint64_t value) {
    assert(value < kTop);
    for (;;) {
      const std::uint64_t t = tail_idx_->fetch_add(1, std::memory_order_acq_rel);
      std::atomic<std::uint64_t>& c = locate(h.rec_->enq_seg, t);
      std::uint64_t expected = kBottom;
      if (c.compare_exchange_strong(expected, value, std::memory_order_release,
                                    std::memory_order_acquire)) {
        return;
      }
      // Cell poisoned by an overtaking dequeuer: take a fresh index.
    }
  }

  /// Lock-free; any thread. False when (linearizably) empty.
  bool try_dequeue(handle& h, std::uint64_t& out) {
    for (;;) {
      // Pre-check keeps an empty poll from burning tickets (and poisoning
      // cells future enqueuers would have to skip).
      if (head_idx_->load(std::memory_order_acquire) >=
          tail_idx_->load(std::memory_order_acquire)) {
        return false;
      }
      const std::uint64_t hd = head_idx_->fetch_add(1, std::memory_order_acq_rel);
      std::atomic<std::uint64_t>& c = locate(h.rec_->deq_seg, hd);
      const std::uint64_t v = c.exchange(kTop, std::memory_order_acq_rel);
      if (v != kBottom) {
        out = v;
        maybe_reclaim(hd / kSegmentCells);
        return true;
      }
      // We poisoned an empty cell (overtook the enqueuer of this index).
      const std::uint64_t t = tail_idx_->load(std::memory_order_acquire);
      if (t <= hd + 1) return false;  // empty at linearization
    }
  }

  /// Diagnostics.
  std::uint64_t segments_allocated() const noexcept {
    return segs_allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_freed() const noexcept {
    return segs_freed_.load(std::memory_order_relaxed);
  }

 private:
  /// Find the cell for global index `idx`, walking (and allocating)
  /// segments forward from the handle's sticky anchor `sticky`.
  ///
  /// Safety: `sticky` always points at a live segment (the floor never
  /// passes it), per-side indexes are handed out monotonically per
  /// thread, so the wanted segment id is never *behind* the sticky one;
  /// and every segment the walk touches has id >= sticky->id >= floor, so
  /// none of them can be freed mid-walk. The sticky pointer is advanced
  /// as the walk proceeds (monotone), which is also what publishes the
  /// new protection — a reclaimer that reads a stale value just computes
  /// a lower (more conservative) floor.
  std::atomic<std::uint64_t>& locate(std::atomic<segment*>& sticky,
                                     std::uint64_t idx) {
    const std::uint64_t want = idx / kSegmentCells;
    segment* s = sticky.load(std::memory_order_relaxed);
    assert(s->id <= want && "per-side indexes are monotone per thread");
    while (s->id < want) {
      segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        auto* fresh = new segment(s->id + 1);
        segment* expected = nullptr;
        if (s->next.compare_exchange_strong(expected, fresh,
                                            std::memory_order_release,
                                            std::memory_order_acquire)) {
          segs_allocated_.fetch_add(1, std::memory_order_relaxed);
          next = fresh;
        } else {
          delete fresh;
          next = expected;
        }
      }
      s = next;
      sticky.store(s, std::memory_order_release);
    }
    return s->cells[idx % kSegmentCells];
  }

  /// Opportunistically free segments every thread has moved past. Cold:
  /// called once per segment's worth of dequeues, and skipped entirely
  /// when another thread is already reclaiming.
  void maybe_reclaim(std::uint64_t reached_seg_id) {
    if (reached_seg_id == 0 ||
        reached_seg_id <= last_reclaim_seg_.load(std::memory_order_relaxed)) {
      return;
    }
    std::unique_lock<std::mutex> lk(reclaim_mutex_, std::try_to_lock);
    if (!lk.owns_lock()) return;
    last_reclaim_seg_.store(reached_seg_id, std::memory_order_relaxed);

    // Floor: the oldest segment any live handle may still touch. Stale
    // (older) reads are conservative; sticky pointers only move forward.
    std::uint64_t floor = reached_seg_id;
    for (const auto& r : records_) {
      if (!r->active) continue;
      floor = std::min(floor, r->enq_seg.load(std::memory_order_acquire)->id);
      floor = std::min(floor, r->deq_seg.load(std::memory_order_acquire)->id);
    }
    while (first_->id < floor) {
      segment* next = first_->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // never free the last segment
      delete first_;
      segs_freed_.fetch_add(1, std::memory_order_relaxed);
      first_ = next;
    }
  }

  record* alloc_record_locked() {
    for (auto& r : records_) {
      if (!r->active) {
        r->active = true;
        return r.get();
      }
    }
    records_.push_back(std::make_unique<record>());
    return records_.back().get();
  }

  ffq::runtime::padded<std::atomic<std::uint64_t>> tail_idx_{0};
  ffq::runtime::padded<std::atomic<std::uint64_t>> head_idx_{0};
  std::atomic<std::uint64_t> segs_allocated_{1};
  std::atomic<std::uint64_t> segs_freed_{0};
  std::atomic<std::uint64_t> last_reclaim_seg_{0};

  std::mutex reclaim_mutex_;                            // cold paths only
  std::vector<std::unique_ptr<record>> records_;  // guarded by mutex
  segment* first_;  // oldest live segment; guarded by reclaim_mutex_
};

}  // namespace ffq::baselines
