// reclaimers.hpp — pluggable safe-memory-reclamation policies for the
// node-based baseline queues.
//
// Two classic schemes with opposite trade-offs:
//   * hazard pointers — per-pointer protection: bounded garbage, an
//     extra seq_cst store per protected traversal step;
//   * epochs — per-region protection: near-free reads, unbounded garbage
//     while any reader stalls.
// The MS queue is templated over the policy; bench_reclamation measures
// the difference (an ablation the paper's §II survey implies but never
// shows).
//
// Policy concept:
//   struct reclaimer {
//     class guard {            // one per operation, RAII
//       T* protect(slot, const std::atomic<T*>& src);
//       void retire(T* p);
//     };
//   };
#pragma once

#include <atomic>
#include <cstddef>

#include "ffq/runtime/epoch.hpp"
#include "ffq/runtime/hazard.hpp"

namespace ffq::baselines {

struct hazard_reclaimer {
  static constexpr const char* kName = "hazard";

  class guard {
   public:
    guard() : rec_(&*ffq::runtime::tls_global_hazard()) {}
    ~guard() { rec_->clear_all(); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <typename T>
    T* protect(std::size_t slot, const std::atomic<T*>& src) noexcept {
      return rec_->protect(slot, src);
    }

    template <typename T>
    void retire(T* p) {
      rec_->retire(p);
    }

   private:
    ffq::runtime::hazard_domain::thread_record* rec_;
  };
};

struct epoch_reclaimer {
  static constexpr const char* kName = "epoch";

  class guard {
   public:
    guard() : rec_(&ffq::runtime::tls_global_epoch()) { rec_->pin(); }
    ~guard() { rec_->unpin(); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// Under an epoch pin a plain acquire load is already safe: nothing
    /// reachable when we pinned can be freed until we unpin.
    template <typename T>
    T* protect(std::size_t /*slot*/, const std::atomic<T*>& src) noexcept {
      return src.load(std::memory_order_acquire);
    }

    template <typename T>
    void retire(T* p) {
      rec_->retire(p);
    }

   private:
    ffq::runtime::epoch_domain::thread_record* rec_;
  };
};

}  // namespace ffq::baselines
