// cc_queue.hpp — CC-Queue: a FIFO queue synchronized with the CC-Synch
// combining construct (Fatourou & Kallimanis, PPoPP'12).
//
// Paper §II: "an extension of Michael-Scott's queue that uses combining
// synchronization instead of locks in the two-lock variant ... allows
// better scalability than compare-and-swap operations and traditional
// locks." In Fig. 8 ccqueue is the fastest queue in *sequential* runs
// ("because it reuses the same node for every enqueue/dequeue pair and
// does not experience cache misses without contending thread") but its
// performance "drops quickly with more threads".
//
// Structure:
//  * `combining<Request>` — the generic CC-Synch construct: threads swap a
//    publication node into a global list; the thread owning the list head
//    becomes the *combiner* and executes up to `kMaxCombine` posted
//    requests on the sequential structure before handing the role over.
//  * `cc_queue<T>` — a plain sequential linked-list queue whose every
//    operation goes through the construct.
//
// Threads interact through a per-thread `handle` (publication-node
// ownership migrates between threads, as in the original algorithm);
// handles must not outlive the queue.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

/// Generic CC-Synch combining construct. `Request` is the POD describing
/// one operation; the combiner calls `apply(req)` for each.
template <typename Request>
class combining {
 public:
  struct alignas(ffq::runtime::kCacheLineSize) node {
    Request req{};
    std::atomic<node*> next{nullptr};
    std::atomic<bool> wait{false};
    bool completed = false;
  };

  /// How many queued requests one combiner executes before handing over
  /// (bounds combiner latency; value from the original paper's setup).
  static constexpr int kMaxCombine = 64;

  combining() {
    node* dummy = new_node();
    tail_->store(dummy, std::memory_order_relaxed);
  }

  ~combining() {
    std::lock_guard<std::mutex> lk(pool_mutex_);
    for (node* n : pool_) delete n;
  }

  combining(const combining&) = delete;
  combining& operator=(const combining&) = delete;

  /// Per-thread access token: owns the spare publication node.
  class handle {
   public:
    explicit handle(combining& c) : owner_(&c), spare_(c.new_node()) {}
    handle(handle&& o) noexcept
        : owner_(std::exchange(o.owner_, nullptr)),
          spare_(std::exchange(o.spare_, nullptr)) {}
    handle(const handle&) = delete;
    handle& operator=(const handle&) = delete;
    ~handle() = default;  // nodes are pool-owned; freed by ~combining

   private:
    friend class combining;
    combining* owner_;
    node* spare_;
  };

  handle make_handle() { return handle(*this); }

  /// Execute `req` under combining; `apply` is invoked (possibly by
  /// another thread — the combiner) exactly once. Returns the request
  /// (with any output fields the combiner filled in).
  template <typename Apply>
  Request execute(handle& h, Request req, Apply&& apply) {
    node* next = h.spare_;
    next->next.store(nullptr, std::memory_order_relaxed);
    next->wait.store(true, std::memory_order_relaxed);
    next->completed = false;

    // Swing the global tail to our fresh node; the node we get back is
    // our publication slot (and our new spare once the op completes).
    node* cur = tail_->exchange(next, std::memory_order_acq_rel);
    cur->req = std::move(req);
    cur->next.store(next, std::memory_order_release);
    h.spare_ = cur;

    // Wait until a combiner either completed our request or handed us
    // the combiner role.
    ffq::runtime::yielding_backoff bo;
    while (cur->wait.load(std::memory_order_acquire)) bo.pause();
    if (cur->completed) {
      return std::move(cur->req);
    }

    // We are the combiner: serve the list starting at our own node.
    node* tmp = cur;
    int served = 0;
    for (;;) {
      node* nxt = tmp->next.load(std::memory_order_acquire);
      if (nxt == nullptr || served >= kMaxCombine) break;
      apply(tmp->req);
      tmp->completed = true;
      tmp->wait.store(false, std::memory_order_release);
      tmp = nxt;
      ++served;
    }
    // Hand the combiner role to the owner of `tmp` (not completed).
    tmp->wait.store(false, std::memory_order_release);
    return std::move(cur->req);
  }

 private:
  node* new_node() {
    node* n = new node;
    std::lock_guard<std::mutex> lk(pool_mutex_);
    pool_.push_back(n);
    return n;
  }

  ffq::runtime::padded<std::atomic<node*>> tail_;
  std::mutex pool_mutex_;  // cold path: node creation / destruction only
  std::vector<node*> pool_;
};

/// The CC-Queue itself: sequential two-pointer linked queue + combining.
template <typename T>
class cc_queue {
  static_assert(std::is_nothrow_move_constructible_v<T> &&
                std::is_nothrow_default_constructible_v<T>);

  struct qnode {
    qnode* next = nullptr;
    T value{};
  };

  struct request {
    enum class op : std::uint8_t { enqueue, dequeue } kind = op::enqueue;
    T value{};
    bool ok = false;
  };

 public:
  using value_type = T;
  static constexpr const char* kName = "cc-queue";

  cc_queue() {
    head_ = tail_ = new qnode;  // dummy
  }

  ~cc_queue() {
    while (head_ != nullptr) {
      qnode* n = head_->next;
      delete head_;
      head_ = n;
    }
    while (free_ != nullptr) {
      qnode* n = free_->next;
      delete free_;
      free_ = n;
    }
  }

  cc_queue(const cc_queue&) = delete;
  cc_queue& operator=(const cc_queue&) = delete;

  class handle {
   public:
    explicit handle(cc_queue& q) : inner_(q.sync_.make_handle()) {}

   private:
    friend class cc_queue;
    typename combining<request>::handle inner_;
  };

  handle make_handle() { return handle(*this); }

  void enqueue(handle& h, T value) {
    request r;
    r.kind = request::op::enqueue;
    r.value = std::move(value);
    sync_.execute(h.inner_, std::move(r),
                  [this](request& req) { apply(req); });
  }

  bool try_dequeue(handle& h, T& out) {
    request r;
    r.kind = request::op::dequeue;
    r = sync_.execute(h.inner_, std::move(r),
                      [this](request& req) { apply(req); });
    if (!r.ok) return false;
    out = std::move(r.value);
    return true;
  }

 private:
  /// Sequential queue ops; only ever called by the current combiner, so
  /// no synchronization needed. Nodes are recycled through a free list —
  /// the property that makes ccqueue so fast sequentially.
  void apply(request& req) {
    if (req.kind == request::op::enqueue) {
      qnode* n = free_;
      if (n != nullptr) {
        free_ = n->next;
      } else {
        n = new qnode;
      }
      n->next = nullptr;
      n->value = std::move(req.value);
      tail_->next = n;
      tail_ = n;
      req.ok = true;
    } else {
      qnode* first = head_->next;
      if (first == nullptr) {
        req.ok = false;
        return;
      }
      req.value = std::move(first->value);
      req.ok = true;
      qnode* old = head_;
      head_ = first;
      old->next = free_;  // recycle the dummy
      free_ = old;
    }
  }

  combining<request> sync_;
  alignas(ffq::runtime::kCacheLineSize) qnode* head_ = nullptr;
  qnode* tail_ = nullptr;
  qnode* free_ = nullptr;
};

}  // namespace ffq::baselines
