// htm_queue.hpp — the paper's HTM baseline: a bounded circular buffer
// whose enqueue/dequeue "simply execute ... inside hardware transactions"
// (§V-G).
//
// The queue state inside the transactional region is deliberately plain
// (non-atomic head/tail/array): the transaction provides atomicity and
// isolation. On hardware without TSX the ffq::runtime::htm abstraction
// emulates the region with a global lock + probabilistic conflict aborts
// (DESIGN.md §5.3), which reproduces the baseline's signature behaviour:
// fine single-threaded, collapsing under concurrency.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/runtime/htm.hpp"

namespace ffq::baselines {

template <typename T>
class htm_queue {
  static_assert(std::is_nothrow_move_constructible_v<T> &&
                std::is_nothrow_default_constructible_v<T>);

 public:
  using value_type = T;
  static constexpr const char* kName = "htm-queue";

  explicit htm_queue(std::size_t capacity)
      : mask_(capacity - 1), ring_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity));
  }

  /// Per-thread transaction context (holds the RNG/stats; required by
  /// the htm abstraction).
  class handle {
   public:
    explicit handle(htm_queue&, std::uint64_t seed = 1) : ctx_(seed) {}
    const ffq::runtime::htm_stats& stats() const noexcept { return ctx_.stats(); }

   private:
    friend class htm_queue;
    ffq::runtime::htm_context ctx_;
  };

  handle make_handle(std::uint64_t seed = 1) { return handle(*this, seed); }

  /// False when full.
  bool try_enqueue(handle& h, T value) {
    bool ok = false;
    h.ctx_.run(lock_, [&] {
      if (tail_ - head_ > mask_) {
        ok = false;
        return;
      }
      ring_[tail_ & mask_] = std::move(value);
      ++tail_;
      ok = true;
    });
    return ok;
  }

  /// False when empty.
  bool try_dequeue(handle& h, T& out) {
    bool ok = false;
    h.ctx_.run(lock_, [&] {
      if (head_ == tail_) {
        ok = false;
        return;
      }
      out = std::move(ring_[head_ & mask_]);
      ++head_;
      ok = true;
    });
    return ok;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  std::uint64_t mask_;
  std::vector<T> ring_;
  ffq::runtime::htm_lock lock_;
  // Plain state: the transaction (or emulation lock) serializes access.
  alignas(ffq::runtime::kCacheLineSize) std::uint64_t tail_ = 0;
  alignas(ffq::runtime::kCacheLineSize) std::uint64_t head_ = 0;
};

}  // namespace ffq::baselines
