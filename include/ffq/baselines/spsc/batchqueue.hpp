// batchqueue.hpp — BatchQueue (Preud'homme, Sopena, Thomas, Folliot,
// ICPADS'12).
//
// Paper §II: "BatchQueue ... simplifies the design of MCRingBuffer by
// using fewer control variables. BatchQueue avoids false sharing by
// isolating producer and consumer in different parts of the queue."
//
// Reproduced mechanics: the ring is split into two halves; at any moment
// the producer owns one half and the consumer (at most) the other, so the
// data lines themselves are never shared while being written. The only
// shared control state is one publication word per half, touched once per
// half-buffer — not per item. `flush_producer()` publishes a partially
// filled half (required to terminate a stream).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

template <typename T>
class batchqueue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  using value_type = T;
  static constexpr const char* kName = "batchqueue";

  explicit batchqueue(std::size_t capacity)
      : half_(capacity / 2), slots_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity) && capacity >= 4);
  }

  ~batchqueue() {
    // Producer-owned partial half.
    for (std::size_t i = 0; i < fill_; ++i) {
      std::destroy_at(slots_[phalf_ * half_ + i].ptr());
    }
    // Published halves not yet (fully) consumed.
    for (int h = 0; h < 2; ++h) {
      const std::size_t n = avail_[h].value.load(std::memory_order_relaxed);
      const std::size_t from =
          (static_cast<std::size_t>(h) == chalf_) ? read_ : 0;
      for (std::size_t i = from; i < n; ++i) {
        std::destroy_at(slots_[static_cast<std::size_t>(h) * half_ + i].ptr());
      }
    }
  }

  /// Producer only. False when the other half has not been consumed yet
  /// and the current half is full.
  bool try_enqueue(T value) noexcept {
    if (fill_ == half_) {
      if (!switch_halves()) return false;
    }
    std::construct_at(slots_[phalf_ * half_ + fill_].ptr(), std::move(value));
    ++fill_;
    if (fill_ == half_) (void)switch_halves();  // eager publish when possible
    return true;
  }

  /// Producer only: publish a partially filled half so the consumer can
  /// see the tail of the stream. Returns false when the consumer still
  /// owns the other half — retry until true (or until nothing is pending).
  bool flush_producer() noexcept {
    if (fill_ == 0) return true;
    return switch_halves();
  }

  /// Consumer only.
  bool try_dequeue(T& out) noexcept {
    std::size_t n = avail_[chalf_].value.load(std::memory_order_acquire);
    if (n == 0) return false;
    T* p = slots_[chalf_ * half_ + read_].ptr();
    out = std::move(*p);
    std::destroy_at(p);
    ++read_;
    if (read_ == n) {
      // Half fully consumed: hand it back and move to the other half.
      read_ = 0;
      avail_[chalf_].value.store(0, std::memory_order_release);
      chalf_ ^= 1;
    }
    return true;
  }

  std::size_t capacity() const noexcept { return half_ * 2; }

 private:
  /// Publish the current half (fill_ items) and claim the other one.
  /// Fails (returns false) while the consumer still owns the other half.
  bool switch_halves() noexcept {
    const std::size_t other = phalf_ ^ 1;
    if (avail_[other].value.load(std::memory_order_acquire) != 0) {
      return false;  // consumer has not released it yet
    }
    avail_[phalf_].value.store(fill_, std::memory_order_release);
    phalf_ = other;
    fill_ = 0;
    return true;
  }

  struct slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  std::size_t half_;
  ffq::runtime::aligned_array<slot> slots_;

  // One publication word per half, each on its own line.
  ffq::runtime::padded<std::atomic<std::size_t>> avail_[2]{};

  // Producer-private line.
  alignas(ffq::runtime::kCacheLineSize) std::size_t phalf_ = 0;
  std::size_t fill_ = 0;

  // Consumer-private line.
  alignas(ffq::runtime::kCacheLineSize) std::size_t chalf_ = 0;
  std::size_t read_ = 0;
};

}  // namespace ffq::baselines
