// mcringbuffer.hpp — MCRingBuffer (Lee, Bu, Chandranmenon, IPDPS'10).
//
// Paper §II: "an extension of Lamport's basic ring buffer with the goal
// of improving cache locality of control variables ... achieved by
// batching updates to control variables. MCRingBuffer is data-generic and
// has no special data values that are used for control purposes."
//
// Mechanics reproduced here:
//  * each side keeps a *local* copy of the other side's counter and only
//    re-reads the shared atomic when the local copy proves insufficient;
//  * the producer publishes `tail` (and the consumer `head`) only every
//    `batch` operations, cutting coherence traffic on the control lines
//    by the batch factor.
// `flush()` force-publishes pending updates (needed at stream end, since
// batched items are otherwise invisible to the consumer).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

template <typename T>
class mcring_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  using value_type = T;
  static constexpr const char* kName = "mcringbuffer";

  explicit mcring_queue(std::size_t capacity, std::size_t batch = 32)
      : mask_(capacity - 1), batch_(batch), slots_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity));
    assert(batch >= 1 && batch <= capacity);
  }

  ~mcring_queue() {
    // The true live range is [consumer head, producer tail) irrespective
    // of what has been published (destruction implies both sides ceased).
    for (auto i = local_.head; i != local_tail_writer_; ++i) {
      std::destroy_at(slots_[i & mask_].ptr());
    }
  }

  /// Producer only.
  bool try_enqueue(T value) noexcept {
    const auto t = local_tail_writer_;
    // Full check against the cached head; refresh the cache only on
    // apparent fullness (the "read sparingly" optimization).
    if (t - cached_head_ > mask_) {
      cached_head_ = shared_head_->load(std::memory_order_acquire);
      if (t - cached_head_ > mask_) return false;
    }
    std::construct_at(slots_[t & mask_].ptr(), std::move(value));
    local_tail_writer_ = t + 1;
    if (++pending_tail_ >= batch_) flush_producer();
    return true;
  }

  /// Producer only: make all enqueued items visible immediately.
  void flush_producer() noexcept {
    shared_tail_->store(local_tail_writer_, std::memory_order_release);
    pending_tail_ = 0;
  }

  /// Consumer only.
  bool try_dequeue(T& out) noexcept {
    const auto h = local_.head;
    if (h == cached_tail_) {
      cached_tail_ = shared_tail_->load(std::memory_order_acquire);
      if (h == cached_tail_) return false;
    }
    T* p = slots_[h & mask_].ptr();
    out = std::move(*p);
    std::destroy_at(p);
    local_.head = h + 1;
    if (++local_.pending >= batch_) flush_consumer();
    return true;
  }

  /// Consumer only: make all freed slots visible immediately.
  void flush_consumer() noexcept {
    shared_head_->store(local_.head, std::memory_order_release);
    local_.pending = 0;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  std::size_t batch() const noexcept { return batch_; }

 private:
  struct slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  struct consumer_local {
    std::uint64_t head = 0;
    std::size_t pending = 0;
  };

  std::uint64_t mask_;
  std::size_t batch_;
  ffq::runtime::aligned_array<slot> slots_;

  // Shared control variables (one line each).
  ffq::runtime::padded<std::atomic<std::uint64_t>> shared_tail_{0};
  ffq::runtime::padded<std::atomic<std::uint64_t>> shared_head_{0};

  // Producer-private line.
  alignas(ffq::runtime::kCacheLineSize) std::uint64_t local_tail_writer_ = 0;
  std::uint64_t cached_head_ = 0;
  std::size_t pending_tail_ = 0;

  // Consumer-private line.
  alignas(ffq::runtime::kCacheLineSize) consumer_local local_;
  std::uint64_t cached_tail_ = 0;
};

}  // namespace ffq::baselines
