// bqueue.hpp — B-Queue (Wang, Zhang, Tang, Hua, IJPP'13).
//
// Paper §II: "B-Queue improves the design of FastForward and MCRingBuffer
// by adding a backtracking algorithm for deadlock detection due to
// producer and consumer batching. It avoids using parameters that require
// system-specific tuning."
//
// Reproduced mechanics:
//  * like FastForward, full/empty is detected in-band (zero sentinel), so
//    no shared control variables at all;
//  * both sides reserve *batches* of slots: the producer probes the slot
//    `batch` ahead — if it is free, the whole window is free (slots free
//    up in order) and the next `batch` enqueues don't probe at all;
//  * the consumer does the same for occupied slots, with *backtracking*:
//    when the full batch probe fails, it halves the probe distance until
//    a published slot is found (this is the deadlock-avoidance device —
//    without it, a consumer waiting for a full batch and a producer
//    waiting for batch space can starve each other on a quiet stream).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "ffq/baselines/spsc/fastforward.hpp"  // ff_sentinel
#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

template <typename T, typename Sentinel = ff_sentinel<T>>
class bqueue {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  using value_type = T;
  static constexpr const char* kName = "b-queue";

  explicit bqueue(std::size_t capacity, std::size_t batch = 64)
      : mask_(capacity - 1), batch_(batch), slots_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity));
    assert(batch >= 1 && batch <= capacity / 2);
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].value.store(Sentinel::empty(), std::memory_order_relaxed);
    }
  }

  /// Producer only.
  bool try_enqueue(T value) noexcept {
    assert(!Sentinel::is_empty(value));
    if (tail_ == batch_tail_) {
      // Reserve the next window by probing its far end.
      const std::uint64_t probe = tail_ + batch_;
      if (!Sentinel::is_empty(
              slots_[probe & mask_].value.load(std::memory_order_acquire))) {
        return false;  // window not free yet
      }
      batch_tail_ = probe;
    }
    slots_[tail_ & mask_].value.store(value, std::memory_order_release);
    ++tail_;
    return true;
  }

  /// Consumer only, with backtracking batch reservation.
  bool try_dequeue(T& out) noexcept {
    if (head_ == batch_head_) {
      // Try to reserve a full batch of published slots; halve the probe
      // distance on failure (backtracking) down to a single slot.
      std::uint64_t window = batch_;
      for (;;) {
        const std::uint64_t probe = head_ + window - 1;
        if (!Sentinel::is_empty(
                slots_[probe & mask_].value.load(std::memory_order_acquire))) {
          batch_head_ = head_ + window;
          break;
        }
        if (window == 1) return false;  // truly empty at the head
        window /= 2;
      }
    }
    auto& s = slots_[head_ & mask_];
    const T v = s.value.load(std::memory_order_acquire);
    if (Sentinel::is_empty(v)) return false;  // defensive; reservation guarantees non-empty
    out = v;
    s.value.store(Sentinel::empty(), std::memory_order_release);
    ++head_;
    return true;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct slot {
    std::atomic<T> value;
  };

  std::size_t mask_;
  std::size_t batch_;
  ffq::runtime::aligned_array<slot> slots_;

  alignas(ffq::runtime::kCacheLineSize) std::uint64_t tail_ = 0;
  std::uint64_t batch_tail_ = 0;

  alignas(ffq::runtime::kCacheLineSize) std::uint64_t head_ = 0;
  std::uint64_t batch_head_ = 0;
};

}  // namespace ffq::baselines
