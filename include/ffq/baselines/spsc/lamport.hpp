// lamport.hpp — Lamport's classic single-producer/single-consumer ring
// buffer [Lamport'83], the ancestor of every queue in this repository
// (paper §II: "MCRingBuffer is an extension of Lamport's basic ring
// buffer").
//
// Head and tail are shared atomics read by both sides on every operation;
// the resulting cache-line ping-pong on the control variables is precisely
// the cost FastForward/MCRingBuffer/FFQ were designed to remove, which
// makes this the natural floor for the SPSC ablation bench.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

template <typename T>
class lamport_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  using value_type = T;
  static constexpr const char* kName = "lamport";

  explicit lamport_queue(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity));
  }

  ~lamport_queue() {
    const auto h = head_->load(std::memory_order_relaxed);
    const auto t = tail_->load(std::memory_order_relaxed);
    for (auto i = h; i != t; ++i) std::destroy_at(slots_[i & mask_].ptr());
  }

  /// Producer only. False when the ring is full.
  bool try_enqueue(T value) noexcept {
    const auto t = tail_->load(std::memory_order_relaxed);
    const auto h = head_->load(std::memory_order_acquire);
    if (t - h > mask_) return false;  // full at exactly `capacity` in-flight items
    std::construct_at(slots_[t & mask_].ptr(), std::move(value));
    tail_->store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. False when the ring is empty.
  bool try_dequeue(T& out) noexcept {
    const auto h = head_->load(std::memory_order_relaxed);
    const auto t = tail_->load(std::memory_order_acquire);
    if (h == t) return false;
    T* p = slots_[h & mask_].ptr();
    out = std::move(*p);
    std::destroy_at(p);
    head_->store(h + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  std::uint64_t mask_;
  ffq::runtime::aligned_array<slot> slots_;
  ffq::runtime::padded<std::atomic<std::uint64_t>> tail_{0};
  ffq::runtime::padded<std::atomic<std::uint64_t>> head_{0};
};

}  // namespace ffq::baselines
