// fastforward.hpp — FastForward SPSC queue (Giacomoni et al., PPoPP'08).
//
// Paper §II: "It uses temporal slipping to avoid cache thrashing ... In
// practical terms, however, slipping requires system-specific tuning".
// The core idea reproduced here: head and tail are *private* to consumer
// and producer; emptiness/fullness is signalled in-band through the cell
// itself (a NULL-like sentinel), so the two sides never touch each other's
// control variables. The price is that the sentinel must not be a valid
// payload — the queue stores `T*`-like nullable values, expressed as an
// `empty_value` customization.
//
// Temporal slipping (the tuned producer/consumer distance) is optional
// and off by default, matching how the FFQ paper characterizes it.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

/// Customization point: the in-band "empty" sentinel. Specialize for
/// payload types where 0 is a legal value.
template <typename T>
struct ff_sentinel {
  static constexpr T empty() noexcept { return T{}; }
  static constexpr bool is_empty(const T& v) noexcept { return v == T{}; }
};

/// FastForward queue for trivially-copyable payloads with a reserved
/// empty value (pointers, non-zero handles, 1-based sequence numbers).
template <typename T, typename Sentinel = ff_sentinel<T>>
class fastforward_queue {
  static_assert(std::is_trivially_copyable_v<T>,
                "FastForward publishes items by plain atomic store");

 public:
  using value_type = T;
  static constexpr const char* kName = "fastforward";

  explicit fastforward_queue(std::size_t capacity)
      : mask_(capacity - 1), slots_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity));
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].value.store(Sentinel::empty(), std::memory_order_relaxed);
    }
  }

  /// Producer only. False when the target cell is still occupied (full).
  bool try_enqueue(T value) noexcept {
    assert(!Sentinel::is_empty(value) && "payload equals the empty sentinel");
    auto& s = slots_[*tail_ & mask_];
    if (!Sentinel::is_empty(s.value.load(std::memory_order_acquire))) {
      return false;
    }
    s.value.store(value, std::memory_order_release);
    ++*tail_;
    return true;
  }

  /// Consumer only. False when the next cell is empty.
  bool try_dequeue(T& out) noexcept {
    auto& s = slots_[*head_ & mask_];
    const T v = s.value.load(std::memory_order_acquire);
    if (Sentinel::is_empty(v)) return false;
    out = v;
    s.value.store(Sentinel::empty(), std::memory_order_release);
    ++*head_;
    return true;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct slot {
    std::atomic<T> value;
  };

  std::size_t mask_;
  ffq::runtime::aligned_array<slot> slots_;
  // Both counters are strictly private to one side — the whole point.
  ffq::runtime::padded<std::uint64_t> tail_{0};
  ffq::runtime::padded<std::uint64_t> head_{0};
};

}  // namespace ffq::baselines
