// lcrq.hpp — LCRQ: Linked Concurrent Ring Queues (Morrison & Afek,
// PPoPP'13).
//
// Paper §II: "an unbounded MPMC queue that improves performance and
// scalability over Michael-Scott's queue and CC-Queue by using
// fetch-and-add atomic operations"; §V-G: "lcrq is slightly slower than
// wfqueue, which can be explained by the higher number of memory fences.
// Note that lcrq and FFQ^m use a double-word compare-and-set."
//
// Structure: a Michael-Scott-style linked list of fixed-size *CRQ* rings.
// Within a ring, enqueuers/dequeuers obtain indexes by fetch-and-add and
// transition cells with a 128-bit CAS over the packed
// (safe-bit | index, value) pair. A ring that overflows or starves is
// *closed* (a bit in its tail counter) and a fresh ring is linked behind
// it. Retired rings are reclaimed through hazard pointers.
//
// Payload restriction (as in the original): values are 64-bit words with
// one reserved "empty" pattern (~0). The harness traffics in uint64
// sequence numbers, which satisfies this.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/runtime/dwcas.hpp"
#include "ffq/runtime/hazard.hpp"

namespace ffq::baselines {

namespace lcrq_detail {

inline constexpr std::uint64_t kEmpty = ~0ULL;          ///< reserved value
inline constexpr std::uint64_t kSafeBit = 1ULL << 63;   ///< in the idx word
inline constexpr std::uint64_t kClosedBit = 1ULL << 63; ///< in the tail ctr
inline constexpr std::uint64_t kIdxMask = kSafeBit - 1;

/// One CRQ: a bounded ring that can be closed.
class crq {
 public:
  explicit crq(std::size_t ring_size) : mask_(ring_size - 1), cells_(ring_size) {
    assert(ffq::core::capacity_info::valid(ring_size));
    for (std::size_t i = 0; i < ring_size; ++i) {
      // (safe=1, idx=i, val=EMPTY)
      cells_[i].pair.lo.store(kSafeBit | i, std::memory_order_relaxed);
      cells_[i].pair.hi.store(kEmpty, std::memory_order_relaxed);
    }
  }

  enum class enq_result { ok, closed };

  /// Fetch-and-add based enqueue; closes the ring on overflow/starvation.
  enq_result enqueue(std::uint64_t value) noexcept {
    assert(value != kEmpty);
    int tries = 0;
    for (;;) {
      const std::uint64_t t_raw = tail_->fetch_add(1, std::memory_order_acq_rel);
      if (t_raw & kClosedBit) return enq_result::closed;
      const std::uint64_t t = t_raw;
      cell& c = cells_[t & mask_];
      const std::uint64_t idx_word = c.pair.lo.load(std::memory_order_acquire);
      const std::uint64_t val = c.pair.hi.load(std::memory_order_acquire);
      const std::uint64_t idx = idx_word & kIdxMask;
      const bool safe = (idx_word & kSafeBit) != 0;
      if (val == kEmpty && idx <= t &&
          (safe || head_->load(std::memory_order_acquire) <= t)) {
        // Try to deposit: (safe?, idx, EMPTY) -> (1, t, value).
        ffq::runtime::atomic_u64_pair::value_type expected{idx_word, kEmpty};
        if (c.pair.compare_exchange(expected, {kSafeBit | t, value})) {
          return enq_result::ok;
        }
      }
      // Deposit failed. Close when the ring is full or we are starving
      // (unsafe cells can make every index unusable).
      const std::uint64_t h = head_->load(std::memory_order_acquire);
      if (t >= h + mask_ + 1 || ++tries > 1024) {
        tail_->fetch_or(kClosedBit, std::memory_order_acq_rel);
        return enq_result::closed;
      }
    }
  }

  /// False when the ring is (linearizably) empty.
  bool dequeue(std::uint64_t& out) noexcept {
    for (;;) {
      const std::uint64_t h = head_->fetch_add(1, std::memory_order_acq_rel);
      cell& c = cells_[h & mask_];
      ffq::runtime::exp_backoff bo;
      for (;;) {
        const std::uint64_t idx_word = c.pair.lo.load(std::memory_order_acquire);
        const std::uint64_t val = c.pair.hi.load(std::memory_order_acquire);
        const std::uint64_t idx = idx_word & kIdxMask;
        const std::uint64_t safe_bit = idx_word & kSafeBit;
        if (idx > h) break;  // cell already used for a later round
        if (val != kEmpty) {
          if (idx == h) {
            // Claim the value and advance the cell to the next round.
            ffq::runtime::atomic_u64_pair::value_type expected{idx_word, val};
            if (c.pair.compare_exchange(
                    expected, {safe_bit | (h + mask_ + 1), kEmpty})) {
              out = val;
              return true;
            }
          } else {
            // Value from an older round: mark the cell unsafe so a racing
            // enqueuer for this round cannot deposit behind our back.
            ffq::runtime::atomic_u64_pair::value_type expected{idx_word, val};
            if (c.pair.compare_exchange(expected, {idx, val})) {
              break;  // safe bit cleared
            }
          }
        } else {
          // Empty cell for our round: advance it so a slow enqueuer with
          // index h cannot deposit an item no dequeuer would visit.
          ffq::runtime::atomic_u64_pair::value_type expected{idx_word, kEmpty};
          if (c.pair.compare_exchange(expected,
                                      {safe_bit | (h + mask_ + 1), kEmpty})) {
            break;
          }
        }
        bo.pause();
      }
      // Emptiness check: every ticket below tail is accounted for.
      const std::uint64_t t_raw = tail_->load(std::memory_order_acquire);
      const std::uint64_t t = t_raw & ~kClosedBit;
      if (t <= h + 1) {
        fix_state();
        return false;
      }
    }
  }

  bool closed() const noexcept {
    return (tail_->load(std::memory_order_acquire) & kClosedBit) != 0;
  }

  std::atomic<crq*>& next() noexcept { return next_; }

 private:
  /// head may overtake tail when dequeuers drain empty tickets; pull tail
  /// forward so later enqueues don't deposit "behind" head.
  void fix_state() noexcept {
    for (;;) {
      const std::uint64_t t_raw = tail_->load(std::memory_order_acquire);
      const std::uint64_t h = head_->load(std::memory_order_acquire);
      if (tail_->load(std::memory_order_acquire) != t_raw) continue;
      const std::uint64_t t = t_raw & ~kClosedBit;
      if (h <= t) return;  // nothing to fix
      std::uint64_t expected = t_raw;
      if (tail_->compare_exchange_strong(expected,
                                         (t_raw & kClosedBit) | h,
                                         std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  struct alignas(ffq::runtime::kCacheLineSize) cell {
    // lo = safe|idx, hi = value; one cmpxchg16b covers both.
    ffq::runtime::atomic_u64_pair pair;
  };

  std::uint64_t mask_;
  ffq::runtime::aligned_array<cell> cells_;
  ffq::runtime::padded<std::atomic<std::uint64_t>> tail_{0};
  ffq::runtime::padded<std::atomic<std::uint64_t>> head_{0};
  std::atomic<crq*> next_{nullptr};
};

}  // namespace lcrq_detail

class lcrq_queue {
 public:
  using value_type = std::uint64_t;
  static constexpr const char* kName = "lcrq";
  static constexpr std::uint64_t kReservedEmpty = lcrq_detail::kEmpty;

  explicit lcrq_queue(std::size_t ring_size = 1024) : ring_size_(ring_size) {
    auto* q = new lcrq_detail::crq(ring_size_);
    head_->store(q, std::memory_order_relaxed);
    tail_->store(q, std::memory_order_relaxed);
  }

  lcrq_queue(const lcrq_queue&) = delete;
  lcrq_queue& operator=(const lcrq_queue&) = delete;

  ~lcrq_queue() {
    auto* q = head_->load(std::memory_order_relaxed);
    while (q != nullptr) {
      auto* next = q->next().load(std::memory_order_relaxed);
      delete q;
      q = next;
    }
  }

  void enqueue(std::uint64_t value) {
    auto& hz = ffq::runtime::tls_global_hazard();
    for (;;) {
      lcrq_detail::crq* q = hz->protect(0, *tail_);
      lcrq_detail::crq* next = q->next().load(std::memory_order_acquire);
      if (next != nullptr) {
        // Tail lagging: help swing it.
        tail_->compare_exchange_weak(q, next, std::memory_order_release,
                                     std::memory_order_relaxed);
        continue;
      }
      if (q->enqueue(value) == lcrq_detail::crq::enq_result::ok) {
        hz->clear(0);
        return;
      }
      // Ring closed: link a fresh ring seeded with our value.
      auto* fresh = new lcrq_detail::crq(ring_size_);
      (void)fresh->enqueue(value);  // cannot fail on a private ring
      lcrq_detail::crq* expected = nullptr;
      if (q->next().compare_exchange_strong(expected, fresh,
                                            std::memory_order_release,
                                            std::memory_order_acquire)) {
        tail_->compare_exchange_strong(q, fresh, std::memory_order_release,
                                       std::memory_order_relaxed);
        hz->clear(0);
        return;
      }
      delete fresh;  // somebody else appended first; retry through it
    }
  }

  bool try_dequeue(std::uint64_t& out) {
    auto& hz = ffq::runtime::tls_global_hazard();
    for (;;) {
      lcrq_detail::crq* q = hz->protect(0, *head_);
      if (q->dequeue(out)) {
        hz->clear(0);
        return true;
      }
      // This ring is empty. If it has no successor the whole queue is
      // empty; otherwise retire it and move on.
      lcrq_detail::crq* next = q->next().load(std::memory_order_acquire);
      if (next == nullptr) {
        hz->clear(0);
        return false;
      }
      // Linearization subtlety (Morrison & Afek §3.2): an item could have
      // landed in `q` between our empty verdict and now; re-check once
      // after observing the successor.
      if (q->dequeue(out)) {
        hz->clear(0);
        return true;
      }
      if (head_->compare_exchange_strong(q, next, std::memory_order_release,
                                         std::memory_order_relaxed)) {
        hz->clear(0);
        hz->retire(q);
      }
    }
  }

 private:
  std::size_t ring_size_;
  ffq::runtime::padded<std::atomic<lcrq_detail::crq*>> head_;
  ffq::runtime::padded<std::atomic<lcrq_detail::crq*>> tail_;
};

}  // namespace ffq::baselines
