// baselines.hpp — umbrella header for every comparison queue.
//
// MPMC (Fig. 8 comparative study):
//   ms_queue<T>        — Michael & Scott, CAS-based, hazard pointers
//   cc_queue<T>        — combining (CC-Synch) queue, per-thread handles
//   lcrq_queue         — FAA + DWCAS ring segments (uint64 payloads)
//   wf_queue           — Yang & Mellor-Crummey FAA queue fast path,
//                        per-thread handles (uint64 payloads)
//   htm_queue<T>       — circular buffer inside (emulated) transactions
//   vyukov_mpmc_queue<T> — bounded MPMC (the application benchmark's
//                        "external MPMC queue")
//
// SPSC related-work family (§II, extra ablation bench):
//   lamport_queue<T>, fastforward_queue<T>, mcring_queue<T>, bqueue<T>,
//   batchqueue<T>
#pragma once

#include "ffq/baselines/cc_queue.hpp"           // IWYU pragma: export
#include "ffq/baselines/htm_queue.hpp"          // IWYU pragma: export
#include "ffq/baselines/lcrq.hpp"               // IWYU pragma: export
#include "ffq/baselines/ms_queue.hpp"           // IWYU pragma: export
#include "ffq/baselines/vyukov_mpmc.hpp"        // IWYU pragma: export
#include "ffq/baselines/wf_queue.hpp"           // IWYU pragma: export
#include "ffq/baselines/spsc/batchqueue.hpp"    // IWYU pragma: export
#include "ffq/baselines/spsc/bqueue.hpp"        // IWYU pragma: export
#include "ffq/baselines/spsc/fastforward.hpp"   // IWYU pragma: export
#include "ffq/baselines/spsc/lamport.hpp"       // IWYU pragma: export
#include "ffq/baselines/spsc/mcringbuffer.hpp"  // IWYU pragma: export
