// vyukov_mpmc.hpp — Dmitry Vyukov's bounded MPMC queue.
//
// This is the "external MPMC queue" the paper's application benchmark
// compares against (footnote 8 links to 1024cores.net's bounded MPMC
// queue), and the queue whose poor fan-out scalability motivated FFQ in
// the first place (Fig. 7: "the binary with FFQ achieves a 5 times higher
// throughput").
//
// Each cell carries a sequence number; enqueue/dequeue race for cells with
// a single CAS on the respective counter after validating the sequence —
// no per-cell CAS, but the head/tail counters are contended by all
// participants.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::baselines {

template <typename T>
class vyukov_mpmc_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  using value_type = T;
  static constexpr const char* kName = "vyukov-mpmc";

  explicit vyukov_mpmc_queue(std::size_t capacity)
      : mask_(capacity - 1), cells_(capacity) {
    assert(ffq::core::capacity_info::valid(capacity));
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~vyukov_mpmc_queue() {
    T out;
    while (try_dequeue(out)) {
    }
  }

  /// False when the queue is full.
  bool try_enqueue(T value) noexcept {
    cell* c;
    std::uint64_t pos = tail_->load(std::memory_order_relaxed);
    for (;;) {
      c = &cells_[pos & mask_];
      const std::uint64_t seq = c->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_->compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // cell not yet freed by a consumer: full
      } else {
        pos = tail_->load(std::memory_order_relaxed);
      }
    }
    std::construct_at(c->ptr(), std::move(value));
    c->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty.
  bool try_dequeue(T& out) noexcept {
    cell* c;
    std::uint64_t pos = head_->load(std::memory_order_relaxed);
    for (;;) {
      c = &cells_[pos & mask_];
      const std::uint64_t seq = c->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (head_->compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // not yet published: empty
      } else {
        pos = head_->load(std::memory_order_relaxed);
      }
    }
    out = std::move(*c->ptr());
    std::destroy_at(c->ptr());
    c->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Blocking convenience wrappers (spin with back-off) so the harness
  /// can drive every queue through one interface.
  void enqueue(T value) noexcept {
    ffq::runtime::exp_backoff bo;
    while (!try_enqueue(std::move(value))) bo.pause();
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct alignas(ffq::runtime::kCacheLineSize) cell {
    std::atomic<std::uint64_t> seq;
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
  };

  std::uint64_t mask_;
  ffq::runtime::aligned_array<cell> cells_;
  ffq::runtime::padded<std::atomic<std::uint64_t>> tail_{0};
  ffq::runtime::padded<std::atomic<std::uint64_t>> head_{0};
};

}  // namespace ffq::baselines
