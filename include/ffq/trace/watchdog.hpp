// watchdog.hpp — the liveness watchdog: a sampling thread that turns the
// paper's informal progress argument into an observable verdict.
//
// FFQ's dequeue is lock-free, not wait-free (Proposition 2): a slow or
// parked consumer cannot block peers, but a *stuck* one holding a rank —
// or, in the MPMC variant, a producer asleep between its cell claim and
// its publish — stalls everyone drawing ranks behind it. The watchdog
// samples per-queue head/tail ranks (via probes) and per-thread
// last-progress epochs (via the trace rings) and, when a queue has
// pending work but its head rank has not moved for longer than the
// configured threshold, produces a post-mortem dump:
//
//   * verdict — stuck_consumer, stuck_producer (a -2 reservation parked
//     at the head rank), full_ring_livelock, or lost_rank (the head rank
//     can never be decided: its cell holds a later rank and no covering
//     gap — a protocol-violation detector, not an expected state);
//   * cell-state table around head and tail (rank/gap/occupancy);
//   * the stalled consumer threads by name (threads that have consumed
//     before but whose progress epoch froze across the stall window);
//   * the last few trace events of every thread (empty unless the
//     queues were instantiated with trace::enabled).
//
// The dump goes to the configured sink (default: stderr); `dump_now()`
// produces one on demand. Sampling reads only atomics the queues already
// expose (head/tail/cell fields, relaxed) — the watchdog never perturbs
// the protocol it observes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ffq::trace {

/// Racy diagnostic view of one cell's control fields.
struct cell_view {
  std::int64_t rank = -1;
  std::int64_t gap = -1;
};

/// How the watchdog observes one queue. Built by make_queue_probe() for
/// the FFQ family; anything that can answer these five questions can be
/// watched.
struct queue_probe {
  std::string name;
  std::function<std::int64_t()> head;       ///< next rank consumers draw
  std::function<std::int64_t()> tail;       ///< next rank producers place
  std::function<bool()> closed;
  std::function<std::size_t()> capacity;
  std::function<cell_view(std::int64_t)> cell;  ///< cell a rank maps to
};

/// Probe over any queue exposing the introspection trio head_rank() /
/// tail_rank() / inspect_rank() (spsc, spmc, mpmc). The queue must
/// outlive the watchdog's use of the probe.
template <typename Q>
queue_probe make_queue_probe(const Q& q, std::string name) {
  queue_probe p;
  p.name = std::move(name);
  p.head = [&q] { return q.head_rank(); };
  p.tail = [&q] { return q.tail_rank(); };
  p.closed = [&q] { return q.closed(); };
  p.capacity = [&q] { return q.capacity(); };
  p.cell = [&q](std::int64_t rank) {
    const auto c = q.inspect_rank(rank);
    return cell_view{c.rank, c.gap};
  };
  return p;
}

enum class verdict {
  ok,                 ///< all watched queues progressing (or idle)
  stuck_consumer,     ///< pending work, head frozen, consumer(s) silent
  stuck_producer,     ///< head rank held by a -2 reservation (MPMC)
  full_ring_livelock, ///< ring full and neither end moving
  lost_rank,          ///< head rank undecidable: later rank, no gap cover
};

const char* to_string(verdict v) noexcept;

class watchdog {
 public:
  struct config {
    std::chrono::milliseconds sample_interval{10};
    std::chrono::milliseconds stall_threshold{200};
    /// Trace events per thread quoted in a dump.
    std::size_t dump_last_events = 8;
    /// Receives each post-mortem dump; default writes to stderr.
    std::function<void(verdict, const std::string&)> sink;
    /// After a trigger, stay quiet about the same stall until it clears
    /// (head moves) — one dump per incident, not one per interval.
    bool once_per_incident = true;
    /// Time source for every stall decision. Tests inject a controllable
    /// clock and drive sample_once() by hand, turning the verdict tests
    /// into deterministic state-machine checks (no sleeps, no sampler
    /// thread). Defaults to std::chrono::steady_clock::now.
    std::function<std::chrono::steady_clock::time_point()> clock;
  };

  watchdog();  // default config
  explicit watchdog(config cfg);
  ~watchdog();

  watchdog(const watchdog&) = delete;
  watchdog& operator=(const watchdog&) = delete;

  /// Register a queue to watch. Not thread-safe against a running
  /// watchdog: add probes before start().
  void add_probe(queue_probe probe);

  void start();
  void stop();

  /// One sampling pass, exactly what the sampler thread does per tick:
  /// read the clock, refresh ring progress, and (re)classify every probe,
  /// triggering the sink on a stall. Usable without start() — add_probe()
  /// arms each probe's baseline at registration time — so a test with an
  /// injected clock fully controls when time passes.
  void sample_once();

  /// Produce a dump of the current state on demand (works whether or
  /// not the sampling thread runs). Returns the dump text.
  std::string dump_now();

  /// Most severe verdict observed since start() (sticky until start()).
  verdict last_verdict() const;

  /// Number of post-mortem dumps the sampler has triggered.
  std::uint64_t triggers() const;

 private:
  struct probe_state {
    std::int64_t last_head = -1;
    std::chrono::steady_clock::time_point last_progress_at{};
    bool reported = false;
  };
  /// Per-thread progress-epoch history (tid -> last value + when it last
  /// changed), fed from the trace rings each sample; identifies which
  /// consumer froze.
  struct ring_progress {
    std::uint64_t epoch = 0;
    std::chrono::steady_clock::time_point changed_at{};
  };

  void sampler_loop();
  void sample_locked(std::unique_lock<std::mutex>& lock);
  void update_ring_progress(std::chrono::steady_clock::time_point now);
  verdict classify(const queue_probe& p) const;
  std::string render_dump(verdict v, std::size_t probe_idx) const;

  config cfg_;
  std::vector<queue_probe> probes_;
  std::vector<probe_state> states_;
  std::map<std::uint32_t, ring_progress> ring_progress_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread sampler_;
  verdict last_verdict_ = verdict::ok;
  std::uint64_t triggers_ = 0;
};

}  // namespace ffq::trace
