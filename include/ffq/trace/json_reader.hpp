// json_reader.hpp — a minimal RFC 8259 recursive-descent JSON reader.
//
// The repo has exactly one JSON *writer* (telemetry/json.hpp); this is
// its counterpart for the two places that must read JSON back:
// tools/trace_check (validating an exported "ffq.trace.v1" file) and the
// round-trip test that proves the export is RFC 8259-clean. It is a
// strict reader — no comments, no trailing commas, no NaN/Infinity —
// precisely so that "parses here" means "parses anywhere".
//
// Numbers are kept as both double and (when exactly representable)
// int64, because trace fields mix reals (ts, dur in µs) and integers
// (rank, seq, pid/tid). Not a general-purpose library: documents are
// trusted size-wise (depth-capped), keys are unique-last-wins.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ffq::trace::json {

class value;
using array = std::vector<value>;
using object = std::map<std::string, value>;

class value {
 public:
  enum class kind { null, boolean, number, string, array, object };

  value() = default;
  explicit value(bool b) : kind_(kind::boolean), bool_(b) {}
  explicit value(double d) : kind_(kind::number), num_(d) {}
  explicit value(std::string s) : kind_(kind::string), str_(std::move(s)) {}
  explicit value(array a)
      : kind_(kind::array), arr_(std::make_shared<array>(std::move(a))) {}
  explicit value(object o)
      : kind_(kind::object), obj_(std::make_shared<object>(std::move(o))) {}

  kind type() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == kind::null; }
  bool is_object() const noexcept { return kind_ == kind::object; }
  bool is_array() const noexcept { return kind_ == kind::array; }
  bool is_string() const noexcept { return kind_ == kind::string; }
  bool is_number() const noexcept { return kind_ == kind::number; }

  bool as_bool() const noexcept { return bool_; }
  double as_double() const noexcept { return num_; }
  std::int64_t as_int() const noexcept {
    return static_cast<std::int64_t>(num_);
  }
  const std::string& as_string() const noexcept { return str_; }
  const array& as_array() const { return *arr_; }
  const object& as_object() const { return *obj_; }

  /// Object member access; returns a shared null for missing keys so
  /// lookups chain without exceptions: v["args"]["rank"].as_int().
  const value& operator[](const std::string& key) const {
    static const value null_value;
    if (kind_ != kind::object) return null_value;
    const auto it = obj_->find(key);
    return it == obj_->end() ? null_value : it->second;
  }

  /// Set during parsing when the number was an exact integer literal.
  void set_int_exact(bool e) noexcept { int_exact_ = e; }
  bool int_exact() const noexcept { return int_exact_; }

 private:
  kind kind_ = kind::null;
  bool bool_ = false;
  bool int_exact_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<array> arr_;
  std::shared_ptr<object> obj_;
};

struct parse_result {
  bool ok = false;
  std::string error;  ///< "offset N: message" when !ok
  value root;
};

namespace detail {

class parser {
 public:
  parser(const char* begin, const char* end) : p_(begin), begin_(begin),
                                               end_(end) {}

  parse_result run() {
    parse_result res;
    skip_ws();
    res.root = parse_value(0);
    if (!err_.empty()) {
      res.error = err_;
      return res;
    }
    skip_ws();
    if (p_ != end_) {
      res.error = at("trailing characters after document");
      return res;
    }
    res.ok = true;
    return res;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string at(const std::string& msg) const {
    return "offset " + std::to_string(p_ - begin_) + ": " + msg;
  }
  value fail(const std::string& msg) {
    if (err_.empty()) err_ = at(msg);
    return value{};
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool literal(const char* s) {
    const char* q = p_;
    while (*s) {
      if (q == end_ || *q != *s) return false;
      ++q;
      ++s;
    }
    p_ = q;
    return true;
  }

  value parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
        if (literal("true")) return value(true);
        return fail("invalid literal");
      case 'f':
        if (literal("false")) return value(false);
        return fail("invalid literal");
      case 'n':
        if (literal("null")) return value{};
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  value parse_object(int depth) {
    ++p_;  // '{'
    object obj;
    skip_ws();
    if (consume('}')) return value(std::move(obj));
    while (true) {
      skip_ws();
      if (p_ == end_ || *p_ != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return value{};
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      skip_ws();
      value v = parse_value(depth + 1);
      if (!err_.empty()) return value{};
      obj[std::move(key)] = std::move(v);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return value(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }

  value parse_array(int depth) {
    ++p_;  // '['
    array arr;
    skip_ws();
    if (consume(']')) return value(std::move(arr));
    while (true) {
      skip_ws();
      value v = parse_value(depth + 1);
      if (!err_.empty()) return value{};
      arr.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return value(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  value parse_string_value() {
    std::string s;
    if (!parse_string(s)) return value{};
    return value(std::move(s));
  }

  bool parse_string(std::string& out) {
    ++p_;  // '"'
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            ++p_;
            unsigned cp = 0;
            if (!read_hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
              if (!(consume('\\') && consume('u'))) {
                fail("unpaired surrogate");
                return false;
              }
              unsigned lo = 0;
              if (!read_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                fail("invalid low surrogate");
                return false;
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("unpaired surrogate");
              return false;
            }
            append_utf8(out, cp);
            continue;  // read_hex4 advanced p_ past the digits
          }
          default:
            fail("invalid escape");
            return false;
        }
        ++p_;
        continue;
      }
      out += static_cast<char>(c);
      ++p_;
    }
    fail("unterminated string");
    return false;
  }

  bool read_hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) {
        fail("truncated \\u escape");
        return false;
      }
      const char c = *p_++;
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
        return false;
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  value parse_number() {
    const char* start = p_;
    bool integral = true;
    if (consume('-')) {
    }
    if (p_ == end_ || *p_ < '0' || *p_ > '9') return fail("invalid number");
    if (*p_ == '0') {
      ++p_;
      // RFC 8259: no leading zeros.
      if (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
        return fail("leading zero in number");
      }
    } else {
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ != end_ && *p_ == '.') {
      integral = false;
      ++p_;
      if (p_ == end_ || *p_ < '0' || *p_ > '9') {
        return fail("digit required after '.'");
      }
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      integral = false;
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || *p_ < '0' || *p_ > '9') {
        return fail("digit required in exponent");
      }
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    value v(std::stod(std::string(start, p_)));
    v.set_int_exact(integral);
    return v;
  }

  const char* p_;
  const char* begin_;
  const char* end_;
  std::string err_;
};

}  // namespace detail

/// Parse a complete JSON document. `ok == false` carries an error with
/// the byte offset of the first problem.
inline parse_result parse(const std::string& text) {
  return detail::parser(text.data(), text.data() + text.size()).run();
}

}  // namespace ffq::trace::json
