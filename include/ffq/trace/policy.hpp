// policy.hpp — the compile-time switch for queue event tracing.
//
// Tracing follows the telemetry precedent exactly (DESIGN.md §8, §9):
// every queue takes a `Trace` template parameter that is either
// `trace::enabled` or `trace::disabled`, and the CMake option `FFQ_TRACE`
// only selects which one `default_policy` aliases. So
//   * a default (OFF) build compiles the disabled policy everywhere —
//     the tracer is an empty class with no-op inline members held through
//     [[no_unique_address]], leaving sizeof, alignment, and codegen of
//     every queue byte-identical (mirror-struct static_asserts in
//     tests/test_trace.cpp);
//   * tests, the stress tool, and the watchdog demo instantiate the
//     enabled policy explicitly and therefore work in any build mode.
//
// Telemetry (counters: "how often") and trace (events: "when, in what
// order, which thread") are orthogonal policies on the same hook sites;
// either can be on without the other.
#pragma once

namespace ffq::trace {

/// Policy tag: compile event emission into the queue hot paths.
struct enabled {
  static constexpr bool kEnabled = true;
};

/// Policy tag: all tracing compiles to nothing.
struct disabled {
  static constexpr bool kEnabled = false;
};

#if defined(FFQ_TRACE) && FFQ_TRACE
using default_policy = enabled;
#else
using default_policy = disabled;
#endif

}  // namespace ffq::trace
