// ring.hpp — the per-thread trace ring: wait-free single-writer,
// overwrite-oldest, readable by other threads while the writer runs.
//
// Design constraints, in order:
//   1. The writer is a queue hot path — pushing a record must be a few
//      plain stores, no RMW, no branches that can wait (wait-free).
//   2. The watchdog and the exporter read rings of *live* threads, so a
//      concurrent read must be race-free in the C++ memory model and
//      must detect slots it lost to the writer mid-copy.
//   3. Bounded memory: fixed capacity, newest-N retained, oldest
//      overwritten. Loss is observable (seq numbers are monotonic, so a
//      gap in seq == dropped records), never silent.
//
// Each slot is four atomic 64-bit words (see event.hpp for the layout).
// The writer publishes a slot by storing words 1..3 relaxed and then
// word 0 (seq, nonzero) with release; `head_` (total records ever
// written) is bumped with a release store after the slot. A reader scans
// slots, loads word 0 (acquire), the payload words, then word 0 again:
// the slot is consistent iff both seq reads agree and are nonzero —
// a per-slot seqlock whose "lock word" is the monotonically-unique seq
// itself. An in-place overwrite always changes seq (by ±capacity), so
// the ABA window of a classic seqlock does not exist here.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ffq/trace/event.hpp"

namespace ffq::trace {

/// Everything a reader learns from one ring: identity plus the
/// consistent records it managed to copy, oldest-first.
struct thread_snapshot {
  std::uint32_t tid = 0;        ///< registry-assigned thread index
  std::string name;             ///< set_thread_name() or "thread-<tid>"
  std::uint64_t written = 0;    ///< total records the thread ever pushed
  std::uint64_t progress = 0;   ///< last-progress epoch (dequeue count)
  std::vector<event_record> records;  ///< oldest-first, seq ascending
};

class trace_ring {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit trace_ring(std::uint32_t tid, std::string name,
                      std::size_t capacity = kDefaultCapacity)
      : tid_(tid), name_(std::move(name)), mask_(capacity - 1),
        slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "trace ring capacity must be a power of two");
  }

  trace_ring(const trace_ring&) = delete;
  trace_ring& operator=(const trace_ring&) = delete;

  std::uint32_t tid() const noexcept { return tid_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Owner thread only. Wait-free: four relaxed stores, one release
  /// store, one release bump of the write count.
  void push(event_type type, std::uint16_t queue, std::int64_t arg,
            std::uint64_t tsc, std::uint32_t dur) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slot& s = slots_[static_cast<std::size_t>(h) & mask_];
    const std::uint64_t seq = h + 1;  // 1-based so 0 marks "never written"
    // Invalidate first so a concurrent reader that catches the slot
    // mid-rewrite sees mismatched seq reads, not a stale-but-plausible
    // pairing of old seq with new payload. The release fence is the
    // seqlock writer's store-store barrier: the 0 must land before any
    // payload word does.
    s.w[0].store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.w[1].store(tsc, std::memory_order_relaxed);
    s.w[2].store(static_cast<std::uint64_t>(arg), std::memory_order_relaxed);
    s.w[3].store(event_record::pack_word3(type, queue, dur),
                 std::memory_order_relaxed);
    s.w[0].store(seq, std::memory_order_release);
    head_.store(seq, std::memory_order_release);
  }

  /// Owner thread only: bump the liveness epoch the watchdog samples.
  /// Called on every successful dequeue (see tracer.hpp).
  void mark_progress() noexcept {
    progress_.store(progress_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  }

  std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Total records ever pushed (not capped by capacity).
  std::uint64_t written() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Copy the newest ≤ capacity records, any thread, writer may be live.
  /// Slots the writer overwrote mid-copy are simply omitted; the seq
  /// numbering lets consumers (and trace_check) see exactly what was
  /// lost. Records are returned oldest-first in seq order.
  thread_snapshot snapshot() const {
    thread_snapshot out;
    out.tid = tid_;
    out.name = name_;
    out.progress = progress();
    const std::uint64_t h = written();
    out.written = h;
    const std::uint64_t n = h < capacity() ? h : capacity();
    out.records.reserve(static_cast<std::size_t>(n));
    const std::uint64_t first = h - n;  // oldest seq - 1 still in the ring
    for (std::uint64_t i = first; i < h; ++i) {
      event_record r;
      if (read_slot(static_cast<std::size_t>(i) & mask_, r)) {
        // The writer may have lapped us: accept only the seq we expected
        // (i + 1); a later seq in this slot means the record was lost.
        if (r.seq == i + 1) out.records.push_back(r);
      }
    }
    return out;
  }

 private:
  struct alignas(32) slot {
    std::atomic<std::uint64_t> w[4] = {};
  };

  /// Seqlock-style consistent read of one slot. False when the slot is
  /// empty or was concurrently rewritten.
  bool read_slot(std::size_t idx, event_record& out) const noexcept {
    const slot& s = slots_[idx];
    const std::uint64_t seq_before = s.w[0].load(std::memory_order_acquire);
    if (seq_before == 0) return false;
    const std::uint64_t tsc = s.w[1].load(std::memory_order_relaxed);
    const std::uint64_t arg = s.w[2].load(std::memory_order_relaxed);
    const std::uint64_t w3 = s.w[3].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t seq_after = s.w[0].load(std::memory_order_relaxed);
    if (seq_before != seq_after) return false;
    out.seq = seq_before;
    out.tsc = tsc;
    out.arg = static_cast<std::int64_t>(arg);
    out.type = event_record::unpack_type(w3);
    out.queue = event_record::unpack_queue(w3);
    out.dur = event_record::unpack_dur(w3);
    return true;
  }

  std::uint32_t tid_;
  std::string name_;
  std::size_t mask_;
  std::vector<slot> slots_;
  std::atomic<std::uint64_t> head_{0};      ///< records ever written
  std::atomic<std::uint64_t> progress_{0};  ///< liveness epoch
};

}  // namespace ffq::trace
