// registry.hpp — process-wide ownership of trace rings and queue ids.
//
// Header-only on purpose: the queue templates (ffq_core is an INTERFACE
// library) emit records through this registry, so it cannot live in a
// linked .cpp the way telemetry::registry does — every target that
// instantiates an enabled-trace queue must get it for free.
//
// Ownership model mirrors telemetry::latency_recorder: rings live in a
// deque (stable addresses) owned by the singleton and survive their
// thread's exit, so the exporter can merge a full run after workers have
// joined. `ring_for_this_thread()` is amortized-free: a thread_local
// cache holds the pointer and is re-validated against a generation
// counter so registry::reset() (tests, phase boundaries) cannot leave a
// dangling cached ring behind.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ffq/trace/ring.hpp"

namespace ffq::trace {

class registry {
 public:
  static registry& instance() {
    static registry r;
    return r;
  }

  /// The calling thread's ring, created and registered on first use.
  /// Safe to call from any thread at any time; the fast path is one
  /// thread_local load plus one relaxed generation check.
  trace_ring& ring_for_this_thread() {
    struct cache {
      trace_ring* ring = nullptr;
      std::uint64_t generation = 0;
    };
    thread_local cache c;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (c.ring == nullptr || c.generation != gen) {
      c.ring = &make_ring();
      c.generation = gen;
    }
    return *c.ring;
  }

  /// Rename a ring's display track. Serialized with snapshot_all() /
  /// for_each_ring() through the registry mutex, because thread_snapshot
  /// copies the name string.
  void rename_ring(trace_ring& ring, std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    ring.set_name(std::string(name));
  }

  /// Register a queue instance; returns the id events carry. `kind` is
  /// the queue family's kName; the display name becomes "<kind>#<n>"
  /// with n counting instances of that kind.
  std::uint16_t register_queue(std::string_view kind) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t nth = 0;
    for (const auto& q : queues_) {
      nth += q.compare(0, kind.size(), kind) == 0 &&
                     q.size() > kind.size() && q[kind.size()] == '#'
                 ? 1
                 : 0;
    }
    queues_.push_back(std::string(kind) + "#" + std::to_string(nth));
    return static_cast<std::uint16_t>(queues_.size() - 1);
  }

  /// Display name for a queue id ("?" for ids from before a reset()).
  std::string queue_name(std::uint16_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return id < queues_.size() ? queues_[id] : std::string("?");
  }

  /// Snapshot every ring (live writers welcome; see trace_ring).
  std::vector<thread_snapshot> snapshot_all() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<thread_snapshot> out;
    out.reserve(rings_.size());
    for (const auto& r : rings_) out.push_back(r.snapshot());
    return out;
  }

  /// Visit every live ring without copying (watchdog liveness sampling).
  template <typename Fn>
  void for_each_ring(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& r : rings_) fn(r);
  }

  /// Capacity (power of two) of rings created after this call.
  void set_ring_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    ring_capacity_ = capacity;
  }

  /// Drop all rings and queue names and invalidate every thread's cached
  /// ring pointer. Only call between phases when no traced queue
  /// operation can be in flight.
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.clear();
    queues_.clear();
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  registry() = default;

  trace_ring& make_ring() {
    std::lock_guard<std::mutex> lock(mu_);
    const auto tid = static_cast<std::uint32_t>(rings_.size());
    rings_.emplace_back(tid, "thread-" + std::to_string(tid), ring_capacity_);
    return rings_.back();
  }

  mutable std::mutex mu_;
  std::deque<trace_ring> rings_;
  std::vector<std::string> queues_;
  std::size_t ring_capacity_ = trace_ring::kDefaultCapacity;
  std::atomic<std::uint64_t> generation_{1};
};

/// Name the calling thread's trace track (and watchdog identity), e.g.
/// "producer-0" or "consumer-3". Last write wins.
inline void set_thread_name(std::string_view name) {
  auto& reg = registry::instance();
  reg.rename_ring(reg.ring_for_this_thread(), name);
}

}  // namespace ffq::trace
