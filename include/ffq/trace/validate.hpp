// validate.hpp — offline trace validation: a second correctness oracle.
//
// The model checker (src/model) proves the *algorithms* correct over
// exhaustive small interleavings; the trace validator checks that a
// *real execution* of the real code respected the queue contract, by
// replaying a merged event timeline:
//
//   * per-producer FIFO — within one (thread, queue), published ranks
//     strictly increase (a producer's items leave in issue order);
//   * no duplication    — a (queue, rank) is consumed at most once;
//   * no fabrication    — every consumed rank was published;
//   * no loss           — every published rank is consumed (checked only
//     when the trace is complete: no ring overwrite drops and the
//     workload drained its queues; callers say which).
//
// Ring overwrite is not silent: per-thread seq numbers are contiguous,
// so any gap is counted as `dropped` and the loss check downgrades
// itself (a dropped dequeue record would otherwise read as a loss).
//
// Consumes the neutral `trace_op` form so both in-process snapshots
// (tests) and parsed "ffq.trace.v1" files (tools/trace_check) feed it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ffq/trace/export.hpp"

namespace ffq::trace {

/// One timeline entry in neutral form.
struct trace_op {
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;
  std::string type;   ///< "enqueue", "dequeue", or any instant name
  std::string queue;  ///< queue display name ("" for park/wake)
  std::int64_t rank = 0;
};

struct validation_report {
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t instants = 0;
  std::uint64_t dropped = 0;  ///< records lost to ring overwrite (seq gaps)
  std::vector<std::string> errors;  ///< hard violations (dup, fifo, ...)
  std::uint64_t lost = 0;     ///< published but never consumed (info when
                              ///< dropped > 0 or !expect_drained)

  bool ok() const noexcept { return errors.empty(); }
};

/// Replay `ops` in any cross-thread order (irrelevant to these checks).
/// A thread's program order is its *seq* order, not its timeline order:
/// duration records are timestamped at operation start, so an instant
/// emitted mid-operation (e.g. a DWCAS retry) legitimately appears after
/// a later-seq record in a tsc-sorted merge. The validator re-establishes
/// per-thread program order itself before replaying. `expect_drained` =
/// the workload consumed everything it produced, so unconsumed ranks are
/// losses — only enforced when no records were dropped.
inline validation_report validate_trace(const std::vector<trace_op>& ops,
                                        bool expect_drained,
                                        std::size_t max_errors = 16) {
  validation_report rep;
  auto fail = [&](std::string msg) {
    if (rep.errors.size() < max_errors) rep.errors.push_back(std::move(msg));
  };

  std::vector<const trace_op*> ordered;
  ordered.reserve(ops.size());
  for (const auto& o : ops) ordered.push_back(&o);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const trace_op* a, const trace_op* b) {
                     return a->tid != b->tid ? a->tid < b->tid
                                             : a->seq < b->seq;
                   });

  std::map<std::uint32_t, std::uint64_t> last_seq;          // tid -> seq
  std::map<std::pair<std::string, std::uint32_t>, std::int64_t>
      last_published;                                       // (q,tid) -> rank
  std::map<std::string, std::set<std::int64_t>> published;  // q -> ranks
  std::map<std::string, std::set<std::int64_t>> consumed;   // q -> ranks

  for (const trace_op* p : ordered) {
    const trace_op& op = *p;
    // Seq bookkeeping: 1-based, unique and contiguous per thread; gaps =
    // ring overwrite. Overwrite-oldest keeps the *newest* contiguous
    // window, so a wrapped ring shows up as a leading gap (first seq
    // > 1), not an interior one — count it, or a long run would pass as
    // "0 dropped" and the fabrication/loss checks below would fire on
    // records whose counterparts were simply overwritten. After the
    // sort a regression can only be a duplicate.
    auto [it, fresh] = last_seq.try_emplace(op.tid, op.seq);
    if (fresh) {
      rep.dropped += op.seq - 1;
    } else {
      if (op.seq <= it->second) {
        fail("thread " + std::to_string(op.tid) + ": duplicate seq " +
             std::to_string(op.seq));
      } else {
        rep.dropped += op.seq - it->second - 1;
      }
      it->second = op.seq;
    }

    if (op.type == "enqueue") {
      ++rep.enqueues;
      const auto key = std::make_pair(op.queue, op.tid);
      auto [pit, first] = last_published.try_emplace(key, op.rank);
      if (!first) {
        if (op.rank <= pit->second) {
          fail("producer FIFO violated on " + op.queue + ": thread " +
               std::to_string(op.tid) + " published rank " +
               std::to_string(op.rank) + " after " +
               std::to_string(pit->second));
        }
        pit->second = op.rank;
      }
      if (!published[op.queue].insert(op.rank).second) {
        fail("rank published twice on " + op.queue + ": " +
             std::to_string(op.rank));
      }
    } else if (op.type == "dequeue") {
      ++rep.dequeues;
      if (!consumed[op.queue].insert(op.rank).second) {
        fail("rank consumed twice on " + op.queue + ": " +
             std::to_string(op.rank));
      }
    } else {
      ++rep.instants;
    }
  }

  // Fabrication: consumed but never published. Only provable when the
  // producer's records were not overwritten; with drops we stay quiet.
  if (rep.dropped == 0) {
    for (const auto& [q, ranks] : consumed) {
      for (const std::int64_t r : ranks) {
        if (published[q].count(r) == 0) {
          fail("rank consumed but never published on " + q + ": " +
               std::to_string(r));
        }
      }
    }
  }

  // Loss: published but never consumed.
  for (const auto& [q, ranks] : published) {
    for (const std::int64_t r : ranks) {
      if (consumed[q].count(r) == 0) ++rep.lost;
    }
  }
  if (expect_drained && rep.dropped == 0 && rep.lost > 0) {
    fail(std::to_string(rep.lost) +
         " rank(s) published but never consumed in a drained trace");
  }
  return rep;
}

/// Adapt in-process merged snapshots (export.hpp) to trace_op form.
/// `queue_name(id)` resolves queue ids — usually
/// registry::instance().queue_name.
template <typename QueueNameFn>
std::vector<trace_op> to_trace_ops(const std::vector<merged_event>& events,
                                   QueueNameFn&& queue_name) {
  std::vector<trace_op> ops;
  ops.reserve(events.size());
  for (const auto& e : events) {
    trace_op op;
    op.tid = e.tid;
    op.seq = e.rec.seq;
    op.type = to_string(e.rec.type);
    op.queue = queue_name(e.rec.queue);
    op.rank = e.rec.arg;
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace ffq::trace
