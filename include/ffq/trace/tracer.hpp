// tracer.hpp — the per-queue trace hook block behind the trace policy.
//
// `queue_tracer<enabled>` is what a queue holds when its Trace template
// parameter is `trace::enabled`: a 2-byte queue id (assigned by the
// trace registry at queue construction) plus inline emit helpers that
// push packed records into the calling thread's ring. One record per
// completed operation — the begin timestamp is captured into a register
// with `now()` and folded into the record at the end — so the hot path
// pays one rdtsc, one thread_local lookup, and five atomic stores per
// traced operation, and nothing on the miss paths it does not take.
//
// `queue_tracer<disabled>` is an empty class whose members are no-op
// inlines; queues hold it through [[no_unique_address]] so the OFF
// configuration is byte-identical to the untraced layout (mirror-struct
// static_asserts in tests/test_trace.cpp) and every call site folds to
// nothing.
//
// Hook sites are the same policy-gated spots telemetry instruments
// (DESIGN.md §8): publication/consumption for the duration events, and
// gap / skip / DWCAS-retry / full-stall / park / wake for the instants.
#pragma once

#include <cstdint>
#include <type_traits>

#include "ffq/runtime/timing.hpp"
#include "ffq/trace/event.hpp"
#include "ffq/trace/policy.hpp"
#include "ffq/trace/registry.hpp"

namespace ffq::trace {

template <typename Policy = default_policy>
class queue_tracer;

template <>
class queue_tracer<enabled> {
 public:
  static constexpr bool kEnabled = true;

  explicit queue_tracer(const char* kind)
      : id_(registry::instance().register_queue(kind)) {}

  /// Begin-of-operation timestamp, kept in a register by the caller.
  static std::uint64_t now() noexcept { return ffq::runtime::rdtsc(); }

  /// Operation completed: one duration record, plus the liveness epoch
  /// bump on the consume side (the watchdog's per-thread progress).
  void on_enqueue(std::uint64_t t0, std::int64_t rank) const noexcept {
    emit(event_type::enqueue, rank, t0, saturate_dur(now() - t0));
  }
  void on_dequeue(std::uint64_t t0, std::int64_t rank) const noexcept {
    auto& ring = registry::instance().ring_for_this_thread();
    ring.push(event_type::dequeue, id_, rank, t0, saturate_dur(now() - t0));
    ring.mark_progress();
  }

  void on_gap(std::int64_t rank) const noexcept {
    emit_instant(event_type::gap_created, rank);
  }
  void on_skip(std::int64_t rank) const noexcept {
    emit_instant(event_type::consumer_skip, rank);
  }
  void on_dwcas_retry(std::int64_t rank) const noexcept {
    emit_instant(event_type::dwcas_retry, rank);
  }
  /// Emitted once per full-ring wait episode (not per pause): the
  /// episode's existence is the diagnostic signal, its length is visible
  /// as the gap until the following enqueue record.
  void on_full_stall(std::int64_t rank) const noexcept {
    emit_instant(event_type::full_stall, rank);
  }
  void on_park() const noexcept { emit_instant(event_type::park, 0); }
  void on_wake() const noexcept { emit_instant(event_type::wake, 0); }
  /// Shard-fabric scheduler instants (DESIGN.md §11): a consumer jumping
  /// its cursor to the busiest shard, and a poll finding every shard dry.
  void on_steal(std::int64_t shard) const noexcept {
    emit_instant(event_type::shard_steal, shard);
  }
  void on_empty_sweep() const noexcept {
    emit_instant(event_type::empty_sweep, 0);
  }

  std::uint16_t id() const noexcept { return id_; }

 private:
  void emit(event_type t, std::int64_t arg, std::uint64_t tsc,
            std::uint32_t dur) const noexcept {
    registry::instance().ring_for_this_thread().push(t, id_, arg, tsc, dur);
  }
  void emit_instant(event_type t, std::int64_t arg) const noexcept {
    emit(t, arg, now(), 0);
  }

  std::uint16_t id_;
};

template <>
class queue_tracer<disabled> {
 public:
  static constexpr bool kEnabled = false;

  explicit queue_tracer(const char*) noexcept {}

  static constexpr std::uint64_t now() noexcept { return 0; }
  void on_enqueue(std::uint64_t, std::int64_t) const noexcept {}
  void on_dequeue(std::uint64_t, std::int64_t) const noexcept {}
  void on_gap(std::int64_t) const noexcept {}
  void on_skip(std::int64_t) const noexcept {}
  void on_dwcas_retry(std::int64_t) const noexcept {}
  void on_full_stall(std::int64_t) const noexcept {}
  void on_park() const noexcept {}
  void on_wake() const noexcept {}
  void on_steal(std::int64_t) const noexcept {}
  void on_empty_sweep() const noexcept {}
};

static_assert(std::is_empty_v<queue_tracer<disabled>>,
              "the disabled policy must add no storage to queues");

}  // namespace ffq::trace
