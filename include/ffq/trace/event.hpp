// event.hpp — the trace event vocabulary and the packed record format.
//
// One record per queue operation or liveness-relevant incident,
// TSC-timestamped at the emitting thread. A record is exactly four
// 64-bit words so a ring slot can be published with four relaxed atomic
// stores plus one release store (see ring.hpp):
//
//   word 0  seq    per-thread sequence number, starts at 1, monotonically
//                  increasing across ring wrap-arounds (0 = slot empty)
//   word 1  tsc    runtime::rdtsc() at the *start* of the operation
//   word 2  arg    event-specific payload: the rank for queue events,
//                  0 otherwise
//   word 3  packed [type:16 | queue:16 | dur:32] — event type, queue id
//                  from the trace registry, and the operation duration in
//                  TSC cycles saturated to 32 bits (~1.4 s at 3 GHz;
//                  anything longer is a watchdog matter, not a tracing
//                  one). Instant events carry dur = 0.
//
// Duration events (enqueue/dequeue) describe one completed operation —
// begin and end are folded into a single record (tsc + dur), which keeps
// the hot path at one ring push per operation instead of two.
#pragma once

#include <cstdint>

namespace ffq::trace {

enum class event_type : std::uint16_t {
  enqueue = 1,       ///< duration; arg = published rank
  dequeue = 2,       ///< duration; arg = consumed rank
  gap_created = 3,   ///< instant; arg = skipped rank (Alg. 1 l.13 / DWCAS)
  consumer_skip = 4, ///< instant; arg = abandoned rank ("gap >= rank")
  dwcas_retry = 5,   ///< instant; arg = contended rank (MPMC cell races)
  full_stall = 6,    ///< instant; arg = rank awaited in the full-ring regime
  park = 7,          ///< instant; consumer parked on the eventcount
  wake = 8,          ///< instant; producer woke a parked consumer
  shard_steal = 9,   ///< instant; arg = shard a fabric consumer stole from
  empty_sweep = 10,  ///< instant; a fabric poll found every shard dry
};

/// Display name used in the Chrome trace export and the validator.
constexpr const char* to_string(event_type t) noexcept {
  switch (t) {
    case event_type::enqueue:
      return "enqueue";
    case event_type::dequeue:
      return "dequeue";
    case event_type::gap_created:
      return "gap";
    case event_type::consumer_skip:
      return "skip";
    case event_type::dwcas_retry:
      return "dwcas_retry";
    case event_type::full_stall:
      return "full_stall";
    case event_type::park:
      return "park";
    case event_type::wake:
      return "wake";
    case event_type::shard_steal:
      return "steal";
    case event_type::empty_sweep:
      return "empty_sweep";
  }
  return "?";
}

/// True for the two operation (duration) events; everything else renders
/// as a Chrome "instant" event.
constexpr bool is_duration(event_type t) noexcept {
  return t == event_type::enqueue || t == event_type::dequeue;
}

/// Unpacked trace record (the ring stores the packed 4-word form).
struct event_record {
  std::uint64_t seq = 0;   ///< 0 = invalid / empty slot
  std::uint64_t tsc = 0;
  std::int64_t arg = 0;
  event_type type = event_type::enqueue;
  std::uint16_t queue = 0;
  std::uint32_t dur = 0;  ///< TSC cycles, saturated

  static constexpr std::uint64_t pack_word3(event_type t, std::uint16_t q,
                                            std::uint32_t dur) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(t)) << 48) |
           (static_cast<std::uint64_t>(q) << 32) | dur;
  }

  static constexpr event_type unpack_type(std::uint64_t w3) noexcept {
    return static_cast<event_type>(static_cast<std::uint16_t>(w3 >> 48));
  }
  static constexpr std::uint16_t unpack_queue(std::uint64_t w3) noexcept {
    return static_cast<std::uint16_t>(w3 >> 32);
  }
  static constexpr std::uint32_t unpack_dur(std::uint64_t w3) noexcept {
    return static_cast<std::uint32_t>(w3);
  }
};

/// Saturate a TSC delta into the record's 32-bit duration field.
constexpr std::uint32_t saturate_dur(std::uint64_t cycles) noexcept {
  return cycles > 0xffffffffULL ? 0xffffffffU
                                : static_cast<std::uint32_t>(cycles);
}

}  // namespace ffq::trace
