// trace.hpp — umbrella header for the ffq::trace subsystem.
//
// What lives where:
//   policy.hpp    enabled / disabled tags, compile-time default
//   event.hpp     event vocabulary + packed 4-word record format
//   ring.hpp      per-thread wait-free SPSC trace ring (seqlock reads)
//   registry.hpp  process-wide ring/queue-id ownership (header-only)
//   tracer.hpp    queue_tracer<Policy> — the hook block queues embed
//   export.hpp    snapshot merge + Chrome Trace Event JSON ("ffq.trace.v1")
//   validate.hpp  offline replay validator (FIFO / no-loss / no-dup)
//   watchdog.hpp  liveness sampler + post-mortem queue-state dumps
//   json_reader.hpp  strict RFC 8259 reader for trace_check / tests
//
// Queues only depend on policy/event/ring/registry/tracer (all
// header-only, zero-cost when disabled); the exporter and watchdog are
// in the ffq_trace static library.
#pragma once

#include "ffq/trace/event.hpp"        // IWYU pragma: export
#include "ffq/trace/export.hpp"       // IWYU pragma: export
#include "ffq/trace/json_reader.hpp"  // IWYU pragma: export
#include "ffq/trace/policy.hpp"       // IWYU pragma: export
#include "ffq/trace/registry.hpp"  // IWYU pragma: export
#include "ffq/trace/ring.hpp"      // IWYU pragma: export
#include "ffq/trace/tracer.hpp"    // IWYU pragma: export
#include "ffq/trace/validate.hpp"  // IWYU pragma: export
#include "ffq/trace/watchdog.hpp"  // IWYU pragma: export
