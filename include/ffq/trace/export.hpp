// export.hpp — merging per-thread rings and writing Chrome Trace Event
// JSON (schema "ffq.trace.v1", loadable at ui.perfetto.dev).
//
// The document is a JSON object (not a bare array) so it can carry the
// schema tag; Perfetto and chrome://tracing both accept the object form:
//
//   {
//     "schema": "ffq.trace.v1",
//     "displayTimeUnit": "ns",
//     "traceEvents": [
//       {"ph":"M", ... "process_name"/"thread_name" metadata ...},
//       {"ph":"X","name":"enqueue","cat":"queue","pid":1,"tid":2,
//        "ts":0.000,"dur":0.042,
//        "args":{"queue":"ffq-mpmc#0","rank":3,"seq":7}},
//       {"ph":"i","name":"gap","cat":"queue","s":"t", ...},
//       {"ph":"C","name":"queue.ffq-mpmc/gaps_created","pid":1,
//        "ts":...,"args":{"value":145}}
//     ]
//   }
//
// One event per line, keys in a fixed order, all strings escaped through
// telemetry::json_escape (the repo's single RFC 8259 writer) — the
// output is byte-stable for a given input, which makes it golden-file
// testable (tests/golden/trace_v1.json) and trivially parseable by
// tools/trace_check.
//
// Timestamps: ts = (tsc - base) / ticks_per_us, microseconds with 3
// decimals (nanosecond display resolution). ticks_per_us defaults to the
// calibrated TSC frequency; tests pin it for determinism.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ffq/telemetry/snapshot.hpp"
#include "ffq/trace/ring.hpp"

namespace ffq::trace {

inline constexpr const char* kTraceSchema = "ffq.trace.v1";

/// One ring record plus the identity of the thread that emitted it.
struct merged_event {
  std::uint32_t tid = 0;
  event_record rec;
};

/// Merge per-thread snapshots into one timeline ordered by (tsc, tid,
/// seq). Records within a thread are already seq-ordered; the tie-break
/// on (tid, seq) makes the merge a total order, so the export is
/// deterministic even with duplicate timestamps (e.g. synthetic traces
/// or coarse non-x86 clocks).
std::vector<merged_event> merge_snapshots(
    const std::vector<thread_snapshot>& snaps);

struct export_options {
  /// TSC ticks per exported microsecond; 0 = calibrate via
  /// runtime::tsc_ghz(). Tests pin this (e.g. 1000.0) for byte-stable
  /// output.
  double ticks_per_us = 0.0;
  /// Timestamp subtracted before scaling; ~0 = the minimum tsc across
  /// all records (the export starts at ts 0.000).
  std::uint64_t base_tsc = ~std::uint64_t{0};
  /// Optional "ffq.metrics.v1" snapshot rendered as Chrome counter
  /// events at the end of the timeline (histograms are omitted; counter
  /// tracks are the useful overlay next to an event timeline).
  const ffq::telemetry::metrics_snapshot* metrics = nullptr;
};

/// Render the trace document for the given snapshots.
std::string chrome_trace_json(const std::vector<thread_snapshot>& snaps,
                              const export_options& opts = {});

/// Snapshot every ring in the trace registry and write the document to
/// `path`. Optionally folds the process-wide telemetry snapshot in as
/// counter tracks. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const export_options& opts = {});

}  // namespace ffq::trace
