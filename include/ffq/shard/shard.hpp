// shard.hpp — ffq::shard::fabric: a multi-producer queue fabric composed
// of single-producer FFQ^s shards (DESIGN.md §11).
//
// FFQ^m buys multi-producer generality with a double-word CAS on every
// enqueue (paper §III-B) and loses dequeue lock-freedom to stalled
// producer reservations. The standard escape hatch — Jiffy's
// producer-private buffer lists, FastFlow's SPSC composition — is to give
// every producer its *own* cheap queue and move the multiplexing to the
// consumer side. The fabric does exactly that with the paper's own fast
// path:
//
//   * producer p owns shard p, a plain FFQ^s (spmc_queue): enqueue is the
//     paper's wait-free Algorithm 1 path — no DWCAS, no producer-producer
//     cache-line contention, no -2 reservation a consumer can park behind;
//   * consumers run a shard scheduler: round-robin over shards with a
//     per-visit drain quota, draining through the bulk dequeue path (one
//     head fetch-and-add claims a whole run), plus a steal pass — when
//     the cursor's shard runs dry the consumer jumps to the busiest shard
//     (by approx_size) instead of blindly walking the ring;
//   * Ordered mode stamps every item with an epoch drawn from a shared
//     relaxed counter (one fetch_add per enqueue — still far cheaper than
//     FFQ^m's DWCAS claim protocol, and uncontended in the common case
//     because it is the *only* shared producer-side line) and consumers
//     merge shard streams by epoch through per-shard holding slots.
//
// Ordering contract:
//   * per-producer FIFO holds in both modes for every consumer stream —
//     each shard is FIFO per producer and the scheduler never reorders
//     within a shard;
//   * unordered mode makes no cross-producer promise (like FFQ^m under
//     concurrent producers, where arrival order is whatever the tail FAA
//     says);
//   * ordered mode additionally emits, per consumer, items in epoch order
//     among the items that consumer *holds* — and on a closed fabric a
//     single consumer drains in exact global epoch order (a k-way merge
//     of epoch-sorted shard streams). Live runs are best-effort: an epoch
//     enqueued later to an empty-looking shard can be emitted after a
//     larger epoch already handed out.
//
// The fabric is not linearizable to a single FIFO queue — that is the
// point; it trades the global order FFQ^m also does not really give you
// (under producer concurrency) for wait-free enqueue at producer scale.
//
// Instrumentation threads through the same policy stack as the queues:
// telemetry (fabric_counters: steals / empty polls / drain batches, plus
// every shard's own queue_counters), trace (shard_steal / empty_sweep
// instants on top of the shards' records), and FFQ_CHECK_YIELD points in
// the scheduler so the deterministic checker interleaves scheduling
// decisions (model machine: model/shard_sched.hpp). With every policy
// disabled the layout is byte-identical to the uninstrumented fabric
// (mirror static_asserts in tests/test_shard.cpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "ffq/check/yield.hpp"
#include "ffq/core/layout.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/shard/placement.hpp"
#include "ffq/telemetry/shard_counters.hpp"
#include "ffq/trace/tracer.hpp"

namespace ffq::shard {

namespace detail {

/// Ordered-mode item wrapper: the producer-stamped epoch travels through
/// the shard next to the value.
template <typename T>
struct stamped {
  std::uint64_t epoch = 0;
  T value{};
};

/// Input iterator that stamps consecutive epochs onto a wrapped range —
/// lets enqueue_bulk feed stamped<T> cells without materializing a batch.
template <typename It, typename T>
struct stamping_iterator {
  It it;
  std::uint64_t epoch;

  stamped<T> operator*() const { return {epoch, *it}; }
  stamping_iterator& operator++() {
    ++it;
    ++epoch;
    return *this;
  }
};

/// The shared epoch clock (ordered mode): alone on its line so the only
/// producer-shared state never false-shares with a shard.
struct epoch_clock {
  ffq::runtime::padded<std::atomic<std::uint64_t>> next{0};
};

struct no_epoch {};

}  // namespace detail

/// Scheduler knobs + advisory placement.
struct options {
  /// Max items a consumer takes from one shard per visit before the
  /// cursor is eligible to move (the scheduler's fairness/locality
  /// trade-off; also the cap on a steal's bite).
  std::size_t drain_quota = 64;
  /// Shard → CPU strategy, computed via runtime::plan_placement. `none`
  /// (default) skips topology discovery entirely.
  ffq::runtime::placement_policy placement =
      ffq::runtime::placement_policy::none;
  /// Topology to plan against; nullptr = discover() when placement is
  /// not `none` (tests pass a synthetic topology).
  const ffq::runtime::cpu_topology* topology = nullptr;
};

/// The sharded SPMC fabric. One FFQ^s shard per producer; `Ordered`
/// selects epoch-stamped merge fan-in. Layout/Telemetry/Trace forward to
/// every shard (layout policy per shard, as in the scalar queues).
template <typename T, bool Ordered = false,
          typename Layout = ffq::core::layout_aligned,
          typename Telemetry = ffq::telemetry::default_policy,
          typename Trace = ffq::trace::default_policy>
class fabric {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "cell publication cannot be rolled back after a throwing move");
  static_assert(!Ordered || std::is_default_constructible_v<T>,
                "ordered mode stages items in per-shard holding slots");

 public:
  using value_type = T;
  using layout_type = Layout;
  using telemetry_policy = Telemetry;
  using trace_policy = Trace;
  using item_type = std::conditional_t<Ordered, detail::stamped<T>, T>;
  using shard_type = ffq::core::spmc_queue<item_type, Layout, Telemetry, Trace>;
  static constexpr bool kOrdered = Ordered;
  static constexpr const char* kName =
      Ordered ? "ffq-shard-ordered" : "ffq-shard";

  /// `producers` shards of `shard_capacity` cells each (power of two;
  /// same flow-control assumption per shard as spmc_queue).
  fabric(std::size_t producers, std::size_t shard_capacity,
         options opts = {})
      : shard_capacity_(shard_capacity), opts_(opts) {
    assert(producers >= 1 && "a fabric needs at least one producer shard");
    shards_.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      shards_.push_back(std::make_unique<shard_type>(shard_capacity));
    }
    if (opts_.placement != ffq::runtime::placement_policy::none) {
      plan_ = opts_.topology
                  ? plan_shards(*opts_.topology, opts_.placement, producers)
                  : plan_shards(opts_.placement, producers);
    }
  }

  fabric(const fabric&) = delete;
  fabric& operator=(const fabric&) = delete;

  // --- producer side ------------------------------------------------------

  /// Exclusive endpoint for producer `p`'s shard: exactly one thread may
  /// use a given producer index at a time (the shard is single-producer).
  class producer_handle {
   public:
    void enqueue(T value) noexcept {
      if constexpr (Ordered) {
        FFQ_CHECK_YIELD();  // scheduling point: the epoch draw
        const std::uint64_t e =
            fab_->epoch_.next->fetch_add(1, std::memory_order_relaxed);
        shard_->enqueue(detail::stamped<T>{e, std::move(value)});
      } else {
        shard_->enqueue(std::move(value));
      }
    }

    template <typename It>
    void enqueue_bulk(It first, std::size_t n) noexcept {
      if constexpr (Ordered) {
        FFQ_CHECK_YIELD();  // scheduling point: the epoch-block draw
        const std::uint64_t e0 =
            fab_->epoch_.next->fetch_add(n, std::memory_order_relaxed);
        detail::stamping_iterator<It, T> it{first, e0};
        shard_->enqueue_bulk(it, n);
      } else {
        shard_->enqueue_bulk(first, n);
      }
    }

    std::size_t index() const noexcept { return index_; }

    /// This shard's advisory CPU group (nullptr when the fabric was built
    /// with placement_policy::none).
    const ffq::runtime::group_placement* placement() const noexcept {
      return fab_->placement_of(index_);
    }

   private:
    friend class fabric;
    producer_handle(fabric* fab, std::size_t index) noexcept
        : fab_(fab), index_(index), shard_(fab->shards_[index].get()) {}

    fabric* fab_;
    std::size_t index_;
    shard_type* shard_;
  };

  producer_handle producer(std::size_t p) noexcept {
    assert(p < shards_.size());
    return producer_handle(this, p);
  }

  // --- consumer side ------------------------------------------------------

  /// A consumer's scheduler state: the round-robin cursor (unordered) or
  /// the per-shard holding slots (ordered). One handle per consumer
  /// thread; handles are independent and any number may run concurrently.
  class consumer_handle {
   public:
    /// Non-blocking single dequeue. Unordered: quota-1 drain through the
    /// scheduler. Ordered: refill holding slots, emit the minimum epoch.
    bool try_dequeue(T& out) noexcept {
      if constexpr (Ordered) {
        return try_dequeue_ordered(out);
      } else {
        return try_dequeue_bulk(&out, 1) == 1;
      }
    }

    /// Non-blocking bulk dequeue of up to min(max_n, drain_quota) items.
    template <typename OutIt>
    std::size_t try_dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
      if (max_n == 0) return 0;
      if constexpr (Ordered) {
        std::size_t n = 0;
        T v{};
        while (n < max_n && try_dequeue_ordered(v)) {
          *out = std::move(v);
          ++out;
          ++n;
        }
        return n;
      } else {
        return drain_unordered(out, max_n);
      }
    }

    /// Blocking dequeue: spins (with back-off) while the fabric is empty
    /// but open; returns false only once closed and nothing is claimable
    /// by this consumer.
    bool dequeue(T& out) noexcept {
      ffq::runtime::yielding_backoff backoff;
      for (;;) {
        if (try_dequeue(out)) return true;
        if (fab_->closed()) {
          // Items may have been published between the failed try and the
          // close observation: one more sweep decides.
          return try_dequeue(out);
        }
        backoff.pause();
      }
    }

    /// Blocking bulk dequeue: ≥ 1 items, or 0 only once closed and
    /// drained (mirrors the scalar queues' dequeue_bulk contract).
    template <typename OutIt>
    std::size_t dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
      if (max_n == 0) return 0;
      ffq::runtime::yielding_backoff backoff;
      for (;;) {
        const std::size_t n = try_dequeue_bulk(out, max_n);
        if (n > 0) return n;
        if (fab_->closed()) return try_dequeue_bulk(out, max_n);
        backoff.pause();
      }
    }

   private:
    friend class fabric;
    explicit consumer_handle(fabric* fab) noexcept
        : fab_(fab),
          cursor_(fab->next_consumer_.fetch_add(1, std::memory_order_relaxed) %
                  fab->shards_.size()) {
      if constexpr (Ordered) held_.resize(fab->shards_.size());
    }

    /// Unordered scheduler: visit the cursor's shard (quota-capped bulk
    /// claim), steal from the busiest shard when it is dry, advance the
    /// cursor round-robin when a visit under-fills.
    template <typename OutIt>
    std::size_t drain_unordered(OutIt out, std::size_t max_n) noexcept {
      const std::size_t want = std::min(max_n, fab_->opts_.drain_quota);
      const std::size_t nshards = fab_->shards_.size();
      FFQ_CHECK_YIELD();  // scheduling point: the cursor visit
      std::size_t n = fab_->shard(cursor_).try_dequeue_bulk(out, want);
      if (n > 0) {
        if (n < want) advance();  // shard (nearly) dry: move on next visit
        fab_->tel_.on_drain(n);
        return n;
      }
      fab_->tel_.on_empty_poll();
      // Steal pass: jump to the busiest shard instead of walking the ring
      // one empty shard at a time.
      std::size_t best = cursor_;
      std::int64_t best_size = 0;
      for (std::size_t i = 1; i < nshards; ++i) {
        const std::size_t s = step_from(cursor_, i, nshards);
        FFQ_CHECK_YIELD();  // scheduling point: one steal-scan probe
        const std::int64_t sz = fab_->shard(s).approx_size();
        if (sz > best_size) {
          best_size = sz;
          best = s;
        }
      }
      if (best_size > 0) {
        FFQ_CHECK_YIELD();  // window: the target may drain before we claim
        n = fab_->shard(best).try_dequeue_bulk(out, want);
        if (n > 0) {
          cursor_ = best;  // keep draining the stolen shard next visit
          fab_->tel_.on_steal();
          fab_->trc_.on_steal(static_cast<std::int64_t>(best));
          fab_->tel_.on_drain(n);
          return n;
        }
        fab_->tel_.on_empty_poll();
      }
      advance();
      fab_->tel_.on_empty_sweep();
      fab_->trc_.on_empty_sweep();
      return 0;
    }

    /// Ordered fan-in: keep one pending item per shard, emit the minimum
    /// epoch among them. Per-producer FIFO is structural (slots refill in
    /// shard order); cross-shard order is exact for co-held items.
    bool try_dequeue_ordered(T& out) noexcept {
      bool any = false;
      std::size_t min_s = 0;
      std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t s = 0; s < held_.size(); ++s) {
        if (!held_[s]) {
          FFQ_CHECK_YIELD();  // scheduling point: one refill probe
          detail::stamped<T> tmp{};
          if (fab_->shard(s).try_dequeue(tmp)) {
            held_[s].emplace(std::move(tmp));
          } else {
            fab_->tel_.on_empty_poll();
          }
        }
        if (held_[s] && held_[s]->epoch < min_epoch) {
          min_epoch = held_[s]->epoch;
          min_s = s;
          any = true;
        }
      }
      if (!any) {
        fab_->tel_.on_empty_sweep();
        fab_->trc_.on_empty_sweep();
        return false;
      }
      out = std::move(held_[min_s]->value);
      held_[min_s].reset();
      fab_->tel_.on_drain(1);
      return true;
    }

    void advance() noexcept {
      cursor_ = step_from(cursor_, 1, fab_->shards_.size());
    }
    static std::size_t step_from(std::size_t s, std::size_t by,
                                 std::size_t n) noexcept {
      return (s + by) % n;
    }

    fabric* fab_;
    std::size_t cursor_;
    /// Ordered mode only: the merge's per-shard pending item.
    std::vector<std::optional<detail::stamped<T>>> held_;
  };

  /// New consumer endpoint; start cursors rotate so concurrent consumers
  /// spread over shards instead of convoying on shard 0.
  consumer_handle consumer() noexcept { return consumer_handle(this); }

  // --- lifecycle / introspection ------------------------------------------

  /// Close every shard at its current tail. Same precondition as the
  /// scalar queues: every producer's last enqueue has returned.
  void close() noexcept {
    closed_.store(true, std::memory_order_release);
    for (auto& s : shards_) s->close();
  }

  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  std::size_t shards() const noexcept { return shards_.size(); }
  std::size_t shard_capacity() const noexcept { return shard_capacity_; }

  shard_type& shard(std::size_t s) noexcept { return *shards_[s]; }
  const shard_type& shard(std::size_t s) const noexcept { return *shards_[s]; }

  /// Racy size estimate across all shards (monitoring only).
  std::int64_t approx_size() const noexcept {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s->approx_size();
    return total;
  }

  /// The advisory placement plan ({} when placement_policy::none).
  const placement_plan& placement() const noexcept { return plan_; }

  /// Shard `p`'s CPU group, or nullptr without a plan.
  const ffq::runtime::group_placement* placement_of(
      std::size_t p) const noexcept {
    return p < plan_.groups.size() ? &plan_.groups[p] : nullptr;
  }

  /// The scheduler's counter block (empty under the disabled policy).
  const ffq::telemetry::fabric_counters<Telemetry>& telemetry()
      const noexcept {
    return tel_;
  }

 private:
  friend class producer_handle;
  friend class consumer_handle;

  using epoch_type =
      std::conditional_t<Ordered, detail::epoch_clock, detail::no_epoch>;

  std::size_t shard_capacity_;
  options opts_;
  std::vector<std::unique_ptr<shard_type>> shards_;
  placement_plan plan_;
  std::atomic<std::uint64_t> next_consumer_{0};
  std::atomic<bool> closed_{false};
  // Ordered mode's shared epoch clock; empty (and address-free) when
  // unordered, so the two modes otherwise share one layout.
  [[no_unique_address]] epoch_type epoch_;
  // Scheduler counters / trace hooks: empty under the disabled policies
  // (mirror static_asserts in tests/test_shard.cpp).
  [[no_unique_address]] ffq::telemetry::fabric_counters<Telemetry> tel_;
  [[no_unique_address]] ffq::trace::queue_tracer<Trace> trc_{kName};
};

}  // namespace ffq::shard
