// placement.hpp — shard → CPU placement for the shard fabric.
//
// The fabric gives each producer its own FFQ^s shard; where that shard's
// producer and the draining consumers run decides whether the fan-in is
// cache-friendly (paper §IV-B: the affinity experiments). Rather than
// invent a new policy language, shard placement *reuses* the runtime
// layer: `runtime::placement_policy` names the strategy and
// `runtime::plan_placement` computes one producer/consumer CPU group per
// shard, exactly as the paper benchmarks place their producer groups.
//
// The plan is advisory: the fabric records it and exposes it per shard;
// callers (benches, services) pin their producer and consumer threads
// with `runtime::pin_self_to`. On NUMA machines the shard's cell array is
// first-touched by whichever thread constructs the fabric — construct it
// from a thread already pinned to the producer's node (or use one fabric
// per node) to keep shard storage node-local.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ffq/runtime/affinity.hpp"
#include "ffq/runtime/topology.hpp"

namespace ffq::shard {

/// One CPU group per shard (producer CPUs + consumer CPUs), plus the
/// policy and topology summary it was derived from.
struct placement_plan {
  ffq::runtime::placement_policy policy =
      ffq::runtime::placement_policy::none;
  std::vector<ffq::runtime::group_placement> groups;  ///< one per shard

  bool empty() const noexcept { return groups.empty(); }

  /// Human-readable one-line summary ("policy=sibling_ht shards=4 ...")
  /// for benchmark headers and reports.
  std::string summary() const;
};

/// Compute a placement plan for `shards` producer shards under `policy`
/// on `topo`. `policy == none` yields an empty (advisory-only) plan.
placement_plan plan_shards(const ffq::runtime::cpu_topology& topo,
                           ffq::runtime::placement_policy policy,
                           std::size_t shards);

/// Convenience: discover the topology, then plan.
placement_plan plan_shards(ffq::runtime::placement_policy policy,
                           std::size_t shards);

}  // namespace ffq::shard
