// world.hpp — state-machine model of FFQ executions for exhaustive
// interleaving checking.
//
// The real queues run on hardware atomics and cannot be stepped
// deterministically; this module models Algorithms 1 and 2 as explicit
// state machines in which every shared-memory action (one load, one
// store, one fetch-and-add, one double-word CAS) is a single atomic
// *step*. The checker (checker.hpp) then explores every interleaving of
// those steps for small configurations and validates:
//   * exactly-once delivery (no lost, duplicated, or uninitialized item),
//   * per-consumer FIFO order,
//   * absence of deadlock (some thread can always change the state).
//
// Because the model follows the paper's pseudo-code line by line, the
// checker doubles as a machine-checked argument for the subtle details
// the paper calls out — each has a "mutation" switch that disables it,
// and tests assert the checker then finds a violation (see
// ffq_alg1.hpp / ffq_alg2.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ffq::model {

/// A modelled queue cell. Values mirror the implementation: rank -1 =
/// free, -2 = reserved by an MPMC producer; data 0 = never written.
struct cell_m {
  int rank = -1;
  int gap = -1;
  int data = 0;
};

class world;

/// One modelled thread: a program counter plus local registers. step()
/// performs exactly one shared-memory action (or a purely local
/// transition) and returns.
class thread_m {
 public:
  virtual ~thread_m() = default;

  virtual bool done() const = 0;

  /// Perform one atomic step against the shared state.
  virtual void step(world& w) = 0;

  /// Append this thread's full local state to the encoding.
  virtual void encode(std::vector<int>& out) const = 0;

  virtual std::unique_ptr<thread_m> clone() const = 0;
};

/// The shared state plus all threads: one node of the execution graph.
class world {
 public:
  world(std::size_t cells, int num_values)
      : cells_(cells),
        consumed_count_(static_cast<std::size_t>(num_values) + 1, 0) {}

  /// Sharded world (model/shard_sched.hpp): `shards` equal cell segments
  /// of `shard_cells` cells each, with per-shard head/tail indices.
  static world sharded(std::size_t shards, std::size_t shard_cells,
                       int num_values) {
    world w(shards * shard_cells, num_values);
    w.shard_cells_ = shard_cells;
    w.shard_heads_.assign(shards, 0);
    w.shard_tails_.assign(shards, 0);
    return w;
  }

  world(const world& o)
      : cells_(o.cells_),
        head_(o.head_),
        tail_(o.tail_),
        shard_cells_(o.shard_cells_),
        shard_heads_(o.shard_heads_),
        shard_tails_(o.shard_tails_),
        producer_ranges_(o.producer_ranges_),
        consumed_count_(o.consumed_count_),
        violation_(o.violation_),
        gaps_announced_(o.gaps_announced_),
        published_ranks_(o.published_ranks_),
        taken_ranks_(o.taken_ranks_),
        skipped_ranks_(o.skipped_ranks_) {
    threads_.reserve(o.threads_.size());
    for (const auto& t : o.threads_) threads_.push_back(t->clone());
  }

  world& operator=(const world&) = delete;

  // --- shared memory ----------------------------------------------------
  std::vector<cell_m> cells_;
  int head_ = 0;
  int tail_ = 0;  ///< shared in the MPMC model; producer-owned in SPMC

  // Sharded mode (shard_cells_ > 0): the cell array is partitioned into
  // equal per-shard segments and ranks are namespaced per shard — shard
  // s's local rank r appears everywhere (cells, monitors) as the global
  // rank s * kShardRankStride + r. slot() maps a namespaced rank into
  // its shard's segment, so the gap-accounting monitor's slot/rank
  // comparisons stay exact: ranks from different shards never share a
  // slot, and ranks within a shard compare in shard order.
  static constexpr int kShardRankStride = 1 << 12;
  std::size_t shard_cells_ = 0;
  std::vector<int> shard_heads_;  ///< local (un-namespaced) per-shard heads
  std::vector<int> shard_tails_;  ///< local per-shard tails, producer-owned

  std::size_t slot(int rank) const {
    if (shard_cells_ > 0) {
      const auto s = static_cast<std::size_t>(rank) /
                     static_cast<std::size_t>(kShardRankStride);
      const auto r = static_cast<std::size_t>(rank) %
                     static_cast<std::size_t>(kShardRankStride);
      return s * shard_cells_ + r % shard_cells_;
    }
    return static_cast<std::size_t>(rank) % cells_.size();
  }

  // --- threads ------------------------------------------------------------
  std::vector<std::unique_ptr<thread_m>> threads_;

  bool all_done() const {
    for (const auto& t : threads_) {
      if (!t->done()) return false;
    }
    return true;
  }

  /// Inclusive value intervals per producer, for the per-producer FIFO
  /// monitor (values within one producer's interval must be consumed in
  /// increasing order by any single consumer).
  std::vector<std::pair<int, int>> producer_ranges_;

  int producer_of(int value) const {
    for (std::size_t p = 0; p < producer_ranges_.size(); ++p) {
      if (value >= producer_ranges_[p].first && value <= producer_ranges_[p].second) {
        return static_cast<int>(p);
      }
    }
    return -1;
  }

  // --- incremental invariants ----------------------------------------------
  // Monitors (consumed_count_, violation_) are deliberately NOT part of
  // encode(): they are functions of the execution history, not of future
  // behaviour, and including them multiplies equivalent states. A
  // violation aborts the search on the edge where it occurs, before the
  // state would be interned.

  /// Record a consumed value; flags duplicates and uninitialized reads.
  void record_consume(int value) {
    if (value <= 0 || value >= static_cast<int>(consumed_count_.size())) {
      violation_ = "consumed uninitialized or out-of-range value " +
                   std::to_string(value);
      return;
    }
    if (++consumed_count_[static_cast<std::size_t>(value)] > 1) {
      violation_ = "value " + std::to_string(value) + " consumed twice";
    }
  }

  std::vector<int> consumed_count_;
  std::string violation_;  ///< empty = no safety violation so far

  // --- gap-accounting monitor ---------------------------------------------
  // Execution-history logs (like consumed_count_, not encoded): every gap
  // the producer side announced, every rank a consumer took, every rank a
  // consumer skipped. check_gap_accounting() validates the protocol's
  // bookkeeping at a terminal state: a consumer may abandon a rank only
  // if a gap covering it was announced at that rank's cell, and a rank
  // that was announced as a gap can never also deliver an item.
  std::vector<int> gaps_announced_;
  std::vector<int> published_ranks_;
  std::vector<int> taken_ranks_;
  std::vector<int> skipped_ranks_;

  void record_gap(int rank) { gaps_announced_.push_back(rank); }

  /// A producer published an item at `rank`. Publishing at a rank some
  /// consumer has already abandoned is the paper's "enqueue in the past"
  /// — the item can never be delivered; flag it immediately.
  void record_publish(int rank) {
    published_ranks_.push_back(rank);
    if (violation_.empty()) {
      for (int s : skipped_ranks_) {
        if (s == rank) {
          violation_ = "gap-accounting: item published at rank " +
                       std::to_string(rank) +
                       " after a consumer already skipped it (enqueue in "
                       "the past)";
          return;
        }
      }
    }
  }

  void record_taken_rank(int rank) { taken_ranks_.push_back(rank); }

  /// A consumer abandoned `rank`. Every rank has a unique fate (each tail
  /// value becomes either a gap or a publication, never both, and a
  /// published rank is owned by exactly one consumer), so skipping a rank
  /// that holds a published item is an immediate loss — flagged here as a
  /// safety violation so the explorer gets a witness schedule.
  void record_skip(int rank) {
    skipped_ranks_.push_back(rank);
    if (violation_.empty()) {
      for (int p : published_ranks_) {
        if (p == rank) {
          violation_ = "gap-accounting: rank " + std::to_string(rank) +
                       " skipped by a consumer but holds a published item";
          return;
        }
      }
    }
  }

  /// Empty string = accounting consistent; otherwise a description of the
  /// first inconsistency. Meaningful at any point, exact at terminals.
  std::string check_gap_accounting() const {
    for (int s : skipped_ranks_) {
      bool covered = false;
      for (int g : gaps_announced_) {
        if (slot(g) == slot(s) && g >= s) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return "gap-accounting: rank " + std::to_string(s) +
               " skipped by a consumer but no announced gap covers it";
      }
    }
    for (int t : taken_ranks_) {
      for (int g : gaps_announced_) {
        if (g == t) {
          return "gap-accounting: rank " + std::to_string(t) +
                 " both announced as a gap and consumed";
        }
      }
    }
    return {};
  }

  /// Canonical encoding of the full state (shared memory + every
  /// thread's local state) for the visited set.
  std::string encode() const {
    std::vector<int> v;
    v.reserve(cells_.size() * 3 + 8 + threads_.size() * 8);
    for (const auto& c : cells_) {
      v.push_back(c.rank);
      v.push_back(c.gap);
      v.push_back(c.data);
    }
    v.push_back(head_);
    v.push_back(tail_);
    for (int h : shard_heads_) v.push_back(h);
    for (int t : shard_tails_) v.push_back(t);
    for (const auto& t : threads_) t->encode(v);
    return std::string(reinterpret_cast<const char*>(v.data()),
                       v.size() * sizeof(int));
  }
};

}  // namespace ffq::model
