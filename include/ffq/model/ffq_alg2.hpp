// ffq_alg2.hpp — step-machine model of Algorithm 2 (FFQ^m producers).
//
// Consumers are shared with Algorithm 1 (alg1_consumer): the dequeue
// protocol is identical, and a -2 reservation simply fails both the
// rank and gap comparisons, i.e. "producer still writing — back off".
//
// Mutations (paper §III-B explains why each safeguard exists; tests
// prove the checker finds the bug when it is removed):
//   * alg2_mutation::claim_publishes_directly — skip the -2 reservation:
//     CAS rank straight from -1 to the final rank and write data
//     afterwards. A consumer can read the cell between the two steps and
//     consume uninitialized data (the producer/consumer race that
//     motivates the "-2" in the paper).
//   * alg2_mutation::gap_ignores_rank — announce gaps with a single-word
//     update of `gap` that does not validate `rank`. This re-enables the
//     "enqueue in the past" scenario: a producer can deposit an item at
//     a rank consumers have already skipped, losing it forever.
//   * alg2_mutation::claim_ignores_gap — claim free cells validating
//     only rank == -1, not gap. A concurrent gap announcement covering
//     our rank then slips in under the claim and the item is again
//     enqueued in the past.
#pragma once

#include <memory>
#include <vector>

#include "ffq/model/ffq_alg1.hpp"
#include "ffq/model/world.hpp"

namespace ffq::model {

enum class alg2_mutation {
  none,
  claim_publishes_directly,
  gap_ignores_rank,
  claim_ignores_gap,
  /// Re-introduces the full-ring-throttle deadlock the checker found in
  /// this repository's own MPMC implementation: waiting at an occupied
  /// cell even when it holds a LATER rank than ours (a consumer can then
  /// be parked on our rank forever). Kept as a regression memorial.
  throttle_ignores_rank_order,
};

/// One MPMC producer: enqueues values first..first+count-1; world::tail_
/// is the shared fetch-and-add counter.
class alg2_producer : public thread_m {
 public:
  alg2_producer(int first, int count, alg2_mutation mut = alg2_mutation::none)
      : next_(first), last_(first + count - 1), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    switch (pc_) {
      case pc::faa_tail: {
        rank_ = w.tail_;  // fetch-and-increment: one RMW
        w.tail_ += 1;
        pc_ = pc::load_gap;
        break;
      }
      case pc::load_gap: {
        g_ = w.cells_[w.slot(rank_)].gap;  // one load
        // gap >= rank: the rank is already in the past — abandon it.
        pc_ = g_ >= rank_ ? pc::faa_tail : pc::load_rank;
        break;
      }
      case pc::load_rank: {
        r_ = w.cells_[w.slot(rank_)].rank;  // one load
        if (r_ >= 0) {
          // Same full-ring throttle as the implementation (and as the
          // Alg. 1 model): after one sweep's worth of gap announcements
          // within an enqueue, wait at the current cell instead of
          // burning more ranks (bounds the model's state space).
          //
          // The wait is sound only while the cell holds an OLDER rank;
          // if a later rank already sits here, a consumer may be parked
          // on ours and the gap must be announced. The checker found the
          // deadlock when this condition was missing — the implementation
          // carries the same fix (core/mpmc.hpp).
          const bool wait_ok =
              mut_ == alg2_mutation::throttle_ignores_rank_order || r_ < rank_;
          pc_ = (gaps_this_call_ >= static_cast<int>(w.cells_.size()) && wait_ok)
                    ? pc::load_gap
                    : pc::gap_dwcas;
        } else if (r_ == -1) {
          pc_ = pc::claim_dwcas;
        } else {  // -2: another producer is mid-write; re-examine
          pc_ = pc::load_gap;
        }
        break;
      }
      case pc::gap_dwcas: {
        cell_m& c = w.cells_[w.slot(rank_)];
        const bool rank_ok =
            mut_ == alg2_mutation::gap_ignores_rank || c.rank == r_;
        if (rank_ok && c.gap == g_) {  // one DWCAS
          c.gap = rank_;
          w.record_gap(rank_);
          ++gaps_this_call_;
          pc_ = pc::faa_tail;  // gap announced; acquire a fresh rank
        } else {
          pc_ = pc::load_gap;  // contention: re-examine the cell
        }
        break;
      }
      case pc::claim_dwcas: {
        cell_m& c = w.cells_[w.slot(rank_)];
        const bool gap_ok =
            mut_ == alg2_mutation::claim_ignores_gap || c.gap == g_;
        if (c.rank == -1 && gap_ok) {  // one DWCAS
          if (mut_ == alg2_mutation::claim_publishes_directly) {
            c.rank = rank_;  // MUTATION: publish before the data exists
            w.record_publish(rank_);
            pc_ = pc::store_data_late;
          } else {
            c.rank = -2;  // reserve
            pc_ = pc::store_data;
          }
        } else {
          pc_ = pc::load_gap;
        }
        break;
      }
      case pc::store_data: {
        w.cells_[w.slot(rank_)].data = next_;  // one store
        pc_ = pc::publish;
        break;
      }
      case pc::store_data_late: {
        w.cells_[w.slot(rank_)].data = next_;
        advance_item();
        break;
      }
      case pc::publish: {
        w.cells_[w.slot(rank_)].rank = rank_;  // linearization store
        w.record_publish(rank_);
        advance_item();
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(next_);
    out.push_back(rank_);
    out.push_back(g_);
    out.push_back(r_);
    out.push_back(gaps_this_call_);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<alg2_producer>(*this);
  }

 private:
  enum class pc {
    faa_tail,
    load_gap,
    load_rank,
    gap_dwcas,
    claim_dwcas,
    store_data,
    store_data_late,
    publish,
    finished
  };

  void advance_item() {
    gaps_this_call_ = 0;
    if (next_ == last_) {
      pc_ = pc::finished;
    } else {
      ++next_;
      pc_ = pc::faa_tail;
    }
  }

  pc pc_ = pc::faa_tail;
  int next_;
  int last_;
  int rank_ = -1;
  int g_ = -1;
  int r_ = -1;
  int gaps_this_call_ = 0;
  alg2_mutation mut_;
};

}  // namespace ffq::model
