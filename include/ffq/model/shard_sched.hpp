// shard_sched.hpp — step-machine model of the shard fabric's consumer
// scheduler (ffq::shard::fabric, DESIGN.md §11).
//
// The fabric's producer side is Algorithm 1 verbatim (one shard per
// producer), so the producer machine here is alg1_producer re-targeted at
// a shard segment of a sharded world (world::sharded): private tail in
// shard_tails_[s], ranks namespaced via world::kShardRankStride. What is
// genuinely new — and what this model exists to check — is the consumer
// scheduler: the round-robin cursor visit with its non-committal
// emptiness check, the quota-bounded bulk claim, the steal scan over the
// other shards' approximate sizes, and the steal claim against a shard
// whose size estimate may be stale by claim time. Each shared-memory
// access is one step, mirroring the FFQ_CHECK_YIELD sites in shard.hpp.
//
// Modeling choices:
//   * approx_size (one tail load + one head load in the implementation)
//     is coarsened to a single step per probed shard — the probe is
//     read-only and its only role is steering, so splitting it doubles
//     scan states without exposing new protocol behaviour;
//   * the claim's fetch-and-add bounds its take by the head value the
//     RMW itself observes (k = min(batch, tail_seen - head_now)). The
//     implementation can overshoot a stale tail when consumers race and
//     resolves the overshot ranks via close(); the model has no close
//     protocol, so bounding at the RMW keeps every claimed rank
//     eventually publishable and the liveness phase meaningful for the
//     scheduler itself. The stale-head pre-check race (another consumer
//     draining the shard between the emptiness check and the claim) is
//     still fully explored.
//
// Mutations: the machines accept the alg1 mutations
// (producer_mutation::publish_before_data,
// consumer_mutation::skip_line29_recheck), and the checker proves a
// *differential* property about them: both races are MASKED in the
// scheduler. Because the shared tail is stored only after the cell is
// fully published (and gaps become tail-visible only with the next
// publication), every rank inside a tail-bounded claim is already
// decided when claimed — the §III-A consumer race and the data/rank
// store order are unobservable through the scheduler's bulk path. The
// same mutations ARE caught by the scalar alg1 models (whose committal
// fetch-and-add reaches undecided ranks), so tests assert the pair:
// flagged on --model spmc, clean on --model shard. The scalar paths
// remain reachable on a live fabric (ordered-mode refill, a scalar
// consumer sharing a shard); the masking claim is about the unordered
// scheduler only.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "ffq/model/ffq_alg1.hpp"
#include "ffq/model/world.hpp"

namespace ffq::model {

/// Single producer of Algorithm 1 driving shard `s` of a sharded world:
/// enqueues values first..first+count-1 into its own segment. Tail is
/// producer-private (shard_tails_[s] is published for size probes but
/// only this thread writes it).
class shard_producer : public thread_m {
 public:
  shard_producer(int s, int first, int count,
                 producer_mutation mut = producer_mutation::none)
      : s_(s), next_(first), last_(first + count - 1), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    const int lt = w.shard_tails_[static_cast<std::size_t>(s_)];
    const int nrank = s_ * world::kShardRankStride + lt;
    switch (pc_) {
      case pc::load_rank: {
        const int r = w.cells_[w.slot(nrank)].rank;  // one load
        if (r >= 0) {
          pc_ = consec_gaps_ >= static_cast<int>(w.shard_cells_)
                    ? pc::load_rank  // full fruitless sweep: wait in place
                    : pc::announce_gap;
        } else {
          consec_gaps_ = 0;
          pc_ = pc::store_data;
        }
        break;
      }
      case pc::announce_gap: {
        w.cells_[w.slot(nrank)].gap = nrank;  // one store (+ tail bump)
        w.record_gap(nrank);
        w.shard_tails_[static_cast<std::size_t>(s_)] = lt + 1;
        ++consec_gaps_;
        pc_ = pc::load_rank;
        break;
      }
      case pc::store_data: {
        if (mut_ == producer_mutation::publish_before_data) {
          w.cells_[w.slot(nrank)].rank = nrank;  // MUTATION: publish first
          w.record_publish(nrank);
          pc_ = pc::store_data_late;
        } else {
          w.cells_[w.slot(nrank)].data = next_;  // one store
          pc_ = pc::publish;
        }
        break;
      }
      case pc::store_data_late: {
        w.cells_[w.slot(nrank)].data = next_;
        w.shard_tails_[static_cast<std::size_t>(s_)] = lt + 1;
        advance_item();
        break;
      }
      case pc::publish: {
        w.cells_[w.slot(nrank)].rank = nrank;  // linearization store
        w.record_publish(nrank);
        w.shard_tails_[static_cast<std::size_t>(s_)] = lt + 1;
        advance_item();
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(next_);
    out.push_back(consec_gaps_);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<shard_producer>(*this);
  }

 private:
  enum class pc {
    load_rank,
    announce_gap,
    store_data,
    store_data_late,
    publish,
    finished
  };

  void advance_item() {
    if (next_ == last_) {
      pc_ = pc::finished;
    } else {
      ++next_;
      pc_ = pc::load_rank;
    }
  }

  pc pc_ = pc::load_rank;
  int s_;
  int next_;
  int last_;
  int consec_gaps_ = 0;
  producer_mutation mut_;
};

/// Consumer running the fabric's shard scheduler with a fixed total
/// quota: visit the cursor's shard (non-committal emptiness check, then a
/// batch-bounded claim), resolve the claimed run with the Algorithm 1
/// cell protocol, steal from the largest other shard when the cursor's
/// shard is dry, and advance the cursor when a visit under-fills.
class shard_consumer : public thread_m {
 public:
  shard_consumer(int start_cursor, int quota, int batch,
                 consumer_mutation mut = consumer_mutation::none)
      : cursor_(start_cursor), quota_(quota), batch_(batch), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    const int nshards = static_cast<int>(w.shard_heads_.size());
    switch (pc_) {
      case pc::visit_load_tail: {
        active_ = cursor_;
        t_ = w.shard_tails_[static_cast<std::size_t>(active_)];  // one load
        pc_ = pc::visit_load_head;
        break;
      }
      case pc::visit_load_head: {
        h0_ = w.shard_heads_[static_cast<std::size_t>(active_)];  // one load
        // Non-committal: nothing published at probe time claims no rank.
        pc_ = t_ - h0_ <= 0 ? pc::scan_begin : pc::claim;
        break;
      }
      case pc::claim: {
        // Fetch-and-add on the shard head: one RMW. The take is bounded
        // by the head the RMW observes (see header: overshoot past t_ is
        // resolved by close() in the implementation, unmodeled here).
        const int h = w.shard_heads_[static_cast<std::size_t>(active_)];
        const int avail = t_ - h;
        if (avail <= 0) {
          // A racing consumer drained the shard after our emptiness
          // check — the stale-head race, fully explored.
          pc_ = pc::scan_begin;
          break;
        }
        claimed_ = std::min({batch_, avail, quota_ - taken_});
        w.shard_heads_[static_cast<std::size_t>(active_)] = h + claimed_;
        rank_ = active_ * world::kShardRankStride + h;
        end_ = rank_ + claimed_;
        pc_ = pc::check_rank;
        break;
      }
      case pc::check_rank: {
        const int r = w.cells_[w.slot(rank_)].rank;  // one load
        pc_ = r == rank_ ? pc::read_data : pc::check_gap;
        break;
      }
      case pc::read_data: {
        val_ = w.cells_[w.slot(rank_)].data;  // one load
        pc_ = pc::release_cell;
        break;
      }
      case pc::release_cell: {
        w.cells_[w.slot(rank_)].rank = -1;  // linearization store
        w.record_consume(val_);
        w.record_taken_rank(rank_);
        const int p = w.producer_of(val_);
        if (p >= 0) {
          if (static_cast<std::size_t>(p) >= last_from_.size()) {
            last_from_.resize(static_cast<std::size_t>(p) + 1, 0);
          }
          if (val_ <= last_from_[static_cast<std::size_t>(p)]) {
            w.violation_ = "per-producer FIFO violated: saw " +
                           std::to_string(val_) + " after " +
                           std::to_string(last_from_[static_cast<std::size_t>(p)]);
          }
          last_from_[static_cast<std::size_t>(p)] = val_;
        }
        ++taken_;
        advance_rank(nshards);
        break;
      }
      case pc::check_gap: {
        const int g = w.cells_[w.slot(rank_)].gap;  // one load
        if (g >= rank_) {
          if (mut_ == consumer_mutation::skip_line29_recheck) {
            w.record_skip(rank_);  // MUTATION: drop without the re-check
            advance_rank(nshards);
          } else {
            pc_ = pc::recheck_rank;
          }
        } else {
          pc_ = pc::check_rank;  // back off and re-examine (spin)
        }
        break;
      }
      case pc::recheck_rank: {
        const int r = w.cells_[w.slot(rank_)].rank;  // one load
        if (r != rank_) {
          w.record_skip(rank_);
          advance_rank(nshards);  // truly skipped: drop in place
        } else {
          pc_ = pc::check_rank;
        }
        break;
      }
      case pc::scan_begin: {
        // Local transition into the steal scan (no shared access — the
        // implementation's empty-poll bookkeeping).
        scan_i_ = 1;
        best_ = -1;
        best_sz_ = 0;
        pc_ = nshards > 1 ? pc::scan_probe : pc::visit_load_tail;
        if (nshards <= 1) cursor_ = 0;
        break;
      }
      case pc::scan_probe: {
        // approx_size of one shard: coarsened to a single step (see
        // header). Steering only — never claims.
        const int s = (cursor_ + scan_i_) % nshards;
        const int sz = w.shard_tails_[static_cast<std::size_t>(s)] -
                       w.shard_heads_[static_cast<std::size_t>(s)];
        if (sz > best_sz_) {
          best_sz_ = sz;
          best_ = s;
        }
        ++scan_i_;
        if (scan_i_ < nshards) break;
        if (best_sz_ > 0) {
          pc_ = pc::steal_load_tail;
        } else {
          cursor_ = (cursor_ + 1) % nshards;  // empty sweep: move on
          pc_ = pc::visit_load_tail;
        }
        break;
      }
      case pc::steal_load_tail: {
        active_ = best_;
        t_ = w.shard_tails_[static_cast<std::size_t>(active_)];  // one load
        pc_ = pc::steal_claim;
        break;
      }
      case pc::steal_claim: {
        // Same bounded RMW as claim; the target may have drained since
        // the size probe (stale-steal race, fully explored).
        const int h = w.shard_heads_[static_cast<std::size_t>(active_)];
        const int avail = t_ - h;
        if (avail <= 0) {
          cursor_ = (cursor_ + 1) % nshards;
          pc_ = pc::visit_load_tail;
          break;
        }
        claimed_ = std::min({batch_, avail, quota_ - taken_});
        w.shard_heads_[static_cast<std::size_t>(active_)] = h + claimed_;
        rank_ = active_ * world::kShardRankStride + h;
        end_ = rank_ + claimed_;
        cursor_ = active_;  // keep draining the stolen shard next visit
        pc_ = pc::check_rank;
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(cursor_);
    out.push_back(active_);
    out.push_back(t_);
    out.push_back(h0_);
    out.push_back(rank_);
    out.push_back(end_);
    out.push_back(val_);
    out.push_back(taken_);
    out.push_back(claimed_);
    out.push_back(scan_i_);
    out.push_back(best_);
    out.push_back(best_sz_);
    for (int v : last_from_) out.push_back(v);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<shard_consumer>(*this);
  }

  int taken() const { return taken_; }

 private:
  enum class pc {
    visit_load_tail,
    visit_load_head,
    claim,
    check_rank,
    read_data,
    release_cell,
    check_gap,
    recheck_rank,
    scan_begin,
    scan_probe,
    steal_load_tail,
    steal_claim,
    finished
  };

  /// A rank in the claimed run is decided: next rank, or end the visit —
  /// an under-filled visit advances the round-robin cursor.
  void advance_rank(int nshards) {
    ++rank_;
    if (rank_ != end_) {
      pc_ = pc::check_rank;
    } else if (taken_ == quota_) {
      pc_ = pc::finished;
    } else {
      if (claimed_ < batch_) cursor_ = (cursor_ + 1) % nshards;
      pc_ = pc::visit_load_tail;
    }
  }

  pc pc_ = pc::visit_load_tail;
  int cursor_;
  int active_ = 0;
  int t_ = 0;
  int h0_ = 0;
  int rank_ = -1;
  int end_ = -1;
  int val_ = 0;
  int taken_ = 0;
  int claimed_ = 0;
  int scan_i_ = 0;
  int best_ = -1;
  int best_sz_ = 0;
  int quota_;
  int batch_;
  consumer_mutation mut_;
  std::vector<int> last_from_;  ///< FIFO monitor: last value per producer
};

}  // namespace ffq::model
