// checker.hpp — exhaustive interleaving exploration over a modelled
// world.
//
// Phase 1 (safety): breadth-first enumeration of every reachable state
// under every scheduling of thread steps. Safety violations (duplicate
// consumption, uninitialized reads — recorded by world::record_consume)
// stop the search immediately.
//
// Phase 2 (liveness): on the full reachable graph, every state must be
// able to reach a terminal state (all threads done). A state from which
// no completion is reachable means some schedule lost an item or wedged
// the protocol — precisely the failure mode of the "lost update" /
// "enqueue in the past" races of paper §III-B and the line-29 re-check
// of §III-A.
#pragma once

#include <cstddef>
#include <string>

#include "ffq/model/world.hpp"

namespace ffq::model {

struct check_result {
  bool ok = false;
  std::string violation;        ///< empty when ok
  std::size_t states = 0;       ///< distinct states explored
  std::size_t transitions = 0;  ///< edges taken
  std::size_t terminals = 0;    ///< completed-execution states
  bool exhausted = true;        ///< false if max_states was hit
};

/// Explore every interleaving from `initial`. `max_states` bounds the
/// search; hitting the bound reports exhausted=false (and skips the
/// liveness phase, which would be unsound on a truncated graph).
check_result check(const world& initial, std::size_t max_states = 2'000'000);

}  // namespace ffq::model
