// ffq_alg1.hpp — step-machine model of Algorithm 1 (FFQ^s).
//
// Every pc transition performs at most one shared-memory access, so the
// checker's interleavings are exactly the architectural interleavings of
// the pseudo-code (under SC; the implementation's acquire/release pairs
// reconstruct SC for this communication pattern).
//
// Mutations (each reverts a detail the paper argues is necessary; tests
// prove the checker flags the resulting bug):
//   * consumer_mutation::skip_line29_recheck — drop the "cell.rank ≠
//     rank" re-check after observing gap ≥ rank (§III-A: the producer
//     might have inserted the expected element before announcing a later
//     gap; skipping it loses the item).
//   * producer_mutation::publish_before_data — swap lines 16/17: publish
//     the rank before storing data ("the order of the two operations is
//     important"); a consumer can then read uninitialized data.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "ffq/model/world.hpp"

namespace ffq::model {

enum class producer_mutation { none, publish_before_data };
enum class consumer_mutation { none, skip_line29_recheck };

/// Single producer of Algorithm 1: enqueues values first..first+count-1.
/// `tail` lives in world::tail_ but is producer-private (consumers never
/// read it), so combining a cell store with the tail increment in one
/// step does not hide any observable interleaving.
class alg1_producer : public thread_m {
 public:
  alg1_producer(int first, int count, producer_mutation mut = producer_mutation::none)
      : next_(first), last_(first + count - 1), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    switch (pc_) {
      case pc::load_rank: {
        const int r = w.cells_[w.slot(w.tail_)].rank;  // one load
        if (r >= 0) {
          // Occupied. The shipped implementation (and this model — the
          // verbatim pseudo-code would grow `tail` without bound while
          // the ring is full, making the state space infinite) stops
          // announcing gaps after one full fruitless sweep and waits for
          // the current cell to drain.
          pc_ = consec_gaps_ >= static_cast<int>(w.cells_.size())
                    ? pc::load_rank  // spin in place (self-loop state)
                    : pc::announce_gap;
        } else {
          consec_gaps_ = 0;
          pc_ = pc::store_data;
        }
        break;
      }
      case pc::announce_gap: {
        cell_m& c = w.cells_[w.slot(w.tail_)];
        c.gap = w.tail_;  // one store (+ private tail bump)
        w.record_gap(w.tail_);
        w.tail_ += 1;
        ++consec_gaps_;
        pc_ = pc::load_rank;
        break;
      }
      case pc::store_data: {
        if (mut_ == producer_mutation::publish_before_data) {
          // MUTATION: publish first (wrong), write data after.
          w.cells_[w.slot(w.tail_)].rank = w.tail_;
          w.record_publish(w.tail_);
          pc_ = pc::store_data_late;
        } else {
          w.cells_[w.slot(w.tail_)].data = next_;  // one store
          pc_ = pc::publish;
        }
        break;
      }
      case pc::store_data_late: {
        w.cells_[w.slot(w.tail_)].data = next_;
        w.tail_ += 1;
        advance_item();
        break;
      }
      case pc::publish: {
        w.cells_[w.slot(w.tail_)].rank = w.tail_;  // linearization store
        w.record_publish(w.tail_);
        w.tail_ += 1;
        advance_item();
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(next_);
    out.push_back(consec_gaps_);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<alg1_producer>(*this);
  }

 private:
  enum class pc { load_rank, announce_gap, store_data, store_data_late, publish, finished };

  void advance_item() {
    if (next_ == last_) {
      pc_ = pc::finished;
    } else {
      ++next_;
      pc_ = pc::load_rank;
    }
  }

  pc pc_ = pc::load_rank;
  int next_;
  int last_;
  int consec_gaps_ = 0;
  producer_mutation mut_;
};

/// Consumer of Algorithm 1 with a fixed dequeue quota.
class alg1_consumer : public thread_m {
 public:
  explicit alg1_consumer(int quota, consumer_mutation mut = consumer_mutation::none)
      : quota_(quota), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    switch (pc_) {
      case pc::faa_head: {
        rank_ = w.head_;  // fetch-and-increment: one RMW
        w.head_ += 1;
        pc_ = pc::check_rank;
        break;
      }
      case pc::check_rank: {
        const int r = w.cells_[w.slot(rank_)].rank;  // one load
        pc_ = r == rank_ ? pc::read_data : pc::check_gap;
        break;
      }
      case pc::read_data: {
        val_ = w.cells_[w.slot(rank_)].data;  // one load
        pc_ = pc::release_cell;
        break;
      }
      case pc::release_cell: {
        w.cells_[w.slot(rank_)].rank = -1;  // linearization store
        w.record_consume(val_);
        w.record_taken_rank(rank_);
        // Per-producer FIFO monitor: a consumer's successive values from
        // one producer must increase (ranks are drawn in order).
        const int p = w.producer_of(val_);
        if (p >= 0) {
          if (static_cast<std::size_t>(p) >= last_from_.size()) {
            last_from_.resize(static_cast<std::size_t>(p) + 1, 0);
          }
          if (val_ <= last_from_[static_cast<std::size_t>(p)]) {
            w.violation_ = "per-producer FIFO violated: saw " +
                           std::to_string(val_) + " after " +
                           std::to_string(last_from_[static_cast<std::size_t>(p)]);
          }
          last_from_[static_cast<std::size_t>(p)] = val_;
        }
        ++taken_;
        pc_ = taken_ == quota_ ? pc::finished : pc::faa_head;
        break;
      }
      case pc::check_gap: {
        const int g = w.cells_[w.slot(rank_)].gap;  // one load
        if (g >= rank_) {
          if (mut_ == consumer_mutation::skip_line29_recheck) {
            w.record_skip(rank_);  // MUTATION: no rank re-check
            pc_ = pc::faa_head;
          } else {
            pc_ = pc::recheck_rank;
          }
        } else {
          pc_ = pc::check_rank;  // back off and re-examine (spin)
        }
        break;
      }
      case pc::recheck_rank: {
        const int r = w.cells_[w.slot(rank_)].rank;  // one load
        // gap >= rank AND rank != rank  => the rank was truly skipped.
        if (r != rank_) {
          w.record_skip(rank_);
          pc_ = pc::faa_head;
        } else {
          pc_ = pc::check_rank;
        }
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(rank_);
    out.push_back(val_);
    out.push_back(taken_);
    for (int v : last_from_) out.push_back(v);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<alg1_consumer>(*this);
  }

  int taken() const { return taken_; }

 private:
  enum class pc {
    faa_head,
    check_rank,
    read_data,
    release_cell,
    check_gap,
    recheck_rank,
    finished
  };

  pc pc_ = pc::faa_head;
  int rank_ = -1;
  int val_ = 0;
  int taken_ = 0;
  int quota_;
  consumer_mutation mut_;
  std::vector<int> last_from_;  ///< FIFO monitor: last value per producer
};

/// Producer issuing enqueue_bulk(batch) (DESIGN.md §5.8). Per-cell
/// behaviour — gap announcements and data-before-rank publication — is
/// identical to alg1_producer, but the producer works against a private
/// tail register and stores the SHARED tail once per batch. Scalar
/// consumers never read the tail, so for them this is indistinguishable
/// from Algorithm 1; bulk consumers bound their run claims by the
/// published tail and fall back to single-rank claims between
/// publications. Unlike the scalar model, the tail store here is a real
/// separate shared step because bulk consumers observe it.
class alg1_bulk_producer : public thread_m {
 public:
  alg1_bulk_producer(int first, int count, int batch,
                     producer_mutation mut = producer_mutation::none)
      : next_(first), last_(first + count - 1), batch_(batch), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    switch (pc_) {
      case pc::load_rank: {
        const int r = w.cells_[w.slot(pt_)].rank;  // one load
        if (r >= 0) {
          pc_ = consec_gaps_ >= static_cast<int>(w.cells_.size())
                    ? pc::load_rank  // full fruitless sweep: wait in place
                    : pc::announce_gap;
        } else {
          consec_gaps_ = 0;
          pc_ = pc::store_data;
        }
        break;
      }
      case pc::announce_gap: {
        w.cells_[w.slot(pt_)].gap = pt_;  // one store (+ private tail bump)
        w.record_gap(pt_);
        pt_ += 1;
        ++consec_gaps_;
        pc_ = pc::load_rank;
        break;
      }
      case pc::store_data: {
        if (mut_ == producer_mutation::publish_before_data) {
          w.cells_[w.slot(pt_)].rank = pt_;  // MUTATION: publish first
          w.record_publish(pt_);
          pc_ = pc::store_data_late;
        } else {
          w.cells_[w.slot(pt_)].data = next_;  // one store
          pc_ = pc::publish;
        }
        break;
      }
      case pc::store_data_late: {
        w.cells_[w.slot(pt_)].data = next_;
        pt_ += 1;
        advance_item();
        break;
      }
      case pc::publish: {
        w.cells_[w.slot(pt_)].rank = pt_;  // per-cell publication store
        w.record_publish(pt_);
        pt_ += 1;
        advance_item();
        break;
      }
      case pc::publish_tail: {
        w.tail_ = pt_;  // ONE shared tail store per batch
        in_batch_ = 0;
        if (next_ == last_) {
          pc_ = pc::finished;
        } else {
          ++next_;
          pc_ = pc::load_rank;
        }
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(next_);
    out.push_back(pt_);
    out.push_back(in_batch_);
    out.push_back(consec_gaps_);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<alg1_bulk_producer>(*this);
  }

 private:
  enum class pc {
    load_rank,
    announce_gap,
    store_data,
    store_data_late,
    publish,
    publish_tail,
    finished
  };

  void advance_item() {
    ++in_batch_;
    if (next_ == last_ || in_batch_ == batch_) {
      pc_ = pc::publish_tail;
    } else {
      ++next_;
      pc_ = pc::load_rank;
    }
  }

  pc pc_ = pc::load_rank;
  int next_;
  int last_;
  int batch_;
  int pt_ = 0;  ///< private tail; w.tail_ lags until publish_tail
  int in_batch_ = 0;
  int consec_gaps_ = 0;
  producer_mutation mut_;
};

/// Consumer issuing dequeue_bulk(batch) with a fixed total quota. The
/// claim is modelled with the implementation's exact access sequence —
/// tail load, head load, then the head fetch-and-add — so the checker
/// explores the stale-head race where another consumer advances the head
/// between the load and the RMW. The claimed run [rank_, end_) is then
/// resolved rank by rank with the scalar cell protocol; ranks that turn
/// out to be gaps are dropped in place (no fresh fetch-and-add), which is
/// the property consumer_mutation::skip_line29_recheck breaks inside a
/// run (a just-published item in the run is silently dropped).
class alg1_bulk_consumer : public thread_m {
 public:
  alg1_bulk_consumer(int quota, int batch,
                     consumer_mutation mut = consumer_mutation::none)
      : quota_(quota), batch_(batch), mut_(mut) {}

  bool done() const override { return pc_ == pc::finished; }

  void step(world& w) override {
    switch (pc_) {
      case pc::load_tail: {
        t_ = w.tail_;  // one load (acquire in the implementation)
        pc_ = pc::load_head;
        break;
      }
      case pc::load_head: {
        h0_ = w.head_;  // one load; may be stale by claim time
        pc_ = pc::claim;
        break;
      }
      case pc::claim: {
        const int avail = t_ - h0_;
        const int k = avail > 1
                          ? std::min({batch_, avail, quota_ - taken_})
                          : 1;  // empty/near-empty: claim one and park
        rank_ = w.head_;  // fetch-and-add: one RMW
        w.head_ += k;
        end_ = rank_ + k;
        pc_ = pc::check_rank;
        break;
      }
      case pc::check_rank: {
        const int r = w.cells_[w.slot(rank_)].rank;  // one load
        pc_ = r == rank_ ? pc::read_data : pc::check_gap;
        break;
      }
      case pc::read_data: {
        val_ = w.cells_[w.slot(rank_)].data;  // one load
        pc_ = pc::release_cell;
        break;
      }
      case pc::release_cell: {
        w.cells_[w.slot(rank_)].rank = -1;  // linearization store
        w.record_consume(val_);
        w.record_taken_rank(rank_);
        const int p = w.producer_of(val_);
        if (p >= 0) {
          if (static_cast<std::size_t>(p) >= last_from_.size()) {
            last_from_.resize(static_cast<std::size_t>(p) + 1, 0);
          }
          if (val_ <= last_from_[static_cast<std::size_t>(p)]) {
            w.violation_ = "per-producer FIFO violated: saw " +
                           std::to_string(val_) + " after " +
                           std::to_string(last_from_[static_cast<std::size_t>(p)]);
          }
          last_from_[static_cast<std::size_t>(p)] = val_;
        }
        ++taken_;
        advance_rank();
        break;
      }
      case pc::check_gap: {
        const int g = w.cells_[w.slot(rank_)].gap;  // one load
        if (g >= rank_) {
          if (mut_ == consumer_mutation::skip_line29_recheck) {
            w.record_skip(rank_);  // MUTATION: drop the rank without re-check
            advance_rank();
          } else {
            pc_ = pc::recheck_rank;
          }
        } else {
          pc_ = pc::check_rank;  // back off and re-examine (spin)
        }
        break;
      }
      case pc::recheck_rank: {
        const int r = w.cells_[w.slot(rank_)].rank;  // one load
        if (r != rank_) {
          w.record_skip(rank_);
          advance_rank();  // truly skipped: drop in place, stay in run
        } else {
          pc_ = pc::check_rank;
        }
        break;
      }
      case pc::finished:
        break;
    }
  }

  void encode(std::vector<int>& out) const override {
    out.push_back(static_cast<int>(pc_));
    out.push_back(t_);
    out.push_back(h0_);
    out.push_back(rank_);
    out.push_back(end_);
    out.push_back(val_);
    out.push_back(taken_);
    for (int v : last_from_) out.push_back(v);
  }

  std::unique_ptr<thread_m> clone() const override {
    return std::make_unique<alg1_bulk_consumer>(*this);
  }

  int taken() const { return taken_; }

 private:
  enum class pc {
    load_tail,
    load_head,
    claim,
    check_rank,
    read_data,
    release_cell,
    check_gap,
    recheck_rank,
    finished
  };

  /// A rank in the claimed run is decided (consumed or dropped): move to
  /// the next one, or re-claim / finish when the run is exhausted.
  void advance_rank() {
    ++rank_;
    if (rank_ != end_) {
      pc_ = pc::check_rank;
    } else if (taken_ == quota_) {
      pc_ = pc::finished;
    } else {
      pc_ = pc::load_tail;
    }
  }

  pc pc_ = pc::load_tail;
  int t_ = 0;
  int h0_ = 0;
  int rank_ = -1;
  int end_ = -1;
  int val_ = 0;
  int taken_ = 0;
  int quota_;
  int batch_;
  consumer_mutation mut_;
  std::vector<int> last_from_;  ///< FIFO monitor: last value per producer
};

}  // namespace ffq::model
