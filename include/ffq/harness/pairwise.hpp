// pairwise.hpp — the comparative benchmark of Yang & Mellor-Crummey [21],
// as used in the paper's §V-G / Fig. 8.
//
// "All threads repeatedly execute pairs of enqueue and dequeue operations
// on a single queue, for a total of 10^7 pairs partitioned evenly among
// all threads. ... Between two operations, the benchmark adds an
// arbitrary delay (between 50 and 150 ns) to avoid scenarios where a
// cache line is held by one thread for a long time."
//
// Throughput is reported in operations/s (one op = one enqueue or one
// dequeue, i.e. 2 × pairs / elapsed), matching [21]'s metric.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ffq/harness/adapters.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/affinity.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/rng.hpp"
#include "ffq/runtime/timing.hpp"
#include "ffq/telemetry/registry.hpp"

namespace ffq::harness {

namespace detail {

template <typename Q>
concept has_telemetry = requires(const Q& q) { q.telemetry(); };

/// Fold a queue's event counters into the process-wide registry under
/// "queue.<adapter name>". The queue object dies at the end of each run,
/// so this is called right before destruction; queues without telemetry
/// (baselines, disabled policy) contribute nothing.
template <typename Q>
void export_queue_telemetry(const Q& q) {
  if constexpr (has_telemetry<Q>) {
    ffq::telemetry::registry::instance().accumulate_queue(
        std::string("queue.") + Q::kName, q.telemetry());
  }
}

}  // namespace detail

struct pairwise_config {
  int threads = 1;
  std::uint64_t total_pairs = 10'000'000;
  std::uint64_t think_min_ns = 50;   ///< 0 disables think time
  std::uint64_t think_max_ns = 150;
  bench_params params{};
  bool pin_threads = true;  ///< one thread per hardware thread, round-robin
  std::uint64_t seed = 0x5eed;
};

/// One measured run. Returns operations per second.
template <typename Adapter>
double run_pairwise_once(const pairwise_config& cfg) {
  using queue_t = typename Adapter::queue_type;
  std::unique_ptr<queue_t> q(Adapter::create(cfg.params));

  const std::uint64_t pairs_per_thread =
      cfg.total_pairs / static_cast<std::uint64_t>(cfg.threads);
  ffq::runtime::spin_barrier barrier(static_cast<std::size_t>(cfg.threads) + 1);
  const auto topo = ffq::runtime::cpu_topology::discover();
  const double ghz = ffq::runtime::tsc_ghz();

  ffq::runtime::time_window_recorder window(
      static_cast<std::size_t>(cfg.threads));
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      if (cfg.pin_threads && !topo.cpus().empty()) {
        const auto& cpus = topo.cpus();
        ffq::runtime::pin_self_to(
            cpus[static_cast<std::size_t>(t) % cpus.size()].os_id);
      }
      auto ctx = Adapter::make_context(*q, t);
      ffq::runtime::xoshiro256ss rng(cfg.seed + static_cast<std::uint64_t>(t));
      const std::uint64_t think_span =
          cfg.think_max_ns >= cfg.think_min_ns
              ? cfg.think_max_ns - cfg.think_min_ns + 1
              : 1;

      barrier.arrive_and_wait();  // start line
      window.mark_start(static_cast<std::size_t>(t));
      std::uint64_t out;
      for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
        Adapter::enqueue(*q, ctx,
                         (static_cast<std::uint64_t>(t) << 40) | (i + 1));
        if (cfg.think_min_ns > 0) {
          const double ns = static_cast<double>(cfg.think_min_ns +
                                                rng.bounded(think_span));
          ffq::runtime::spin_ns_tsc(
              ffq::runtime::rdtsc() +
              static_cast<std::uint64_t>(ns * ghz));
        }
        Adapter::dequeue(*q, ctx, out);
        if (cfg.think_min_ns > 0) {
          const double ns = static_cast<double>(cfg.think_min_ns +
                                                rng.bounded(think_span));
          ffq::runtime::spin_ns_tsc(
              ffq::runtime::rdtsc() +
              static_cast<std::uint64_t>(ns * ghz));
        }
      }
      window.mark_end(static_cast<std::size_t>(t));
      barrier.arrive_and_wait();  // finish line
    });
  }

  barrier.arrive_and_wait();  // release the start line
  barrier.arrive_and_wait();  // wait for all workers to finish
  for (auto& w : workers) w.join();
  const double secs = window.seconds();
  detail::export_queue_telemetry(*q);  // queue dies with this scope

  const double ops = 2.0 * static_cast<double>(pairs_per_thread) *
                     static_cast<double>(cfg.threads);
  return ops / secs;
}

/// Repeat `runs` times and summarize (ops/s samples).
template <typename Adapter>
run_stats run_pairwise(const pairwise_config& cfg, int runs) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    pairwise_config c = cfg;
    c.seed = cfg.seed + static_cast<std::uint64_t>(r) * 977;
    samples.push_back(run_pairwise_once<Adapter>(c));
  }
  return summarize(samples);
}

}  // namespace ffq::harness
