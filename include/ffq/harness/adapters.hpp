// adapters.hpp — uniform drivers over every queue in the repository.
//
// The comparative benchmark (Fig. 8) must run the same loop over queues
// with different APIs: some need per-thread handles (cc_queue, wf_queue,
// htm_queue), some are bounded with try-semantics (vyukov, htm), FFQ's
// dequeue blocks. An adapter exposes:
//
//   using queue_type = ...;
//   static constexpr const char* name();
//   static queue_type* create(const bench_params&);
//   context make_context(queue_type&, int thread_id);
//   void enqueue(queue_type&, context&, uint64_t)      — blocks if full
//   bool dequeue(queue_type&, context&, uint64_t&)     — blocks if empty*
//
// (*) pairwise benchmarks guarantee the queue is non-empty on average;
// adapters spin-with-yield on transient emptiness, matching how the
// framework of [21] drives queues whose dequeue can return EMPTY.
//
// Queues with native batched operations (the FFQ family, DESIGN.md §5.8)
// additionally expose:
//
//   static constexpr bool kHasBulk = true;
//   void enqueue_bulk(queue_type&, context&, const uint64_t*, size_t)
//   size_t dequeue_bulk(queue_type&, context&, uint64_t*, size_t)
//
// so benchmarks can run the same workload in scalar or batched mode.
// Adapters without native bulk support report kHasBulk = false (the
// default below); callers fall back to per-item loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>

#include "ffq/baselines/baselines.hpp"
#include "ffq/core/ffq.hpp"
#include "ffq/runtime/backoff.hpp"

namespace ffq::harness {

/// Queue-construction knobs shared by all adapters.
struct bench_params {
  std::size_t capacity = 1 << 16;   ///< bounded queues / FFQ ring size
  std::size_t ring_size = 1 << 10;  ///< LCRQ segment ring size
};

namespace detail {
struct no_context {};

/// Spin helper for try-API queues inside pairwise benchmarks.
template <typename F>
void spin_until(F&& f) {
  ffq::runtime::yielding_backoff bo;
  while (!f()) bo.pause();
}
}  // namespace detail

// --- FFQ family ------------------------------------------------------------

template <typename Layout = ffq::core::layout_aligned>
struct ffq_spsc_adapter {
  using queue_type = ffq::core::spsc_queue<std::uint64_t, Layout>;
  using context = detail::no_context;
  static constexpr bool kHasBulk = true;
  static constexpr const char* name() { return "ffq-spsc"; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) { q.enqueue(v); }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    return q.dequeue(out);
  }
  static void enqueue_bulk(queue_type& q, context&, const std::uint64_t* v,
                           std::size_t n) {
    q.enqueue_bulk(v, n);
  }
  static std::size_t dequeue_bulk(queue_type& q, context&, std::uint64_t* out,
                                  std::size_t max_n) {
    return q.dequeue_bulk(out, max_n);
  }
};

template <typename Layout = ffq::core::layout_aligned>
struct ffq_spmc_adapter {
  using queue_type = ffq::core::spmc_queue<std::uint64_t, Layout>;
  using context = detail::no_context;
  static constexpr bool kHasBulk = true;
  static constexpr const char* name() { return "ffq-spmc"; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) { q.enqueue(v); }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    return q.dequeue(out);
  }
  static void enqueue_bulk(queue_type& q, context&, const std::uint64_t* v,
                           std::size_t n) {
    q.enqueue_bulk(v, n);
  }
  static std::size_t dequeue_bulk(queue_type& q, context&, std::uint64_t* out,
                                  std::size_t max_n) {
    return q.dequeue_bulk(out, max_n);
  }
};

template <typename Layout = ffq::core::layout_aligned>
struct ffq_mpmc_adapter {
  using queue_type = ffq::core::mpmc_queue<std::uint64_t, Layout>;
  using context = detail::no_context;
  static constexpr bool kHasBulk = true;
  static constexpr const char* name() { return "ffq-mpmc"; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) { q.enqueue(v); }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    return q.dequeue(out);
  }
  static void enqueue_bulk(queue_type& q, context&, const std::uint64_t* v,
                           std::size_t n) {
    q.enqueue_bulk(v, n);
  }
  static std::size_t dequeue_bulk(queue_type& q, context&, std::uint64_t* out,
                                  std::size_t max_n) {
    return q.dequeue_bulk(out, max_n);
  }
};

/// kHasBulk detection with a false default, so generic benchmark loops
/// can fall back to scalar ops for baseline adapters.
template <typename Adapter, typename = void>
struct has_bulk : std::false_type {};
template <typename Adapter>
struct has_bulk<Adapter, std::enable_if_t<Adapter::kHasBulk>> : std::true_type {};
template <typename Adapter>
inline constexpr bool has_bulk_v = has_bulk<Adapter>::value;

// --- baselines ---------------------------------------------------------------

struct ms_adapter {
  using queue_type = ffq::baselines::ms_queue<std::uint64_t>;
  using context = detail::no_context;
  static constexpr const char* name() { return "msqueue"; }
  static queue_type* create(const bench_params&) { return new queue_type(); }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) { q.enqueue(v); }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    detail::spin_until([&] { return q.try_dequeue(out); });
    return true;
  }
};

struct cc_adapter {
  using queue_type = ffq::baselines::cc_queue<std::uint64_t>;
  using context = queue_type::handle;
  static constexpr const char* name() { return "ccqueue"; }
  static queue_type* create(const bench_params&) { return new queue_type(); }
  static context make_context(queue_type& q, int) { return context(q); }
  static void enqueue(queue_type& q, context& c, std::uint64_t v) {
    q.enqueue(c, v);
  }
  static bool dequeue(queue_type& q, context& c, std::uint64_t& out) {
    detail::spin_until([&] { return q.try_dequeue(c, out); });
    return true;
  }
};

struct lcrq_adapter {
  using queue_type = ffq::baselines::lcrq_queue;
  using context = detail::no_context;
  static constexpr const char* name() { return "lcrq"; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.ring_size);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) { q.enqueue(v); }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    detail::spin_until([&] { return q.try_dequeue(out); });
    return true;
  }
};

struct wf_adapter {
  using queue_type = ffq::baselines::wf_queue;
  using context = queue_type::handle;
  static constexpr const char* name() { return "wfqueue"; }
  static queue_type* create(const bench_params&) { return new queue_type(); }
  static context make_context(queue_type& q, int) { return context(q); }
  static void enqueue(queue_type& q, context& c, std::uint64_t v) {
    q.enqueue(c, v);
  }
  static bool dequeue(queue_type& q, context& c, std::uint64_t& out) {
    detail::spin_until([&] { return q.try_dequeue(c, out); });
    return true;
  }
};

struct vyukov_adapter {
  using queue_type = ffq::baselines::vyukov_mpmc_queue<std::uint64_t>;
  using context = detail::no_context;
  static constexpr const char* name() { return "vyukov-mpmc"; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type&, int) { return {}; }
  static void enqueue(queue_type& q, context&, std::uint64_t v) { q.enqueue(v); }
  static bool dequeue(queue_type& q, context&, std::uint64_t& out) {
    detail::spin_until([&] { return q.try_dequeue(out); });
    return true;
  }
};

struct htm_adapter {
  using queue_type = ffq::baselines::htm_queue<std::uint64_t>;
  using context = queue_type::handle;
  static constexpr const char* name() { return "htm"; }
  static queue_type* create(const bench_params& p) {
    return new queue_type(p.capacity);
  }
  static context make_context(queue_type& q, int id) {
    return q.make_handle(static_cast<std::uint64_t>(id) + 1);
  }
  static void enqueue(queue_type& q, context& c, std::uint64_t v) {
    detail::spin_until([&] { return q.try_enqueue(c, v); });
  }
  static bool dequeue(queue_type& q, context& c, std::uint64_t& out) {
    detail::spin_until([&] { return q.try_dequeue(c, out); });
    return true;
  }
};

}  // namespace ffq::harness
