// report.hpp — table and CSV output for the benchmark binaries.
//
// Every bench prints (a) a header block identifying the experiment and
// environment, (b) an aligned text table mirroring the paper's figure
// series, and (c) optionally a CSV file for replotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "ffq/telemetry/snapshot.hpp"

namespace ffq::harness {

/// Version tag of the bench report JSON layout (bump on layout changes).
inline constexpr const char* kReportSchema = "ffq.report.v1";

class table {
 public:
  explicit table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Render with right-aligned numeric columns and a separator line.
  std::string str() const;

  /// Write as CSV (header + rows). Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Write as a JSON report: {"schema", "experiment", "columns", "rows":
  /// [{col: value, ...}]}. Keys appear in a fixed order (document keys as
  /// listed, row keys in column order) and strings are fully escaped, so
  /// the output is byte-stable for a given table — golden-file testable.
  /// Cells that parse fully as numbers are emitted as JSON numbers so
  /// downstream tooling can compare runs without re-parsing. When
  /// `metrics` is non-null a "metrics" object (telemetry snapshot,
  /// schema "ffq.metrics.v1") is embedded after the rows. Returns false
  /// on I/O failure.
  bool write_json(const std::string& path, const std::string& experiment,
                  const ffq::telemetry::metrics_snapshot* metrics =
                      nullptr) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Standard experiment header: figure id, description, machine summary,
/// and the caveats that apply in this environment.
void print_experiment_header(const std::string& experiment_id,
                             const std::string& description);

/// Parse `--csv <path>`-style flags shared by all benches.
struct bench_cli {
  std::string csv_path;      ///< empty = no CSV
  std::string json_path;     ///< empty = no JSON report
  std::string metrics_path;  ///< empty = no standalone metrics snapshot
  std::string trace_path;    ///< empty = no "ffq.trace.v1" export
  int runs = 10;             ///< repetitions per configuration
  double scale = 1.0;        ///< workload scale factor (ops multiplier)
  bool quick = false;        ///< --quick: 3 runs, 1/10 workload

  static bench_cli parse(int argc, char** argv);
};

/// Write the "ffq.trace.v1" Chrome trace (every per-thread event ring
/// captured so far, merged; see DESIGN.md §9) when --trace was given.
/// `metrics` is embedded as counter tracks when non-null. Returns true
/// when nothing was requested or the write succeeded. In a build whose
/// queues use trace::disabled the file is still written — it just
/// carries only the thread-name metadata.
bool write_trace_if_requested(const bench_cli& cli,
                              const ffq::telemetry::metrics_snapshot* metrics =
                                  nullptr);

}  // namespace ffq::harness
