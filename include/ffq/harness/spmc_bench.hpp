// spmc_bench.hpp — the paper's primary micro-benchmark (§V-A):
//
// "We use a micro-benchmark that simulates the SPMC asynchronous system
// call interface. ... Producer threads have a state that consists of a
// SPMC submission queue and an array with SPSC response queues for each
// of the consumers assigned to the producer. Producer threads insert a
// number of 64-bit integers into the submission queue and loop through
// the response queues for dequeuing values. Consumers repeatedly retrieve
// a value from the submission queue and enqueue a 64-bit integer into the
// associated response queue."
//
// Used by the Fig. 2 (false sharing), Fig. 3 (queue size), Fig. 4–5
// (cache behaviour) and Fig. 6 (affinity) experiments. The submission
// queue type is a template parameter so Fig. 2 can run the MPMC variant
// ("All experiments were conducted with the MPMC variant of FFQ") while
// the affinity experiments use the SPMC/SPSC configurations.
//
// Flow control: the producer keeps at most `window` requests in flight —
// the paper's "implicit flow control" that guarantees free cells.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"
#include "ffq/harness/stats.hpp"
#include "ffq/runtime/affinity.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/barrier.hpp"
#include "ffq/runtime/timing.hpp"

namespace ffq::harness {

struct spmc_bench_config {
  std::size_t groups = 1;               ///< independent producers
  std::size_t consumers_per_group = 1;
  std::size_t submission_capacity = 1 << 16;
  std::size_t response_capacity = 1 << 16;
  std::uint64_t items_per_producer = 1'000'000;
  /// Batched mode (DESIGN.md §5.8): > 1 makes the producer submit with
  /// enqueue_bulk and consumers drain with dequeue_bulk in runs of this
  /// size (responses are replied in bulk too); 1 keeps the paper's
  /// scalar per-item loop.
  std::size_t batch = 1;
  ffq::runtime::placement_policy policy = ffq::runtime::placement_policy::none;
};

/// One measured run. `SubmissionQueue` must be an FFQ-family queue over
/// uint64 (enqueue / blocking dequeue / close); responses always use the
/// FFQ SPSC queue with the same layout. Returns round-trips per second
/// aggregated over all groups (1 round-trip = 4 queue operations).
template <typename SubmissionQueue, typename Layout>
double run_spmc_bench_once(const spmc_bench_config& cfg) {
  using response_queue = ffq::core::spsc_queue<std::uint64_t, Layout>;

  struct group_state {
    std::unique_ptr<SubmissionQueue> submission;
    std::vector<std::unique_ptr<response_queue>> responses;
  };

  std::vector<group_state> groups(cfg.groups);
  for (auto& g : groups) {
    g.submission = std::make_unique<SubmissionQueue>(cfg.submission_capacity);
    for (std::size_t c = 0; c < cfg.consumers_per_group; ++c) {
      g.responses.push_back(
          std::make_unique<response_queue>(cfg.response_capacity));
    }
  }

  const auto topo = ffq::runtime::cpu_topology::discover();
  const auto plan = ffq::runtime::plan_placement(topo, cfg.policy, cfg.groups);

  const std::size_t total_threads =
      cfg.groups * (1 + cfg.consumers_per_group);
  ffq::runtime::spin_barrier barrier(total_threads + 1);
  // Timing is recorded by the workers themselves (min start / max end):
  // a coordinator-side stopwatch can start or stop arbitrarily late when
  // the benchmark oversubscribes the machine and the coordinator is not
  // scheduled during the run.
  ffq::runtime::time_window_recorder window(total_threads);
  std::size_t next_window_slot = 0;

  std::vector<std::thread> threads;
  threads.reserve(total_threads);

  // The in-flight window: small enough that neither the submission ring
  // nor any single response ring can fill (implicit flow control).
  const std::uint64_t inflight_window = static_cast<std::uint64_t>(
      std::max<std::size_t>(
          1, std::min(cfg.submission_capacity, cfg.response_capacity) / 2));

  for (std::size_t gi = 0; gi < cfg.groups; ++gi) {
    // Consumers.
    for (std::size_t ci = 0; ci < cfg.consumers_per_group; ++ci) {
      const std::size_t slot = next_window_slot++;
      threads.emplace_back([&, gi, ci, slot] {
        if (!plan[gi].consumer_cpus.empty()) {
          ffq::runtime::pin_self_to(plan[gi].consumer_cpus);
        }
        auto& sub = *groups[gi].submission;
        auto& resp = *groups[gi].responses[ci];
        barrier.arrive_and_wait();
        window.mark_start(slot);
        if (cfg.batch <= 1) {
          std::uint64_t v;
          while (sub.dequeue(v)) {
            resp.enqueue(v + 1);  // "enqueue a 64-bit integer" as the reply
          }
        } else {
          // Batched mode: one head fetch-and-add claims up to `batch`
          // requests; replies go back with one tail publication.
          std::vector<std::uint64_t> buf(cfg.batch);
          std::size_t n;
          while ((n = sub.dequeue_bulk(buf.data(), cfg.batch)) > 0) {
            for (std::size_t i = 0; i < n; ++i) buf[i] += 1;
            resp.enqueue_bulk(buf.data(), n);
          }
        }
        window.mark_end(slot);
        barrier.arrive_and_wait();
      });
    }
    // Producer.
    const std::size_t pslot = next_window_slot++;
    threads.emplace_back([&, gi, pslot] {
      if (!plan[gi].producer_cpus.empty()) {
        ffq::runtime::pin_self_to(plan[gi].producer_cpus);
      }
      auto& g2 = groups[gi];
      barrier.arrive_and_wait();
      window.mark_start(pslot);
      std::uint64_t submitted = 0, received = 0;
      std::size_t rr = 0;  // round-robin cursor over response queues
      std::uint64_t out;
      std::vector<std::uint64_t> sub_buf(cfg.batch);
      std::vector<std::uint64_t> resp_buf(cfg.batch);
      ffq::runtime::yielding_backoff idle;
      while (received < cfg.items_per_producer) {
        bool progressed = false;
        while (submitted < cfg.items_per_producer &&
               submitted - received < inflight_window) {
          if (cfg.batch <= 1) {
            g2.submission->enqueue(submitted + 1);
            ++submitted;
          } else {
            const std::uint64_t chunk = std::min<std::uint64_t>(
                {static_cast<std::uint64_t>(cfg.batch),
                 cfg.items_per_producer - submitted,
                 inflight_window - (submitted - received)});
            for (std::uint64_t i = 0; i < chunk; ++i) {
              sub_buf[static_cast<std::size_t>(i)] = submitted + 1 + i;
            }
            g2.submission->enqueue_bulk(sub_buf.data(),
                                        static_cast<std::size_t>(chunk));
            submitted += chunk;
          }
          progressed = true;
        }
        // "loop through the response queues for dequeuing values"
        for (std::size_t i = 0; i < g2.responses.size(); ++i) {
          if (cfg.batch <= 1) {
            while (g2.responses[rr]->try_dequeue(out)) {
              ++received;
              progressed = true;
            }
          } else {
            std::size_t n;
            while ((n = g2.responses[rr]->try_dequeue_bulk(
                        resp_buf.data(), cfg.batch)) > 0) {
              received += n;
              progressed = true;
            }
          }
          rr = (rr + 1) % g2.responses.size();
        }
        if (progressed) {
          idle.reset();
        } else {
          idle.pause();
        }
      }
      g2.submission->close();  // consumers drain out
      window.mark_end(pslot);
      barrier.arrive_and_wait();
    });
  }

  barrier.arrive_and_wait();  // start
  barrier.arrive_and_wait();  // all threads done
  for (auto& t : threads) t.join();
  const double secs = window.seconds();

  const double roundtrips =
      static_cast<double>(cfg.items_per_producer) *
      static_cast<double>(cfg.groups);
  return roundtrips / secs;
}

template <typename SubmissionQueue, typename Layout>
run_stats run_spmc_bench(const spmc_bench_config& cfg, int runs) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    samples.push_back(run_spmc_bench_once<SubmissionQueue, Layout>(cfg));
  }
  return summarize(samples);
}

}  // namespace ffq::harness
