// driver.hpp — shared benchmark-driver utilities.
#pragma once

#include <cstdint>

namespace ffq::harness {

/// Measured mean cost (ns) of one think-time draw + calibrated spin for
/// the given bounds. Benches print it so readers can judge how much of
/// the per-op time is think time vs queue work.
double measure_think_overhead_ns(std::uint64_t min_ns, std::uint64_t max_ns,
                                 int samples = 20000);

/// True when the environment looks too small for a given thread count
/// (pure advisory; benches still run oversubscribed).
bool oversubscribed(int threads);

}  // namespace ffq::harness
