// stats.hpp — summary statistics for repeated benchmark runs.
//
// "The reported results represent the average of 10 runs" (paper §V-A);
// we additionally carry stddev/min/max so EXPERIMENTS.md can show run
// stability on a noisy container.
#pragma once

#include <string>
#include <vector>

namespace ffq::harness {

struct run_stats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t runs = 0;
};

/// Summarize a set of per-run measurements (any unit).
run_stats summarize(std::vector<double> samples);

/// "12.34M" style human formatting for ops/s values.
std::string human_rate(double ops_per_sec);

/// Fixed-precision decimal as a string (no iostream noise at call sites).
std::string fixed(double v, int decimals = 2);

}  // namespace ffq::harness
