// spmc.hpp — FFQ^s: the single-producer/multiple-consumer FIFO queue
// (paper Algorithm 1).
//
// Operating principles (paper §III-A):
//  * A bounded circular array of cells, each holding (data, rank, gap).
//    `rank` is the monotonically-increasing insertion number of the item
//    in the cell (-1 when the cell is free); `gap` announces ranks the
//    producer skipped.
//  * The producer owns `tail`; it enqueues at rank `tail` if the mapped
//    cell is free, otherwise it announces a gap and moves on. Wait-free
//    under the paper's standing assumption that the array never fills
//    (Proposition 1).
//  * Consumers draw unique ranks from the shared `head` with
//    fetch-and-increment and then synchronize only through the cell:
//    rank == mine → take it; gap ≥ mine (and rank ≠ mine on re-check) →
//    my rank was skipped, draw a new one; otherwise the producer is still
//    writing → back off. Lock-free (Proposition 2).
//
// Synchronization points (paper footnote 3: "Ordering is enforced ...
// using memory barriers"):
//  * producer:  construct data, then rank.store(tail, release)
//  * consumer:  rank.load(acquire); move data out; rank.store(-1, release)
//  * producer free-check: rank.load(acquire) pairs with the consumer's
//    release so the data slot is safely reusable.
//  * head is fetch_add(relaxed): it is a pure ticket dispenser; all data
//    synchronization goes through the cell fields.
//
// Library extension beyond the paper (DESIGN.md §5.6): `close()` lets
// consumers parked on a never-to-be-produced rank return false instead of
// spinning forever. The check sits only on the back-off path.
//
// Batched operations (DESIGN.md §5.8): `enqueue_bulk` publishes each cell
// individually (consumers synchronize through cells, not tail) but stores
// `tail` once per batch; `dequeue_bulk` claims a *run* of ranks with a
// single fetch-and-add on `head` — the per-item atomic RMW that dominates
// dequeue cost (§III-A) is paid once per batch. Gap ranks inside a
// claimed run are dropped in place without a fresh fetch-and-add.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/check/yield.hpp"
#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/telemetry/counters.hpp"
#include "ffq/trace/tracer.hpp"

namespace ffq::core {

namespace detail {

/// Racy diagnostic view of one cell's control fields, returned by the
/// queues' inspect_rank() for the trace watchdog's post-mortem dumps.
struct cell_probe {
  std::int64_t rank = -1;
  std::int64_t gap = -1;
};

}  // namespace detail

namespace detail {

/// Cell of the single-producer variants. 24 bytes for 8-byte payloads in
/// the compact layout, one full line when cache-aligned — matching the
/// sizes reported in §V-B.
template <typename T>
struct spmc_cell_fields {
  std::atomic<std::int64_t> rank{-1};  ///< insertion number, -1 = free
  std::atomic<std::int64_t> gap{-1};   ///< highest rank skipped at this cell
  alignas(alignof(T)) unsigned char storage[sizeof(T)];

  T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
};

template <typename T, bool CacheAligned>
struct spmc_cell : spmc_cell_fields<T> {};

template <typename T>
struct alignas(ffq::runtime::kCacheLineSize) spmc_cell<T, true>
    : spmc_cell_fields<T> {};

}  // namespace detail

/// FFQ^s. `T` must be nothrow-move-constructible; `Layout` is one of the
/// policies in layout.hpp. Capacity must be a power of two and must
/// exceed the maximum number of in-flight items (the paper's implicit
/// flow-control assumption) for enqueue to stay wait-free.
template <typename T, typename Layout = layout_aligned,
          typename Telemetry = ffq::telemetry::default_policy,
          typename Trace = ffq::trace::default_policy>
class spmc_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "cell publication cannot be rolled back after a throwing move");

 public:
  using value_type = T;
  using layout_type = Layout;
  using telemetry_policy = Telemetry;
  using trace_policy = Trace;
  static constexpr const char* kName = "ffq-spmc";

  explicit spmc_queue(std::size_t capacity)
      : cap_(capacity), cells_(capacity) {
    assert(capacity_info::valid(capacity) && "capacity must be a power of two >= 2");
  }

  spmc_queue(const spmc_queue&) = delete;
  spmc_queue& operator=(const spmc_queue&) = delete;

  ~spmc_queue() {
    // Destroy any items that were enqueued but never consumed.
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      auto& c = cells_[i];
      if (c.rank.load(std::memory_order_relaxed) >= 0) {
        std::destroy_at(c.ptr());
      }
    }
  }

  /// Enqueue one item (producer thread only). Wait-free while the queue
  /// has free cells; skips occupied cells, announcing gaps.
  void enqueue(T value) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    const std::uint64_t t0 = trc_.now();
    std::int64_t t = tail_->load(std::memory_order_relaxed);
    std::size_t consecutive_skips = 0;
    std::uint64_t stalls = 0;  // flushed once per call, not per pause
    bool stall_traced = false;
    ffq::runtime::yielding_backoff full_backoff;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: one cell-protocol round
      auto& c = cells_[cap_.template slot<Layout>(t)];
      if (c.rank.load(std::memory_order_acquire) >= 0) {
        if (consecutive_skips >= cap_.size()) {
          // A whole sweep found no free cell: the paper's free-slot
          // assumption is violated (queue full). Announcing further gaps
          // would flood consumers with dead ranks they must fetch-add
          // through one by one, so wait here for *this* cell to drain
          // instead (footnote 2: "the producer would spin until a slot
          // becomes available"). Wait-freedom is already forfeit in this
          // regime.
          ++stalls;
          if (!stall_traced) {  // one instant per episode, not per pause
            trc_.on_full_stall(t);
            stall_traced = true;
          }
          if (ffq::telemetry::flush_due(stalls)) {
            tel_.on_full_stalls(stalls);
            stalls = 0;
          }
          full_backoff.pause();
          continue;
        }
        // Cell still holds an unconsumed (or mid-dequeue) older item:
        // announce the skipped rank and move to the next one (Alg. 1
        // lines 13–14). The same cell may be skipped repeatedly; `gap`
        // then carries the latest skipped rank, which is all consumers
        // need ("gap ≥ rank").
        c.gap.store(t, std::memory_order_release);
        tel_.on_gap_created();
        trc_.on_gap(t);
        ++t;
        ++consecutive_skips;
        continue;
      }
      std::construct_at(c.ptr(), std::move(value));
      FFQ_CHECK_YIELD();  // window between the data write and publication
      c.rank.store(t, std::memory_order_release);  // linearization point
      ++t;
      break;
    }
    tel_.on_full_stalls(stalls);
    tail_->store(t, std::memory_order_release);
    trc_.on_enqueue(t0, t - 1);
  }

  /// Enqueue `n` items from `first` (producer thread only). Same cell
  /// protocol as enqueue() — every item still gets its own release-store
  /// of `rank`, which is the publication consumers synchronize on — but
  /// `tail` is stored once for the whole batch instead of once per item.
  /// Blocks (like enqueue) only in the full-ring regime.
  template <typename It>
  void enqueue_bulk(It first, std::size_t n) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    tel_.on_bulk(n);
    std::uint64_t it0 = trc_.now();  // per-item begin timestamp
    std::int64_t t = tail_->load(std::memory_order_relaxed);
    std::size_t consecutive_skips = 0;
    std::uint64_t stalls = 0;
    bool stall_traced = false;
    ffq::runtime::yielding_backoff full_backoff;
    for (std::size_t i = 0; i < n;) {
      FFQ_CHECK_YIELD();  // scheduling point: one cell-protocol round
      auto& c = cells_[cap_.template slot<Layout>(t)];
      if (c.rank.load(std::memory_order_acquire) >= 0) {
        if (consecutive_skips >= cap_.size()) {
          ++stalls;
          if (!stall_traced) {
            trc_.on_full_stall(t);
            stall_traced = true;
          }
          if (ffq::telemetry::flush_due(stalls)) {
            tel_.on_full_stalls(stalls);
            stalls = 0;
          }
          full_backoff.pause();
          continue;
        }
        c.gap.store(t, std::memory_order_release);
        tel_.on_gap_created();
        trc_.on_gap(t);
        ++t;
        ++consecutive_skips;
        continue;
      }
      std::construct_at(c.ptr(), std::move(*first));
      FFQ_CHECK_YIELD();  // window between the data write and publication
      c.rank.store(t, std::memory_order_release);
      trc_.on_enqueue(it0, t);
      it0 = trc_.now();
      stall_traced = false;
      ++t;
      ++first;
      ++i;
      consecutive_skips = 0;
    }
    tel_.on_full_stalls(stalls);
    tail_->store(t, std::memory_order_release);  // one publication per batch
  }

  /// Dequeue one item (any number of consumer threads). Blocks (spinning
  /// with back-off) while the queue is empty; returns false only after
  /// close() once this consumer's rank is past the final tail.
  bool dequeue(T& out) noexcept {
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the rank claim
      const std::int64_t rank = head_->fetch_add(1, std::memory_order_relaxed);
      switch (resolve_rank(rank, [&](T&& v) { out = std::move(v); })) {
        case rank_state::taken:
          return true;
        case rank_state::skipped:
          continue;  // draw a fresh rank
        case rank_state::drained:
          return false;
      }
    }
  }

  /// Non-blocking dequeue (any number of consumer threads). Returns false
  /// immediately when no published work is claimable, instead of
  /// committing to a rank and spinning. Once work is visible it commits
  /// exactly like dequeue(); a racing consumer can push the claimed rank
  /// past the observed tail, in which case this waits for that one rank
  /// to resolve (ranks below the observed tail are always decided, so the
  /// common path never waits).
  bool try_dequeue(T& out) noexcept {
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the emptiness check
      const std::int64_t t = tail_->load(std::memory_order_acquire);
      const std::int64_t h = head_->load(std::memory_order_relaxed);
      if (t <= h) return false;  // nothing published: do not claim a rank
      FFQ_CHECK_YIELD();  // window: a racing consumer may move head here
      const std::int64_t rank = head_->fetch_add(1, std::memory_order_relaxed);
      switch (resolve_rank(rank, [&](T&& v) { out = std::move(v); })) {
        case rank_state::taken:
          return true;
        case rank_state::skipped:
          continue;  // gap rank: re-check availability before reclaiming
        case rank_state::drained:
          return false;
      }
    }
  }

  /// Non-blocking bulk dequeue (any number of consumer threads). Returns
  /// 0 immediately when nothing is published (tail ≤ head) instead of
  /// committing a rank and spinning — the primitive the shard fabric's
  /// drain scheduler polls with. When work is visible it claims a run of
  /// up to `max_n` ranks with one fetch-and-add, exactly like
  /// dequeue_bulk; every rank below the observed tail is already decided
  /// (item or gap), so resolution does not wait on the producer except in
  /// the same racing-consumer overshoot window try_dequeue documents.
  /// Runs that turn out to be all gaps re-check availability instead of
  /// spinning.
  template <typename OutIt>
  std::size_t try_dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    if (max_n == 0) return 0;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the emptiness check
      const std::int64_t t = tail_->load(std::memory_order_acquire);
      const std::int64_t h = head_->load(std::memory_order_relaxed);
      const std::int64_t avail = t - h;
      if (avail <= 0) return 0;  // nothing published: do not claim a rank
      const std::int64_t k =
          std::min<std::int64_t>(static_cast<std::int64_t>(max_n), avail);
      FFQ_CHECK_YIELD();  // window: a racing consumer may move head here
      const std::int64_t first = head_->fetch_add(k, std::memory_order_relaxed);
      if (k > 1) tel_.on_rank_block_faa();
      std::size_t taken = 0;
      bool drained = false;
      for (std::int64_t rank = first; rank < first + k && !drained; ++rank) {
        switch (resolve_rank(rank, [&](T&& v) {
          *out = std::move(v);
          ++out;
        })) {
          case rank_state::taken:
            ++taken;
            break;
          case rank_state::skipped:
            break;  // dropped in place: no fresh fetch-and-add
          case rank_state::drained:
            drained = true;
            break;
        }
      }
      if (taken > 0 || drained) {
        if (taken > 0) tel_.on_bulk(taken);
        return taken;
      }
      // Whole run was gaps: re-check availability before claiming again.
    }
  }

  /// Dequeue up to `max_n` items into `out` (any number of consumer
  /// threads). Claims a run of ranks with a *single* fetch-and-add of
  /// `head` and resolves each claimed rank against its cell; gap ranks
  /// inside the run are dropped without a fresh fetch-and-add. The claim
  /// is bounded by the published tail (every rank below it is already
  /// decided as item or gap), so the run cannot park on more than one
  /// unproduced rank. Returns the count actually taken (≥ 1), blocking
  /// like dequeue() while the queue is empty; returns 0 only once closed
  /// and drained.
  template <typename OutIt>
  std::size_t dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    if (max_n == 0) return 0;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the run claim
      const std::int64_t t = tail_->load(std::memory_order_acquire);
      const std::int64_t h = head_->load(std::memory_order_relaxed);
      const std::int64_t avail = t - h;
      const std::int64_t k =
          avail > 1 ? std::min<std::int64_t>(
                          static_cast<std::int64_t>(max_n), avail)
                    : 1;  // claim one rank to preserve blocking semantics
      FFQ_CHECK_YIELD();  // window: head may be stale by claim time
      const std::int64_t first = head_->fetch_add(k, std::memory_order_relaxed);
      if (k > 1) tel_.on_rank_block_faa();
      std::size_t taken = 0;
      bool drained = false;
      for (std::int64_t rank = first; rank < first + k && !drained; ++rank) {
        switch (resolve_rank(rank, [&](T&& v) {
          *out = std::move(v);
          ++out;
        })) {
          case rank_state::taken:
            ++taken;
            break;
          case rank_state::skipped:
            break;  // dropped in place: no fresh fetch-and-add
          case rank_state::drained:
            // Ranks grow within the run, so the rest are past the final
            // tail too.
            drained = true;
            break;
        }
      }
      if (taken > 0 || drained) {
        if (taken > 0) tel_.on_bulk(taken);
        return taken;
      }
      // Whole run was gaps: claim again (equivalent to dequeue()'s
      // skip-and-redraw, amortized).
    }
  }

  /// Mark the queue closed at the current tail. Consumers whose ranks lie
  /// beyond the final tail return false from dequeue(); items already
  /// enqueued are still drained. Must be called after the producer's last
  /// enqueue has returned (producer thread itself may call it).
  void close() noexcept {
    closed_tail_.store(tail_->load(std::memory_order_acquire),
                       std::memory_order_release);
  }

  bool closed() const noexcept {
    return closed_tail_.load(std::memory_order_acquire) >= 0;
  }

  std::size_t capacity() const noexcept { return cap_.size(); }

  /// Racy size estimate (includes gap ranks); for monitoring only.
  std::int64_t approx_size() const noexcept {
    const auto t = tail_->load(std::memory_order_relaxed);
    const auto h = head_->load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

  /// Number of gap announcements the producer has made (0 under the
  /// disabled telemetry policy).
  std::uint64_t gaps_created() const noexcept { return tel_.gaps_created(); }

  /// Number of times consumers abandoned a skipped rank (0 under the
  /// disabled telemetry policy).
  std::uint64_t consumer_skips() const noexcept {
    return tel_.consumer_skips();
  }

  /// The queue's event-counter block (empty under the disabled policy).
  const ffq::telemetry::queue_counters<Telemetry>& telemetry() const noexcept {
    return tel_;
  }

  /// Watchdog introspection (racy, diagnostic only): the next rank
  /// consumers will draw, the next rank the producer will place, and the
  /// control fields of the cell a rank maps to.
  std::int64_t head_rank() const noexcept {
    return head_->load(std::memory_order_relaxed);
  }
  std::int64_t tail_rank() const noexcept {
    return tail_->load(std::memory_order_relaxed);
  }
  detail::cell_probe inspect_rank(std::int64_t rank) const noexcept {
    const auto& c = cells_[cap_.template slot<Layout>(rank)];
    return {c.rank.load(std::memory_order_relaxed),
            c.gap.load(std::memory_order_relaxed)};
  }

 private:
  using cell = detail::spmc_cell<T, Layout::kCacheAligned>;

  enum class rank_state { taken, skipped, drained };

  /// Resolve one claimed rank against its cell: the scalar dequeue body
  /// of Algorithm 1, shared by dequeue / try_dequeue / dequeue_bulk.
  /// `sink` receives the item by rvalue on `taken`. Blocks (with
  /// back-off) while the producer is still writing this rank.
  template <typename Sink>
  rank_state resolve_rank(std::int64_t rank, Sink&& sink) noexcept {
    const std::uint64_t t0 = trc_.now();
    auto& c = cells_[cap_.template slot<Layout>(rank)];
    ffq::runtime::yielding_backoff backoff;
    std::uint64_t pauses = 0;  // flushed once per episode, not per pause
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: one resolve round
      if (c.rank.load(std::memory_order_acquire) == rank) {
        // Exactly one consumer can observe its own rank here (ranks are
        // unique), so the cell is ours to read and recycle.
        sink(std::move(*c.ptr()));
        std::destroy_at(c.ptr());
        c.rank.store(-1, std::memory_order_release);  // linearization point
        tel_.on_backoff_pauses(pauses);
        trc_.on_dequeue(t0, rank);
        return rank_state::taken;
      }
      // Skipped? gap must be read before the rank re-check: the
      // producer may have *filled* the cell for our rank after our
      // first look and then announced a gap for a later rank on a
      // subsequent traversal (paper's line-29 discussion). The two loads
      // are distinct atomic accesses, so the checker gets a scheduling
      // point between them — the exact window the argument is about.
      if (c.gap.load(std::memory_order_acquire) >= rank) {
        FFQ_CHECK_YIELD();  // line-29 window
        if (c.rank.load(std::memory_order_acquire) != rank) {
          tel_.on_consumer_skip();
          trc_.on_skip(rank);
          tel_.on_backoff_pauses(pauses);
          return rank_state::skipped;
        }
        continue;  // re-check found our rank after all: take it next round
      }
      // Producer still writing (or queue empty): back off briefly.
      const std::int64_t closed = closed_tail_.load(std::memory_order_acquire);
      if (closed >= 0 && rank >= closed) {
        tel_.on_backoff_pauses(pauses);
        return rank_state::drained;
      }
      ++pauses;
      if (ffq::telemetry::flush_due(pauses)) {
        tel_.on_backoff_pauses(pauses);
        pauses = 0;
      }
      backoff.pause();
    }
  }

  capacity_info cap_;
  ffq::runtime::aligned_array<cell> cells_;
  // tail is logically producer-private (single-reader/single-writer in the
  // paper); it is atomic only so close() can snapshot it.
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_{0};
  ffq::runtime::padded<std::atomic<std::int64_t>> head_{0};
  std::atomic<std::int64_t> closed_tail_{-1};
  // Replaces the old ad-hoc gaps_created_/skips_ pair. Empty under the
  // disabled policy, so sizeof matches the uninstrumented layout
  // (static_asserts in tests/test_telemetry.cpp).
  [[no_unique_address]] ffq::telemetry::queue_counters<Telemetry> tel_;
  // Trace hook block: a 2-byte queue id when tracing is on, empty (and
  // address-free) when off — the OFF layout stays byte-identical
  // (static_asserts in tests/test_trace.cpp).
  [[no_unique_address]] ffq::trace::queue_tracer<Trace> trc_{kName};
};

}  // namespace ffq::core
