// spsc.hpp — FFQ SPSC specialization.
//
// "The SPSC variant of FFQ removes the need for an atomic increment
// operation" (paper §V-G): with a single consumer, `head` becomes a
// consumer-private counter — no fetch-and-increment, no shared head line.
// Cells keep the (rank, gap) protocol because the producer can still wrap
// around onto a cell whose item the consumer has not consumed yet (the
// buffer-full edge), in which case it skips and announces a gap exactly
// like the SPMC variant.
//
// Used by the application framework (paper §V-A) for the per-consumer
// response queues, and by Fig. 3 (queue-size sweep) and Fig. 8 (SPSC
// single-thread reference line).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/check/yield.hpp"
#include "ffq/core/layout.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/telemetry/counters.hpp"
#include "ffq/trace/tracer.hpp"

namespace ffq::core {

template <typename T, typename Layout, typename Telemetry, typename Trace>
class waitable_spsc_queue;

template <typename T, typename Layout = layout_aligned,
          typename Telemetry = ffq::telemetry::default_policy,
          typename Trace = ffq::trace::default_policy>
class spsc_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "cell publication cannot be rolled back after a throwing move");

 public:
  using value_type = T;
  using layout_type = Layout;
  using telemetry_policy = Telemetry;
  using trace_policy = Trace;
  static constexpr const char* kName = "ffq-spsc";

  explicit spsc_queue(std::size_t capacity)
      : cap_(capacity), cells_(capacity) {
    assert(capacity_info::valid(capacity) && "capacity must be a power of two >= 2");
  }

  spsc_queue(const spsc_queue&) = delete;
  spsc_queue& operator=(const spsc_queue&) = delete;

  ~spsc_queue() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      auto& c = cells_[i];
      if (c.rank.load(std::memory_order_relaxed) >= 0) {
        std::destroy_at(c.ptr());
      }
    }
  }

  /// Producer thread only. Identical protocol to spmc_queue::enqueue.
  void enqueue(T value) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    const std::uint64_t t0 = trc_.now();
    std::int64_t t = tail_->load(std::memory_order_relaxed);
    std::size_t consecutive_skips = 0;
    std::uint64_t stalls = 0;  // flushed once per call, not per pause
    bool stall_traced = false;
    ffq::runtime::yielding_backoff full_backoff;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: one cell-protocol round
      auto& c = cells_[cap_.template slot<Layout>(t)];
      if (c.rank.load(std::memory_order_acquire) >= 0) {
        if (consecutive_skips >= cap_.size()) {
          // Full ring (free-slot assumption violated): wait for this cell
          // instead of flooding the consumer with gap ranks. See the
          // matching comment in spmc_queue::enqueue.
          ++stalls;
          if (!stall_traced) {  // one instant per episode, not per pause
            trc_.on_full_stall(t);
            stall_traced = true;
          }
          if (ffq::telemetry::flush_due(stalls)) {
            tel_.on_full_stalls(stalls);
            stalls = 0;
          }
          full_backoff.pause();
          continue;
        }
        c.gap.store(t, std::memory_order_release);
        tel_.on_gap_created();
        trc_.on_gap(t);
        ++t;
        ++consecutive_skips;
        continue;
      }
      std::construct_at(c.ptr(), std::move(value));
      FFQ_CHECK_YIELD();  // window between the data write and publication
      c.rank.store(t, std::memory_order_release);
      ++t;
      break;
    }
    tel_.on_full_stalls(stalls);
    tail_->store(t, std::memory_order_release);
    trc_.on_enqueue(t0, t - 1);
  }

  /// Producer thread only. Enqueue `n` items from `first` with the same
  /// cell protocol as enqueue() but a single `tail` store for the whole
  /// batch (DESIGN.md §5.8). Blocks only in the full-ring regime.
  template <typename It>
  void enqueue_bulk(It first, std::size_t n) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    tel_.on_bulk(n);
    std::uint64_t it0 = trc_.now();  // per-item begin timestamp
    std::int64_t t = tail_->load(std::memory_order_relaxed);
    std::size_t consecutive_skips = 0;
    std::uint64_t stalls = 0;
    bool stall_traced = false;
    ffq::runtime::yielding_backoff full_backoff;
    for (std::size_t i = 0; i < n;) {
      FFQ_CHECK_YIELD();  // scheduling point: one cell-protocol round
      auto& c = cells_[cap_.template slot<Layout>(t)];
      if (c.rank.load(std::memory_order_acquire) >= 0) {
        if (consecutive_skips >= cap_.size()) {
          ++stalls;
          if (!stall_traced) {
            trc_.on_full_stall(t);
            stall_traced = true;
          }
          if (ffq::telemetry::flush_due(stalls)) {
            tel_.on_full_stalls(stalls);
            stalls = 0;
          }
          full_backoff.pause();
          continue;
        }
        c.gap.store(t, std::memory_order_release);
        tel_.on_gap_created();
        trc_.on_gap(t);
        ++t;
        ++consecutive_skips;
        continue;
      }
      std::construct_at(c.ptr(), std::move(*first));
      FFQ_CHECK_YIELD();  // window between the data write and publication
      c.rank.store(t, std::memory_order_release);
      trc_.on_enqueue(it0, t);
      it0 = trc_.now();
      stall_traced = false;
      ++t;
      ++first;
      ++i;
      consecutive_skips = 0;
    }
    tel_.on_full_stalls(stalls);
    tail_->store(t, std::memory_order_release);  // one publication per batch
  }

  /// Consumer thread only. Non-blocking: false when no item is ready.
  /// Safe because `head` is consumer-private — an abandoned poll consumes
  /// no rank.
  bool try_dequeue(T& out) noexcept {
    const std::uint64_t t0 = trc_.now();
    std::int64_t h = (*head_);
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: one cell-protocol round
      auto& c = cells_[cap_.template slot<Layout>(h)];
      if (c.rank.load(std::memory_order_acquire) == h) {
        out = std::move(*c.ptr());
        std::destroy_at(c.ptr());
        c.rank.store(-1, std::memory_order_release);
        (*head_) = h + 1;
        trc_.on_dequeue(t0, h);
        return true;
      }
      // The gap load and the rank re-check are distinct atomic accesses;
      // the paper's line-29 argument is exactly about what may happen
      // between them, so the checker gets a scheduling point there.
      if (c.gap.load(std::memory_order_acquire) >= h) {
        FFQ_CHECK_YIELD();  // line-29 window: producer may publish h here
        if (c.rank.load(std::memory_order_acquire) != h) {
          tel_.on_consumer_skip();
          trc_.on_skip(h);
          ++h;  // our rank was skipped; advance past the gap
          continue;
        }
        continue;  // re-check found our rank after all: take it next round
      }
      (*head_) = h;  // remember progress past consumed gaps
      return false;
    }
  }

  /// Consumer thread only. Blocking variant; returns false only after
  /// close() once everything produced has been drained.
  bool dequeue(T& out) noexcept {
    ffq::runtime::yielding_backoff backoff;
    std::uint64_t pauses = 0;  // flushed once per call, not per pause
    for (;;) {
      if (try_dequeue(out)) {
        tel_.on_backoff_pauses(pauses);
        return true;
      }
      const std::int64_t closed = closed_tail_.load(std::memory_order_acquire);
      if (closed >= 0 && (*head_) >= closed) {
        tel_.on_backoff_pauses(pauses);
        return false;
      }
      ++pauses;
      if (ffq::telemetry::flush_due(pauses)) {
        tel_.on_backoff_pauses(pauses);
        pauses = 0;
      }
      backoff.pause();
    }
  }

  /// Consumer thread only. Take up to `max_n` ready items; never waits.
  /// The consumer-private head makes the claim non-committal, so a
  /// partial (or empty) batch abandons nothing.
  template <typename OutIt>
  std::size_t try_dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    std::uint64_t it0 = trc_.now();  // per-item begin timestamp
    std::int64_t h = (*head_);
    std::size_t taken = 0;
    while (taken < max_n) {
      FFQ_CHECK_YIELD();  // scheduling point: one cell-protocol round
      auto& c = cells_[cap_.template slot<Layout>(h)];
      if (c.rank.load(std::memory_order_acquire) == h) {
        *out = std::move(*c.ptr());
        ++out;
        std::destroy_at(c.ptr());
        c.rank.store(-1, std::memory_order_release);
        trc_.on_dequeue(it0, h);
        it0 = trc_.now();
        ++h;
        ++taken;
        continue;
      }
      if (c.gap.load(std::memory_order_acquire) >= h) {
        FFQ_CHECK_YIELD();  // line-29 window (see try_dequeue)
        if (c.rank.load(std::memory_order_acquire) != h) {
          tel_.on_consumer_skip();
          trc_.on_skip(h);
          ++h;  // gap rank: advance past it within the same scan
        }
        continue;
      }
      break;  // next rank not published yet
    }
    (*head_) = h;
    return taken;
  }

  /// Consumer thread only. Blocking bulk dequeue: returns ≥ 1 items, or
  /// 0 only once closed and drained.
  template <typename OutIt>
  std::size_t dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    if (max_n == 0) return 0;
    ffq::runtime::yielding_backoff backoff;
    std::uint64_t pauses = 0;
    for (;;) {
      const std::size_t n = try_dequeue_bulk(out, max_n);
      if (n > 0) {
        tel_.on_bulk(n);
        tel_.on_backoff_pauses(pauses);
        return n;
      }
      const std::int64_t closed = closed_tail_.load(std::memory_order_acquire);
      if (closed >= 0 && (*head_) >= closed) {
        tel_.on_backoff_pauses(pauses);
        return 0;
      }
      ++pauses;
      if (ffq::telemetry::flush_due(pauses)) {
        tel_.on_backoff_pauses(pauses);
        pauses = 0;
      }
      backoff.pause();
    }
  }

  /// See spmc_queue::close().
  void close() noexcept {
    closed_tail_.store(tail_->load(std::memory_order_acquire),
                       std::memory_order_release);
  }

  bool closed() const noexcept {
    return closed_tail_.load(std::memory_order_acquire) >= 0;
  }

  std::size_t capacity() const noexcept { return cap_.size(); }

  std::int64_t approx_size() const noexcept {
    const auto t = tail_->load(std::memory_order_relaxed);
    const auto h = (*head_);
    return t > h ? t - h : 0;
  }

  std::uint64_t gaps_created() const noexcept { return tel_.gaps_created(); }
  std::uint64_t consumer_skips() const noexcept {
    return tel_.consumer_skips();
  }

  /// The queue's event-counter block (empty under the disabled policy).
  const ffq::telemetry::queue_counters<Telemetry>& telemetry() const noexcept {
    return tel_;
  }

  /// Watchdog introspection (racy, diagnostic only). head is
  /// consumer-private and non-atomic, so the cross-thread peek goes
  /// through an atomic_ref — same bytes, race-free read.
  std::int64_t head_rank() const noexcept {
    // atomic_ref<const T> is C++26; the const_cast is load-only.
    return std::atomic_ref<std::int64_t>(const_cast<std::int64_t&>(*head_))
        .load(std::memory_order_relaxed);
  }
  std::int64_t tail_rank() const noexcept {
    return tail_->load(std::memory_order_relaxed);
  }
  detail::cell_probe inspect_rank(std::int64_t rank) const noexcept {
    const auto& c = cells_[cap_.template slot<Layout>(rank)];
    return {c.rank.load(std::memory_order_relaxed),
            c.gap.load(std::memory_order_relaxed)};
  }

 private:
  // The waitable wrapper funnels its park/wake events into this queue's
  // counter block so one telemetry() call covers the whole stack.
  friend class waitable_spsc_queue<T, Layout, Telemetry, Trace>;

  using cell = detail::spmc_cell<T, Layout::kCacheAligned>;

  capacity_info cap_;
  ffq::runtime::aligned_array<cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_{0};
  // head is consumer-private: a plain counter on its own line (the whole
  // point of the SPSC specialization).
  ffq::runtime::padded<std::int64_t> head_{0};
  std::atomic<std::int64_t> closed_tail_{-1};
  // Empty under the disabled policy: occupies no storage, so sizeof is
  // identical to the uninstrumented pre-telemetry layout (verified by
  // static_asserts in tests/test_telemetry.cpp).
  [[no_unique_address]] ffq::telemetry::queue_counters<Telemetry> tel_;
  // Trace hook block: a 2-byte queue id when tracing is on, empty when
  // off (static_asserts in tests/test_trace.cpp).
  [[no_unique_address]] ffq::trace::queue_tracer<Trace> trc_{kName};
};

}  // namespace ffq::core
