// ffq.hpp — umbrella header for the FFQ queue family.
//
//   ffq::core::spsc_queue<T, Layout>  — single producer, single consumer
//   ffq::core::spmc_queue<T, Layout>  — Algorithm 1 (the paper's FFQ^s)
//   ffq::core::mpmc_queue<T, Layout>  — Algorithm 2 (the paper's FFQ^m)
//
// Layouts (Fig. 2 ablation): layout_compact, layout_aligned,
// layout_randomized, layout_aligned_randomized.
#pragma once

#include "ffq/core/layout.hpp"    // IWYU pragma: export
#include "ffq/core/mpmc.hpp"      // IWYU pragma: export
#include "ffq/core/spmc.hpp"      // IWYU pragma: export
#include "ffq/core/spsc.hpp"      // IWYU pragma: export

namespace ffq {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// Minimal interface every queue in this repository models (the FFQ
/// family, the baselines, and the harness adapters).
template <typename Q>
concept ConcurrentQueue = requires(Q q, typename Q::value_type v,
                                   typename Q::value_type& out) {
  typename Q::value_type;
  { q.enqueue(std::move(v)) };
  { q.dequeue(out) } -> std::convertible_to<bool>;
};

}  // namespace ffq
