// layout.hpp — memory-mapping policies for FFQ cell arrays.
//
// Paper §IV-A evaluates four combinations of two orthogonal techniques
// (Fig. 2):
//   * dedicated cache lines — each cell alone in a 64-byte line
//     ("Aligned"), vs. packed 24-byte cells ("Not aligned");
//   * address randomization — "we rotate the bits of the index by 4,
//     effectively placing two consecutive cells 16 positions apart in
//     memory, which will place them in distinct cache lines."
//
// A layout policy contributes (a) the cell alignment and (b) the
// logical-slot → physical-slot permutation. Policies are compile-time so
// the hot-path index computation inlines to a couple of ALU ops.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "ffq/runtime/cacheline.hpp"

namespace ffq::core {

/// Rotate the low `bits` bits of `i` left by `r` (a permutation of
/// [0, 2^bits)). With r = 4, logically consecutive slots land 16 physical
/// slots apart.
constexpr std::size_t rotate_index(std::size_t i, unsigned bits, unsigned r) noexcept {
  if (bits <= r) return i;  // too few slots to permute meaningfully
  const std::size_t mask = (std::size_t{1} << bits) - 1;
  return ((i << r) | (i >> (bits - r))) & mask;
}

/// "Not aligned": packed cells, identity mapping. Smallest footprint,
/// best cache utilization for 1p/1c, worst false sharing under fan-out.
struct layout_compact {
  static constexpr bool kCacheAligned = false;
  static constexpr const char* kName = "not-aligned";
  static constexpr std::size_t map(std::size_t slot, unsigned /*log2n*/) noexcept {
    return slot;
  }
};

/// "Aligned": each cell on a dedicated cache line, identity mapping.
struct layout_aligned {
  static constexpr bool kCacheAligned = true;
  static constexpr const char* kName = "aligned";
  static constexpr std::size_t map(std::size_t slot, unsigned /*log2n*/) noexcept {
    return slot;
  }
};

/// "Randomized": packed cells, index rotated by 4.
struct layout_randomized {
  static constexpr bool kCacheAligned = false;
  static constexpr const char* kName = "randomized";
  static constexpr unsigned kRotate = 4;
  static constexpr std::size_t map(std::size_t slot, unsigned log2n) noexcept {
    return rotate_index(slot, log2n, kRotate);
  }
};

/// "Both": dedicated cache lines and rotated indexes.
struct layout_aligned_randomized {
  static constexpr bool kCacheAligned = true;
  static constexpr const char* kName = "aligned+randomized";
  static constexpr unsigned kRotate = 4;
  static constexpr std::size_t map(std::size_t slot, unsigned log2n) noexcept {
    return rotate_index(slot, log2n, kRotate);
  }
};

/// Capacity bookkeeping shared by every queue: power-of-two size, mask,
/// and log2 precomputed for the layout permutation.
class capacity_info {
 public:
  explicit constexpr capacity_info(std::size_t capacity)
      : size_(capacity),
        mask_(capacity - 1),
        log2_(static_cast<unsigned>(std::bit_width(capacity) - 1)) {}

  static constexpr bool valid(std::size_t capacity) noexcept {
    return capacity >= 2 && std::has_single_bit(capacity);
  }

  constexpr std::size_t size() const noexcept { return size_; }
  constexpr std::size_t mask() const noexcept { return mask_; }
  constexpr unsigned log2() const noexcept { return log2_; }

  /// rank → physical slot under layout L. The modulo of the paper is a
  /// mask because capacity is a power of two.
  template <typename L>
  constexpr std::size_t slot(std::int64_t rank) const noexcept {
    return L::map(static_cast<std::size_t>(rank) & mask_, log2_);
  }

 private:
  std::size_t size_;
  std::size_t mask_;
  unsigned log2_;
};

}  // namespace ffq::core
