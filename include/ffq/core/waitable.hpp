// waitable.hpp — kernel-assisted blocking on top of the FFQ SPSC queue.
//
// FFQ's dequeue spins: right for the paper's dedicated-core setting,
// wasteful when a consumer may be idle for long stretches. The paper's
// own framework solves this with an application-level scheduler ("an OS
// thread inside of the enclave will yield the processor ... and sleeps
// on the outside only if it has no application thread to execute", §I);
// this wrapper is the kernel-only equivalent: spin briefly, then park on
// a futex-backed event count until the producer signals.
//
// The producer's hot path gains exactly one relaxed load (the "any
// waiters?" check inside notify_one); the consumer's fast path is
// unchanged. Offered for the SPSC variant, whose consumer-private head
// makes a non-committal try_dequeue possible — which the park/re-check
// protocol requires. (An SPMC consumer commits to a rank before it can
// observe emptiness, so it cannot abandon the wait; parking SPMC
// consumers needs the scheduler-integration approach instead.)
#pragma once

#include <cstdint>

#include "ffq/check/yield.hpp"
#include "ffq/core/spsc.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/eventcount.hpp"

namespace ffq::core {

template <typename T, typename Layout = layout_aligned,
          typename Telemetry = ffq::telemetry::default_policy,
          typename Trace = ffq::trace::default_policy>
class waitable_spsc_queue {
 public:
  using value_type = T;
  using telemetry_policy = Telemetry;
  using trace_policy = Trace;
  static constexpr const char* kName = "ffq-spsc-waitable";

  /// Spins this many light rounds before parking (covers the common
  /// "producer is one store away" case without a syscall).
  static constexpr int kSpinRounds = 256;

  explicit waitable_spsc_queue(std::size_t capacity) : q_(capacity) {}

  /// Producer only. Wait-free (plus one relaxed load for the wake check).
  void enqueue(T value) noexcept {
    q_.enqueue(std::move(value));
    FFQ_CHECK_YIELD();  // window between publication and the wake signal
    count_wake();
    ec_.notify_one();
  }

  /// Producer only. Bulk enqueue with one tail publication and one wake
  /// check per batch (DESIGN.md §5.8).
  template <typename It>
  void enqueue_bulk(It first, std::size_t n) noexcept {
    q_.enqueue_bulk(first, n);
    FFQ_CHECK_YIELD();  // window between publication and the wake signal
    count_wake();
    ec_.notify_one();
  }

  /// Consumer only; never blocks.
  bool try_dequeue(T& out) noexcept { return q_.try_dequeue(out); }

  /// Consumer only; never blocks. Returns the count taken (possibly 0).
  template <typename OutIt>
  std::size_t try_dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    return q_.try_dequeue_bulk(out, max_n);
  }

  /// Consumer only. Parks in the kernel while the queue is empty;
  /// returns false once closed and drained.
  bool dequeue(T& out) noexcept {
    for (int i = 0; i < kSpinRounds; ++i) {
      if (q_.try_dequeue(out)) return true;
      ffq::runtime::cpu_relax();
    }
    for (;;) {
      const auto key = ec_.prepare_wait();
      // Re-check under the announced wait: a producer that enqueued
      // after our last poll either sees our waiter count (and will
      // notify) or we see its item here.
      if (q_.try_dequeue(out)) {
        ec_.cancel_wait();
        return true;
      }
      if (q_.closed()) {
        ec_.cancel_wait();
        // Drain anything between the closed flag and the last publish.
        return q_.try_dequeue(out);
      }
      q_.tel_.on_park();
      q_.trc_.on_park();
      ec_.wait(key);
    }
  }

  /// Consumer only. Bulk variant of dequeue(): parks in the kernel while
  /// the queue is empty; returns ≥ 1 items, or 0 once closed and drained.
  template <typename OutIt>
  std::size_t dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    if (max_n == 0) return 0;
    for (int i = 0; i < kSpinRounds; ++i) {
      const std::size_t n = q_.try_dequeue_bulk(out, max_n);
      if (n > 0) return n;
      ffq::runtime::cpu_relax();
    }
    for (;;) {
      const auto key = ec_.prepare_wait();
      const std::size_t n = q_.try_dequeue_bulk(out, max_n);
      if (n > 0) {
        ec_.cancel_wait();
        return n;
      }
      if (q_.closed()) {
        ec_.cancel_wait();
        return q_.try_dequeue_bulk(out, max_n);
      }
      q_.tel_.on_park();
      q_.trc_.on_park();
      ec_.wait(key);
    }
  }

  /// Producer side: end the stream and wake any parked consumer.
  void close() noexcept {
    q_.close();
    FFQ_CHECK_YIELD();  // window between the closed flag and the wake
    count_wake();
    ec_.notify_all();
  }

  bool closed() const noexcept { return q_.closed(); }
  std::size_t capacity() const noexcept { return q_.capacity(); }
  std::int64_t approx_size() const noexcept { return q_.approx_size(); }

  /// Diagnostic: waiters currently parked (racy).
  std::uint32_t approx_waiters() const noexcept { return ec_.approx_waiters(); }

  /// Watchdog introspection, forwarded to the inner queue.
  std::int64_t head_rank() const noexcept { return q_.head_rank(); }
  std::int64_t tail_rank() const noexcept { return q_.tail_rank(); }
  auto inspect_rank(std::int64_t rank) const noexcept {
    return q_.inspect_rank(rank);
  }

  /// One unified counter block for the whole stack: park/wake events are
  /// folded into the inner queue's telemetry.
  const ffq::telemetry::queue_counters<Telemetry>& telemetry() const noexcept {
    return q_.telemetry();
  }

 private:
  /// Count a wake-up only when a consumer is (racily) parked — mirroring
  /// when notify_one/notify_all actually issue a futex wake.
  void count_wake() noexcept {
    if constexpr (Telemetry::kEnabled || Trace::kEnabled) {
      if (ec_.approx_waiters() > 0) {
        q_.tel_.on_wake();
        q_.trc_.on_wake();
      }
    }
  }

  spsc_queue<T, Layout, Telemetry, Trace> q_;
  ffq::runtime::eventcount ec_;
};

}  // namespace ffq::core
