// mpmc.hpp — FFQ^m: the multi-producer extension (paper Algorithm 2).
//
// Differences from FFQ^s (§III-B):
//  * `tail` becomes a shared fetch-and-add ticket dispenser, like `head`.
//  * Producers must exclude one another on a cell. A producer wins a free
//    cell by double-word CAS of the adjacent (rank, gap) pair from
//    (-1, g) to (-2, g): the -2 reservation keeps consumers out (they
//    look for rank == mine ≥ 0) while preventing another producer from
//    claiming the cell or moving `gap` — which closes both races the
//    paper describes (lost update by a sleeping producer; "enqueue in the
//    past" past a moved gap).
//  * Gap announcements also go through the DWCAS, (r, g) → (r, rank), so
//    a gap can never move backwards and can never be installed over a
//    concurrent claim.
//  * Progress: enqueue is lock-free (not wait-free) under the
//    free-slot assumption; dequeue is no longer lock-free because a
//    stalled producer holding a -2 reservation can make consumers of that
//    rank wait (paper §III-B, last paragraph).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/runtime/dwcas.hpp"

namespace ffq::core {

namespace detail {

inline constexpr std::int64_t kCellFree = -1;      ///< no item, claimable
inline constexpr std::int64_t kCellReserved = -2;  ///< producer mid-write

/// MPMC cell: the (rank, gap) pair sits in one 16-byte unit ("placing the
/// rank and gap fields consecutively in the same cache line", §III-B) so
/// a single cmpxchg16b covers both.
template <typename T>
struct mpmc_cell_fields {
  ffq::runtime::atomic_i64_pair rg;  ///< first = rank, second = gap
  alignas(alignof(T)) unsigned char storage[sizeof(T)];

  mpmc_cell_fields() noexcept {
    rg.first.store(kCellFree, std::memory_order_relaxed);
    rg.second.store(-1, std::memory_order_relaxed);
  }

  T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
};

template <typename T, bool CacheAligned>
struct mpmc_cell : mpmc_cell_fields<T> {};

template <typename T>
struct alignas(ffq::runtime::kCacheLineSize) mpmc_cell<T, true>
    : mpmc_cell_fields<T> {};

}  // namespace detail

template <typename T, typename Layout = layout_aligned>
class mpmc_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "cell publication cannot be rolled back after a throwing move");

 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr const char* kName = "ffq-mpmc";

  explicit mpmc_queue(std::size_t capacity)
      : cap_(capacity), cells_(capacity) {
    assert(capacity_info::valid(capacity) && "capacity must be a power of two >= 2");
  }

  mpmc_queue(const mpmc_queue&) = delete;
  mpmc_queue& operator=(const mpmc_queue&) = delete;

  ~mpmc_queue() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      auto& c = cells_[i];
      if (c.rg.first.load(std::memory_order_relaxed) >= 0) {
        std::destroy_at(c.ptr());
      }
    }
  }

  /// Enqueue one item (any number of producer threads). Lock-free while
  /// the queue has free cells.
  void enqueue(T value) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    ffq::runtime::yielding_backoff backoff;
    std::size_t gaps_this_call = 0;
    for (;;) {
      const std::int64_t rank = tail_->fetch_add(1, std::memory_order_relaxed);
      auto& c = cells_[cap_.template slot<Layout>(rank)];
      for (;;) {
        const std::int64_t g = c.rg.second.load(std::memory_order_acquire);
        if (g >= rank) {
          // Our rank is already "in the past" at this cell (another
          // producer announced a gap covering it): abandon the rank —
          // consumers skip it via the same gap — and draw a fresh one.
          break;
        }
        const std::int64_t r = c.rg.first.load(std::memory_order_acquire);
        if (r >= 0) {
          if (gaps_this_call >= cap_.size() && r < rank) {
            // One full sweep produced only gaps: the ring is full. Stop
            // burning ranks (each dead rank costs every consumer a
            // fetch-add) and wait for this cell to drain; we still hold a
            // valid rank for it. Lock-freedom is already forfeit in this
            // regime (see the class comment on progress).
            //
            // Waiting is only sound while the cell holds an *older* rank
            // (r < ours): consumers reach r before our rank, so the cell
            // drains independently of us. If another producer already
            // published a *later* rank here (r > ours, possible with
            // concurrent producers on a full ring), a consumer may be
            // parked on our rank behind it — waiting would deadlock that
            // consumer, so the gap for our rank must be announced.
            // (Found by the model checker; see tests/test_model.cpp.)
            backoff.pause();
            continue;
          }
          // Occupied by an unconsumed item: announce the gap. The DWCAS
          // fails if the item is consumed or the gap moves concurrently;
          // then re-examine the cell.
          typename ffq::runtime::atomic_i64_pair::value_type expected{r, g};
          if (c.rg.compare_exchange(expected, {r, rank})) {
            gaps_.fetch_add(1, std::memory_order_relaxed);
            ++gaps_this_call;
            break;  // gap announced for our rank; acquire a new rank
          }
          continue;
        }
        if (r == detail::kCellFree) {
          // Claim attempt: (-1, g) → (-2, g). Failure means another
          // producer claimed it or a gap moved; re-examine.
          typename ffq::runtime::atomic_i64_pair::value_type expected{
              detail::kCellFree, g};
          if (c.rg.compare_exchange(expected, {detail::kCellReserved, g})) {
            std::construct_at(c.ptr(), std::move(value));
            c.rg.first.store(rank, std::memory_order_release);  // publish
            return;
          }
          continue;
        }
        // r == kCellReserved: another producer is between its claim and
        // its publish; wait for it (this is the non-wait-free window).
        backoff.pause();
      }
    }
  }

  /// Dequeue one item (any number of consumer threads). Same protocol as
  /// spmc_queue::dequeue; a -2 reservation reads as "producer still
  /// writing" and is awaited.
  bool dequeue(T& out) noexcept {
    std::int64_t rank = head_->fetch_add(1, std::memory_order_relaxed);
    ffq::runtime::yielding_backoff backoff;
    for (;;) {
      auto& c = cells_[cap_.template slot<Layout>(rank)];
      for (;;) {
        if (c.rg.first.load(std::memory_order_acquire) == rank) {
          out = std::move(*c.ptr());
          std::destroy_at(c.ptr());
          c.rg.first.store(detail::kCellFree, std::memory_order_release);
          return true;
        }
        if (c.rg.second.load(std::memory_order_acquire) >= rank &&
            c.rg.first.load(std::memory_order_acquire) != rank) {
          skips_.fetch_add(1, std::memory_order_relaxed);
          rank = head_->fetch_add(1, std::memory_order_relaxed);
          backoff.reset();
          break;
        }
        const std::int64_t closed = closed_tail_.load(std::memory_order_acquire);
        if (closed >= 0 && rank >= closed) return false;
        backoff.pause();
      }
    }
  }

  /// Close at the current tail. Precondition: every enqueue() call has
  /// returned (with concurrent producers a tail snapshot is only
  /// meaningful once they quiesce).
  void close() noexcept {
    closed_tail_.store(tail_->load(std::memory_order_acquire),
                       std::memory_order_release);
  }

  bool closed() const noexcept {
    return closed_tail_.load(std::memory_order_acquire) >= 0;
  }

  std::size_t capacity() const noexcept { return cap_.size(); }

  std::int64_t approx_size() const noexcept {
    const auto t = tail_->load(std::memory_order_relaxed);
    const auto h = head_->load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

  std::uint64_t gaps_created() const noexcept {
    return gaps_.load(std::memory_order_relaxed);
  }
  std::uint64_t consumer_skips() const noexcept {
    return skips_.load(std::memory_order_relaxed);
  }

 private:
  using cell = detail::mpmc_cell<T, Layout::kCacheAligned>;

  capacity_info cap_;
  ffq::runtime::aligned_array<cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_{0};
  ffq::runtime::padded<std::atomic<std::int64_t>> head_{0};
  std::atomic<std::int64_t> closed_tail_{-1};
  std::atomic<std::uint64_t> gaps_{0};
  std::atomic<std::uint64_t> skips_{0};
};

}  // namespace ffq::core
