// mpmc.hpp — FFQ^m: the multi-producer extension (paper Algorithm 2).
//
// Differences from FFQ^s (§III-B):
//  * `tail` becomes a shared fetch-and-add ticket dispenser, like `head`.
//  * Producers must exclude one another on a cell. A producer wins a free
//    cell by double-word CAS of the adjacent (rank, gap) pair from
//    (-1, g) to (-2, g): the -2 reservation keeps consumers out (they
//    look for rank == mine ≥ 0) while preventing another producer from
//    claiming the cell or moving `gap` — which closes both races the
//    paper describes (lost update by a sleeping producer; "enqueue in the
//    past" past a moved gap).
//  * Gap announcements also go through the DWCAS, (r, g) → (r, rank), so
//    a gap can never move backwards and can never be installed over a
//    concurrent claim.
//  * Progress: enqueue is lock-free (not wait-free) under the
//    free-slot assumption; dequeue is no longer lock-free because a
//    stalled producer holding a -2 reservation can make consumers of that
//    rank wait (paper §III-B, last paragraph).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "ffq/check/yield.hpp"
#include "ffq/core/layout.hpp"
#include "ffq/runtime/aligned_buffer.hpp"
#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/core/spmc.hpp"  // detail::cell_probe
#include "ffq/runtime/dwcas.hpp"
#include "ffq/telemetry/counters.hpp"
#include "ffq/trace/tracer.hpp"

namespace ffq::core {

namespace detail {

inline constexpr std::int64_t kCellFree = -1;      ///< no item, claimable
inline constexpr std::int64_t kCellReserved = -2;  ///< producer mid-write

/// MPMC cell: the (rank, gap) pair sits in one 16-byte unit ("placing the
/// rank and gap fields consecutively in the same cache line", §III-B) so
/// a single cmpxchg16b covers both.
template <typename T>
struct mpmc_cell_fields {
  ffq::runtime::atomic_i64_pair rg;  ///< first = rank, second = gap
  alignas(alignof(T)) unsigned char storage[sizeof(T)];

  mpmc_cell_fields() noexcept {
    rg.first.store(kCellFree, std::memory_order_relaxed);
    rg.second.store(-1, std::memory_order_relaxed);
  }

  T* ptr() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
};

template <typename T, bool CacheAligned>
struct mpmc_cell : mpmc_cell_fields<T> {};

template <typename T>
struct alignas(ffq::runtime::kCacheLineSize) mpmc_cell<T, true>
    : mpmc_cell_fields<T> {};

}  // namespace detail

template <typename T, typename Layout = layout_aligned,
          typename Telemetry = ffq::telemetry::default_policy,
          typename Trace = ffq::trace::default_policy>
class mpmc_queue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "cell publication cannot be rolled back after a throwing move");

 public:
  using value_type = T;
  using layout_type = Layout;
  using telemetry_policy = Telemetry;
  using trace_policy = Trace;
  static constexpr const char* kName = "ffq-mpmc";

  explicit mpmc_queue(std::size_t capacity)
      : cap_(capacity), cells_(capacity) {
    assert(capacity_info::valid(capacity) && "capacity must be a power of two >= 2");
  }

  mpmc_queue(const mpmc_queue&) = delete;
  mpmc_queue& operator=(const mpmc_queue&) = delete;

  ~mpmc_queue() {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      auto& c = cells_[i];
      if (c.rg.first.load(std::memory_order_relaxed) >= 0) {
        std::destroy_at(c.ptr());
      }
    }
  }

  /// Enqueue one item (any number of producer threads). Lock-free while
  /// the queue has free cells.
  void enqueue(T value) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    std::size_t gaps_this_call = 0;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the rank draw
      const std::int64_t rank = tail_->fetch_add(1, std::memory_order_relaxed);
      if (place_at_rank(rank, value, gaps_this_call)) return;
    }
  }

  /// Enqueue `n` items from `first` (any number of producer threads).
  /// Acquires a *block* of ranks with a single fetch-and-add of `tail`
  /// instead of one per item, then resolves each rank against its cell
  /// with the same DWCAS protocol as enqueue(). Ranks that die inside the
  /// block (another producer's gap covers them, or this call turns them
  /// into gaps) are dropped in place; a fresh block is drawn only when
  /// the current one is exhausted, so the common case pays one FAA per
  /// batch.
  template <typename It>
  void enqueue_bulk(It first, std::size_t n) noexcept {
    assert(closed_tail_.load(std::memory_order_relaxed) < 0 &&
           "enqueue after close()");
    tel_.on_bulk(n);
    std::size_t gaps_this_call = 0;
    std::size_t remaining = n;
    std::int64_t next = 0;
    std::int64_t block_end = 0;  // empty block: forces the first FAA
    while (remaining > 0) {
      T item = *first;  // place_at_rank consumes it only on success
      for (;;) {
        FFQ_CHECK_YIELD();  // scheduling point: before each rank attempt
        if (next == block_end) {
          next = tail_->fetch_add(static_cast<std::int64_t>(remaining),
                                  std::memory_order_relaxed);
          block_end = next + static_cast<std::int64_t>(remaining);
          tel_.on_rank_block_faa();
        }
        const std::int64_t rank = next++;
        if (place_at_rank(rank, item, gaps_this_call)) break;
      }
      ++first;
      --remaining;
    }
  }

  /// Dequeue one item (any number of consumer threads). Same protocol as
  /// spmc_queue::dequeue; a -2 reservation reads as "producer still
  /// writing" and is awaited.
  bool dequeue(T& out) noexcept {
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the rank claim
      const std::int64_t rank = head_->fetch_add(1, std::memory_order_relaxed);
      switch (resolve_rank(rank, [&](T&& v) { out = std::move(v); })) {
        case rank_state::taken:
          return true;
        case rank_state::skipped:
          continue;
        case rank_state::drained:
          return false;
      }
    }
  }

  /// Non-blocking dequeue: returns false immediately when nothing is
  /// claimable (tail ≤ head) instead of committing a rank and spinning.
  /// Unlike the SPMC variant, a claimed rank below tail can still be
  /// mid-write (-2 reservation) — the wait for the reserving producer is
  /// the same one dequeue() performs.
  bool try_dequeue(T& out) noexcept {
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the emptiness check
      const std::int64_t t = tail_->load(std::memory_order_acquire);
      const std::int64_t h = head_->load(std::memory_order_relaxed);
      if (t <= h) return false;
      FFQ_CHECK_YIELD();  // window: a racing consumer may move head here
      const std::int64_t rank = head_->fetch_add(1, std::memory_order_relaxed);
      switch (resolve_rank(rank, [&](T&& v) { out = std::move(v); })) {
        case rank_state::taken:
          return true;
        case rank_state::skipped:
          continue;
        case rank_state::drained:
          return false;
      }
    }
  }

  /// Non-blocking bulk dequeue: returns 0 immediately when nothing is
  /// claimable (tail ≤ head). A claimed rank below the observed tail can
  /// still be mid-write here (tail is a ticket dispenser, not a
  /// publication watermark), so resolution may wait for a reserving
  /// producer exactly as try_dequeue does — but never for an empty queue.
  template <typename OutIt>
  std::size_t try_dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    if (max_n == 0) return 0;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the emptiness check
      const std::int64_t t = tail_->load(std::memory_order_acquire);
      const std::int64_t h = head_->load(std::memory_order_relaxed);
      const std::int64_t avail = t - h;
      if (avail <= 0) return 0;  // nothing claimable: do not claim a rank
      const std::int64_t k =
          std::min<std::int64_t>(static_cast<std::int64_t>(max_n), avail);
      FFQ_CHECK_YIELD();  // window: a racing consumer may move head here
      const std::int64_t first = head_->fetch_add(k, std::memory_order_relaxed);
      if (k > 1) tel_.on_rank_block_faa();
      std::size_t taken = 0;
      bool drained = false;
      for (std::int64_t rank = first; rank < first + k && !drained; ++rank) {
        switch (resolve_rank(rank, [&](T&& v) {
          *out = std::move(v);
          ++out;
        })) {
          case rank_state::taken:
            ++taken;
            break;
          case rank_state::skipped:
            break;
          case rank_state::drained:
            drained = true;
            break;
        }
      }
      if (taken > 0 || drained) {
        if (taken > 0) tel_.on_bulk(taken);
        return taken;
      }
      // Whole run was gaps: re-check availability before claiming again.
    }
  }

  /// Dequeue up to `max_n` items: one head fetch-and-add claims the whole
  /// run, gap ranks inside it are dropped without a fresh FAA (see
  /// spmc_queue::dequeue_bulk). Returns the count taken (≥ 1); 0 only
  /// once closed and drained.
  template <typename OutIt>
  std::size_t dequeue_bulk(OutIt out, std::size_t max_n) noexcept {
    if (max_n == 0) return 0;
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: before the run claim
      const std::int64_t t = tail_->load(std::memory_order_acquire);
      const std::int64_t h = head_->load(std::memory_order_relaxed);
      const std::int64_t avail = t - h;
      const std::int64_t k =
          avail > 1 ? std::min<std::int64_t>(
                          static_cast<std::int64_t>(max_n), avail)
                    : 1;
      FFQ_CHECK_YIELD();  // window: head may be stale by claim time
      const std::int64_t first = head_->fetch_add(k, std::memory_order_relaxed);
      if (k > 1) tel_.on_rank_block_faa();
      std::size_t taken = 0;
      bool drained = false;
      for (std::int64_t rank = first; rank < first + k && !drained; ++rank) {
        switch (resolve_rank(rank, [&](T&& v) {
          *out = std::move(v);
          ++out;
        })) {
          case rank_state::taken:
            ++taken;
            break;
          case rank_state::skipped:
            break;
          case rank_state::drained:
            drained = true;
            break;
        }
      }
      if (taken > 0 || drained) {
        if (taken > 0) tel_.on_bulk(taken);
        return taken;
      }
    }
  }

  /// Close at the current tail. Precondition: every enqueue() call has
  /// returned (with concurrent producers a tail snapshot is only
  /// meaningful once they quiesce).
  void close() noexcept {
    closed_tail_.store(tail_->load(std::memory_order_acquire),
                       std::memory_order_release);
  }

  bool closed() const noexcept {
    return closed_tail_.load(std::memory_order_acquire) >= 0;
  }

  std::size_t capacity() const noexcept { return cap_.size(); }

  std::int64_t approx_size() const noexcept {
    const auto t = tail_->load(std::memory_order_relaxed);
    const auto h = head_->load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

  std::uint64_t gaps_created() const noexcept { return tel_.gaps_created(); }
  std::uint64_t consumer_skips() const noexcept {
    return tel_.consumer_skips();
  }

  /// The queue's event-counter block (empty under the disabled policy).
  const ffq::telemetry::queue_counters<Telemetry>& telemetry() const noexcept {
    return tel_;
  }

  /// Watchdog introspection (racy, diagnostic only). rank -2 in the
  /// probe = a producer's in-flight reservation.
  std::int64_t head_rank() const noexcept {
    return head_->load(std::memory_order_relaxed);
  }
  std::int64_t tail_rank() const noexcept {
    return tail_->load(std::memory_order_relaxed);
  }
  detail::cell_probe inspect_rank(std::int64_t rank) const noexcept {
    const auto& c = cells_[cap_.template slot<Layout>(rank)];
    return {c.rg.first.load(std::memory_order_relaxed),
            c.rg.second.load(std::memory_order_relaxed)};
  }

 private:
  using cell = detail::mpmc_cell<T, Layout::kCacheAligned>;

  /// Try to install `value` at `rank` (Algorithm 2's per-cell races).
  /// True: value moved into the cell and published. False: the rank died
  /// — covered by another producer's gap, or turned into a gap by this
  /// call — and the caller must draw a fresh rank for the same value.
  bool place_at_rank(std::int64_t rank, T& value,
                     std::size_t& gaps_this_call) noexcept {
    const std::uint64_t t0 = trc_.now();
    auto& c = cells_[cap_.template slot<Layout>(rank)];
    ffq::runtime::yielding_backoff backoff;
    // Spin telemetry accumulates in registers and flushes once per
    // return — one RMW per episode, not one per pause. The wait loops
    // below also flush every kFlushEvery pauses so a producer stuck on a
    // full ring stays visible to live snapshots.
    std::uint64_t stalls = 0, pauses = 0, retries = 0;
    bool stall_traced = false;
    const auto flush_waits = [&]() noexcept {
      tel_.on_full_stalls(stalls);
      tel_.on_backoff_pauses(pauses);
      tel_.on_dwcas_retries(retries);
      stalls = pauses = retries = 0;
    };
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: one placement round
      const std::int64_t g = c.rg.second.load(std::memory_order_acquire);
      if (g >= rank) {
        // Our rank is already "in the past" at this cell (another
        // producer announced a gap covering it): abandon the rank —
        // consumers skip it via the same gap — and draw a fresh one.
        flush_waits();
        return false;
      }
      const std::int64_t r = c.rg.first.load(std::memory_order_acquire);
      if (r >= 0) {
        if (gaps_this_call >= cap_.size() && r < rank) {
          // One full sweep produced only gaps: the ring is full. Stop
          // burning ranks (each dead rank costs every consumer a
          // fetch-add) and wait for this cell to drain; we still hold a
          // valid rank for it. Lock-freedom is already forfeit in this
          // regime (see the class comment on progress).
          //
          // Waiting is only sound while the cell holds an *older* rank
          // (r < ours): consumers reach r before our rank, so the cell
          // drains independently of us. If another producer already
          // published a *later* rank here (r > ours, possible with
          // concurrent producers on a full ring), a consumer may be
          // parked on our rank behind it — waiting would deadlock that
          // consumer, so the gap for our rank must be announced.
          // (Found by the model checker; see tests/test_model.cpp.)
          ++stalls;
          if (!stall_traced) {  // one instant per episode, not per pause
            trc_.on_full_stall(rank);
            stall_traced = true;
          }
          if (ffq::telemetry::flush_due(stalls)) flush_waits();
          backoff.pause();
          continue;
        }
        // Occupied by an unconsumed item: announce the gap. The DWCAS
        // fails if the item is consumed or the gap moves concurrently;
        // then re-examine the cell.
        typename ffq::runtime::atomic_i64_pair::value_type expected{r, g};
        if (c.rg.compare_exchange(expected, {r, rank})) {
          tel_.on_gap_created();
          trc_.on_gap(rank);
          ++gaps_this_call;
          flush_waits();
          return false;  // gap announced for our rank; acquire a new rank
        }
        ++retries;
        trc_.on_dwcas_retry(rank);
        continue;
      }
      if (r == detail::kCellFree) {
        // Claim attempt: (-1, g) → (-2, g). Failure means another
        // producer claimed it or a gap moved; re-examine.
        typename ffq::runtime::atomic_i64_pair::value_type expected{
            detail::kCellFree, g};
        if (c.rg.compare_exchange(expected, {detail::kCellReserved, g})) {
          // The -2 reservation is now visible; the window before the
          // publish below is Algorithm 2's non-wait-free wait (and the
          // watchdog's stuck_producer state), so the checker gets a
          // scheduling point inside it.
          FFQ_CHECK_YIELD();
          std::construct_at(c.ptr(), std::move(value));
          FFQ_CHECK_YIELD();  // window between the data write and publication
          c.rg.first.store(rank, std::memory_order_release);  // publish
          flush_waits();
          trc_.on_enqueue(t0, rank);
          return true;
        }
        ++retries;
        trc_.on_dwcas_retry(rank);
        continue;
      }
      // r == kCellReserved: another producer is between its claim and
      // its publish; wait for it (this is the non-wait-free window).
      ++pauses;
      if (ffq::telemetry::flush_due(pauses)) flush_waits();
      backoff.pause();
    }
  }

  enum class rank_state { taken, skipped, drained };

  /// Resolve one claimed rank against its cell (the scalar dequeue body),
  /// shared by dequeue / try_dequeue / dequeue_bulk.
  template <typename Sink>
  rank_state resolve_rank(std::int64_t rank, Sink&& sink) noexcept {
    const std::uint64_t t0 = trc_.now();
    auto& c = cells_[cap_.template slot<Layout>(rank)];
    ffq::runtime::yielding_backoff backoff;
    std::uint64_t pauses = 0;  // flushed once per episode, not per pause
    for (;;) {
      FFQ_CHECK_YIELD();  // scheduling point: one resolve round
      if (c.rg.first.load(std::memory_order_acquire) == rank) {
        sink(std::move(*c.ptr()));
        std::destroy_at(c.ptr());
        c.rg.first.store(detail::kCellFree, std::memory_order_release);
        tel_.on_backoff_pauses(pauses);
        trc_.on_dequeue(t0, rank);
        return rank_state::taken;
      }
      // Distinct gap load and rank re-check, with a scheduling point in
      // the line-29 window between them (see spmc_queue::resolve_rank).
      if (c.rg.second.load(std::memory_order_acquire) >= rank) {
        FFQ_CHECK_YIELD();  // line-29 window
        if (c.rg.first.load(std::memory_order_acquire) != rank) {
          tel_.on_consumer_skip();
          trc_.on_skip(rank);
          tel_.on_backoff_pauses(pauses);
          return rank_state::skipped;
        }
        continue;  // re-check found our rank after all: take it next round
      }
      const std::int64_t closed = closed_tail_.load(std::memory_order_acquire);
      if (closed >= 0 && rank >= closed) {
        tel_.on_backoff_pauses(pauses);
        return rank_state::drained;
      }
      ++pauses;
      if (ffq::telemetry::flush_due(pauses)) {
        tel_.on_backoff_pauses(pauses);
        pauses = 0;
      }
      backoff.pause();
    }
  }

  capacity_info cap_;
  ffq::runtime::aligned_array<cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_{0};
  ffq::runtime::padded<std::atomic<std::int64_t>> head_{0};
  std::atomic<std::int64_t> closed_tail_{-1};
  // Replaces the old ad-hoc gaps_/skips_ pair. Empty under the disabled
  // policy (static_asserts in tests/test_telemetry.cpp).
  [[no_unique_address]] ffq::telemetry::queue_counters<Telemetry> tel_;
  // Trace hook block: a 2-byte queue id when tracing is on, empty when
  // off (static_asserts in tests/test_trace.cpp).
  [[no_unique_address]] ffq::trace::queue_tracer<Trace> trc_{kName};
};

}  // namespace ffq::core
