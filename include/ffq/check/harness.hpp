// harness.hpp — run a producer/consumer program over a *real* queue under
// the cooperative scheduler, then judge the run with the oracles.
//
// The queue headers must be compiled with FFQ_CHECK=1 in this TU (the
// `check` preset sets it globally; tests define it before any include) so
// their FFQ_CHECK_YIELD() points are live — otherwise a whole queue
// operation runs as one indivisible block and the exploration is vacuous.
//
// The program shape is fixed and small on purpose: P producers each
// enqueue `items_per_producer` values (scalar or in batches), the last
// producer to finish closes the queue, and C consumers drain it with
// try_dequeue / try_dequeue_bulk + yield loops. Blocking dequeues are
// never used — the waitable queue's park path enters a futex on the one
// OS thread everything shares, and the SPMC/MPMC blocking paths commit to
// a rank before observing emptiness; the try_* paths exercise the same
// cell protocol without either hazard.
//
// Values encode their origin (producer * kProducerStride + seq), so a run
// needs no side channel for the oracles: conservation, per-producer FIFO
// per consumer stream, and — for histories of <= 64 ops — Wing–Gong
// linearizability over invocation/response stamps drawn from a monotone
// counter (exact in the cooperative setting: stamps only advance when the
// harness advances).
//
// Endpoint-style queues (ffq::shard::fabric: producer(p)/consumer()
// handles, constructed from (producers, shard_capacity)) run the same
// program through their endpoints. Fabric runs must set
// check_linearizability = false — a sharded fabric is deliberately not
// linearizable to one FIFO; conservation and per-producer FIFO are its
// contract.
#pragma once

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "ffq/check/drivers.hpp"
#include "ffq/check/oracles.hpp"
#include "ffq/check/sched.hpp"
#include "ffq/check/schedule.hpp"
#include "ffq/check/yield.hpp"
#include "ffq/runtime/rng.hpp"

namespace ffq::check {

namespace detail {

/// Fabric-like queues (ffq::shard::fabric) expose per-role endpoints —
/// producer(p) / consumer() — instead of direct enqueue/dequeue, and are
/// constructed from (producers, shard_capacity).
template <typename Queue>
concept has_endpoints = requires(Queue& q) {
  q.producer(std::size_t{0});
  q.consumer();
};

/// Forwarding endpoint for plain queues, so the program body below is
/// written once against the endpoint interface.
template <typename Queue>
struct queue_ref {
  Queue* q;
  void enqueue(long long v) noexcept { q->enqueue(v); }
  template <typename It>
  void enqueue_bulk(It first, std::size_t n) noexcept {
    q->enqueue_bulk(first, n);
  }
  bool try_dequeue(long long& v) noexcept { return q->try_dequeue(v); }
  template <typename OutIt>
    requires requires(Queue& qq, OutIt o) { qq.try_dequeue_bulk(o, std::size_t{1}); }
  std::size_t try_dequeue_bulk(OutIt out, std::size_t n) noexcept {
    return q->try_dequeue_bulk(out, n);
  }
};

template <typename Queue>
auto producer_endpoint(Queue& q, int p) {
  if constexpr (has_endpoints<Queue>) {
    return q.producer(static_cast<std::size_t>(p));
  } else {
    (void)p;
    return queue_ref<Queue>{&q};
  }
}

template <typename Queue>
auto consumer_endpoint(Queue& q) {
  if constexpr (has_endpoints<Queue>) {
    return q.consumer();
  } else {
    return queue_ref<Queue>{&q};
  }
}

}  // namespace detail

struct program_config {
  std::size_t capacity = 8;
  int producers = 1;
  int consumers = 2;
  int items_per_producer = 6;
  /// 0 = scalar enqueue; n > 0 = enqueue_bulk in batches of n.
  int enqueue_batch = 0;
  /// 0 = scalar try_dequeue; n > 0 = try_dequeue_bulk of up to n.
  int dequeue_batch = 0;
  /// Abort the run (as a liveness violation) past this many steps.
  std::uint64_t max_steps = 1'000'000;
  bool check_linearizability = true;
};

struct run_result {
  bool ok = true;
  std::string violation;        // empty when ok
  schedule sched;               // every pick, replayable via replay_driver
  std::uint64_t steps = 0;
  std::vector<long long> enqueued;
  std::vector<long long> dequeued_sorted;          // ascending
  std::vector<std::vector<long long>> streams;     // per consumer, in order
};

/// Run one program over a freshly-constructed Queue under `driver`.
/// Driver is anything with `int pick(const std::vector<int>&)`.
template <typename Queue, typename Driver>
run_result run_program(const program_config& cfg, Driver& driver) {
  run_result res;
  // Fabric queues take (producers, shard_capacity); plain queues take
  // (capacity). Guaranteed copy elision lets both construct in place.
  auto q = [&]() -> Queue {
    if constexpr (detail::has_endpoints<Queue>) {
      return Queue(static_cast<std::size_t>(cfg.producers), cfg.capacity);
    } else {
      return Queue(cfg.capacity);
    }
  }();
  coop_sched sched;

  std::uint64_t stamp = 0;  // monotone invocation/response counter
  std::vector<lin_op> history;
  res.streams.assign(static_cast<std::size_t>(cfg.consumers), {});
  int producers_left = cfg.producers;

  for (int p = 0; p < cfg.producers; ++p) {
    sched.spawn([&, p] {
      auto ep = detail::producer_endpoint(q, p);
      std::vector<long long> batch;
      auto flush = [&] {
        if (batch.empty()) return;
        const std::uint64_t inv = stamp++;
        ep.enqueue_bulk(batch.begin(), batch.size());
        const std::uint64_t ret = stamp++;
        for (long long v : batch) {
          history.push_back({p, true, v, inv, ret});
        }
        batch.clear();
      };
      for (int i = 0; i < cfg.items_per_producer; ++i) {
        const long long v = static_cast<long long>(p) * kProducerStride + i;
        res.enqueued.push_back(v);
        if (cfg.enqueue_batch > 0) {
          batch.push_back(v);
          if (static_cast<int>(batch.size()) >= cfg.enqueue_batch) flush();
        } else {
          const std::uint64_t inv = stamp++;
          ep.enqueue(v);
          history.push_back({p, true, v, inv, stamp++});
        }
      }
      flush();
      if (--producers_left == 0) q.close();
    });
  }

  for (int c = 0; c < cfg.consumers; ++c) {
    sched.spawn([&, c] {
      auto& stream = res.streams[static_cast<std::size_t>(c)];
      const int tid = cfg.producers + c;
      auto ep = detail::consumer_endpoint(q);
      using endpoint_t = decltype(ep);
      std::vector<long long> buf(
          cfg.dequeue_batch > 0 ? static_cast<std::size_t>(cfg.dequeue_batch)
                                : std::size_t{1});
      for (;;) {
        const std::uint64_t inv = stamp++;
        std::size_t n = 0;
        // Every endpoint with a non-committal bulk claim (SPSC family,
        // SPMC/MPMC try_dequeue_bulk, the fabric's scheduler) takes the
        // bulk path; the rest fall back to the scalar try path.
        constexpr bool kHasTryBulk = requires(endpoint_t& e, long long* it) {
          e.try_dequeue_bulk(it, std::size_t{1});
        };
        if constexpr (kHasTryBulk) {
          if (cfg.dequeue_batch > 0) {
            n = ep.try_dequeue_bulk(buf.begin(), buf.size());
          }
        }
        if (n == 0) {
          long long v = 0;
          n = ep.try_dequeue(v) ? 1 : 0;
          buf[0] = v;
        }
        if (n > 0) {
          const std::uint64_t ret = stamp++;
          for (std::size_t i = 0; i < n; ++i) {
            stream.push_back(buf[i]);
            history.push_back({tid, false, buf[i], inv, ret});
          }
          continue;
        }
        if (q.closed()) break;  // closed and this try found nothing: done
        coop_sched::yield();    // empty but open: let someone else run
      }
    });
  }

  while (!sched.all_done()) {
    const std::vector<int> runnable = sched.runnable();
    const int pick = driver.pick(runnable);
    if (pick < 0) {
      res.ok = false;
      res.violation = "schedule: driver stopped before the program finished";
      res.steps = sched.steps();
      return res;
    }
    res.sched.picks.push_back(pick);
    sched.step(pick);
    if (sched.steps() > cfg.max_steps) {
      res.ok = false;
      res.violation = "liveness: step bound " + std::to_string(cfg.max_steps) +
                      " exceeded (livelock or starvation)";
      res.steps = sched.steps();
      return res;
    }
  }
  res.steps = sched.steps();

  // Oracles, cheapest first.
  std::vector<long long> got;
  for (const auto& s : res.streams) got.insert(got.end(), s.begin(), s.end());
  res.dequeued_sorted = got;
  std::sort(res.dequeued_sorted.begin(), res.dequeued_sorted.end());

  std::string why;
  if (!check_conservation(res.enqueued, got, &why) ||
      !check_per_producer_fifo(res.streams, &why) ||
      (cfg.check_linearizability && !check_linearizable(history, &why))) {
    res.ok = false;
    res.violation = why;
  }
  return res;
}

struct fuzz_result {
  bool ok = true;
  std::uint64_t runs = 0;
  std::uint64_t failing_seed = 0;  // meaningful only when !ok
  run_result failure;              // first failing run (when !ok)
};

/// Run `schedules` independent programs over Queue, each under a fresh
/// random driver with a seed derived from `seed` via splitmix64 — so any
/// failure is reproducible from (seed, run index) or, better, from the
/// schedule string inside `failure`.
template <typename Queue>
fuzz_result fuzz_queue(const program_config& cfg, std::uint64_t seed,
                       std::uint64_t schedules) {
  fuzz_result out;
  ffq::runtime::splitmix64 seeder(seed);
  for (std::uint64_t i = 0; i < schedules; ++i) {
    const std::uint64_t run_seed = seeder.next();
    random_driver d(run_seed);
    run_result r = run_program<Queue>(cfg, d);
    ++out.runs;
    if (!r.ok) {
      out.ok = false;
      out.failing_seed = run_seed;
      out.failure = std::move(r);
      return out;
    }
  }
  return out;
}

/// Replay a recorded schedule against Queue. Divergence (a pick naming a
/// finished task, or the schedule ending early) is reported as a
/// violation — the program must match the one that produced the trace.
template <typename Queue>
run_result replay_queue(const program_config& cfg, const schedule& s) {
  replay_driver d(s);
  run_result r = run_program<Queue>(cfg, d);
  if (!r.ok && d.diverged()) {
    r.violation = "replay: schedule diverged from the program (pick named a "
                  "task that was not runnable)";
  }
  return r;
}

}  // namespace ffq::check
