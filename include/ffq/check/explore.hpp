// explore.hpp — schedule exploration over the model machines.
//
// The model substrate (include/ffq/model) can clone and re-enter states,
// which unlocks the driver the real-queue harness cannot have: CHESS-style
// preemption-bounded exhaustive DFS. A schedule's *preemptions* are the
// context switches taken while the previously-running thread could still
// run; continuing the same thread, or switching away from a finished one,
// is free. Most concurrency bugs need very few preemptions (CHESS's
// empirical result), so bound 2 already covers the paper's named races
// while keeping small configurations exhaustively checkable.
//
// Soundness notes:
//  * States are memoized on (world encoding, last-running thread) with
//    the best remaining budget seen; a state is re-explored only with
//    strictly more budget. Spin self-loops (full-ring throttles) hit the
//    memo immediately, so the search terminates without fairness hacks.
//  * The world's monitors (consumed counts, gap accounting) are checked
//    after every step — a safety violation surfaces on the exact edge
//    where it happens, with the DFS path as a replayable witness.
//  * At terminal states (all threads done) the explorer additionally
//    requires every value consumed exactly once and consistent gap
//    accounting.
//
// The BFS checker (model/checker.hpp) remains the full-interleaving
// authority for tiny configs; this DFS trades exhaustiveness-in-depth for
// witness schedules and bigger configs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "ffq/check/schedule.hpp"
#include "ffq/model/world.hpp"

namespace ffq::check {

struct dfs_options {
  /// Max context switches away from a still-runnable thread.
  int preemption_bound = 2;
  /// Bound on memoized states; hitting it reports exhausted = false.
  std::size_t max_states = 4'000'000;
  /// Require every modelled value consumed exactly once at terminals.
  bool require_all_consumed = true;
};

struct explore_result {
  bool ok = true;
  std::string violation;   ///< empty when ok
  schedule witness;        ///< replayable path to the violation (when !ok)
  std::size_t states = 0;  ///< memoized states visited
  std::size_t terminals = 0;
  bool exhausted = true;   ///< false if max_states was hit
};

/// Exhaustive DFS from `initial` under the preemption bound.
explore_result dfs_explore(const ffq::model::world& initial,
                           const dfs_options& opt = {});

/// Step `initial` along `s` exactly, checking monitors on every edge and
/// the terminal oracles at the end. Picks index world::threads_.
explore_result replay_model(const ffq::model::world& initial,
                            const schedule& s,
                            bool require_all_consumed = true);

/// `schedules` random runs from `initial`, each under a seed derived from
/// `seed`; stops at the first failure (witness included).
explore_result fuzz_model(const ffq::model::world& initial,
                          std::uint64_t seed, std::uint64_t schedules,
                          std::uint64_t max_steps = 1'000'000,
                          bool require_all_consumed = true);

}  // namespace ffq::check
