// schedule.hpp — compact, human-pasteable encoding of an interleaving.
//
// A schedule is the sequence of task indices the driver picked, one pick
// per scheduling point. Failing runs print it run-length encoded so a bug
// found by a 40k-schedule fuzz run reproduces with one command:
//
//     check_explore --queue mpmc --replay '0*14.1.0*3.2*7'
//
// Format: picks joined by '.', with a run of n > 1 identical picks
// written `t*n`. The empty schedule prints as "-". parse_schedule is the
// exact inverse of format_schedule and rejects malformed input by
// returning std::nullopt (never throws — the CLI turns that into a usage
// error, not a crash).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ffq::check {

struct schedule {
  std::vector<int> picks;

  bool operator==(const schedule&) const = default;
};

inline std::string format_schedule(const schedule& s) {
  if (s.picks.empty()) return "-";
  std::string out;
  std::size_t i = 0;
  while (i < s.picks.size()) {
    std::size_t run = 1;
    while (i + run < s.picks.size() && s.picks[i + run] == s.picks[i]) ++run;
    if (!out.empty()) out += '.';
    out += std::to_string(s.picks[i]);
    if (run > 1) {
      out += '*';
      out += std::to_string(run);
    }
    i += run;
  }
  return out;
}

inline std::optional<schedule> parse_schedule(const std::string& text) {
  schedule s;
  if (text == "-" || text.empty()) return s;
  std::size_t i = 0;
  auto read_uint = [&](std::uint64_t& out) -> bool {
    if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
    out = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      out = out * 10 + static_cast<std::uint64_t>(text[i] - '0');
      if (out > 100'000'000) return false;  // schedules are never this long
      ++i;
    }
    return true;
  };
  while (true) {
    std::uint64_t pick = 0;
    if (!read_uint(pick)) return std::nullopt;
    std::uint64_t run = 1;
    if (i < text.size() && text[i] == '*') {
      ++i;
      if (!read_uint(run) || run == 0) return std::nullopt;
    }
    for (std::uint64_t k = 0; k < run; ++k) s.picks.push_back(static_cast<int>(pick));
    if (i == text.size()) break;
    if (text[i] != '.') return std::nullopt;
    ++i;
  }
  return s;
}

}  // namespace ffq::check
