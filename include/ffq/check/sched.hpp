// sched.hpp — a controllable cooperative scheduler for checking.
//
// ffq::runtime::fiber_scheduler runs fibers round-robin; checking needs
// the opposite: an external driver decides, at every scheduling point,
// which task runs next. coop_sched exposes exactly that. Tasks are
// ucontext fibers on one OS thread (same idiom as src/runtime/fiber.cpp);
// step(t) resumes task t until it either yields — by calling
// coop_sched::yield() directly, or transitively through an
// FFQ_CHECK_YIELD() hook inside a queue operation (yield.hpp installs the
// thread-local hook for the duration of the step) — or finishes.
//
// Because all tasks share one OS thread, every explored interleaving is a
// sequentially consistent total order over yield-point-delimited blocks.
// That is the checking model: logic races at protocol-step granularity,
// not hardware memory-ordering races (TSan covers those; see DESIGN.md
// §10 for the precise claim).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ffq::check {

class coop_sched {
 public:
  coop_sched();
  ~coop_sched();

  coop_sched(const coop_sched&) = delete;
  coop_sched& operator=(const coop_sched&) = delete;

  /// Register a task; returns its index (0, 1, 2, ... in spawn order).
  /// Tasks do not start running until the first step().
  int spawn(std::function<void()> fn);

  /// Resume task t until its next yield point or completion.
  /// Returns true if the task is still runnable afterwards.
  /// Calling step on a finished task is a no-op returning false.
  bool step(int t);

  bool done(int t) const;
  bool all_done() const;

  /// Indices of tasks that have not finished, in spawn order.
  std::vector<int> runnable() const;

  std::size_t task_count() const noexcept;

  /// Total number of step() resumptions so far (livelock bounding).
  std::uint64_t steps() const noexcept { return steps_; }

  /// Called from inside a task to hand control back to the driver.
  /// FFQ_CHECK_YIELD() routes here while a step is in progress.
  /// Outside any coop_sched task this is a no-op.
  static void yield();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
  std::uint64_t steps_ = 0;
};

}  // namespace ffq::check
