// yield.hpp — the FFQ_CHECK_YIELD() hook that turns the real queues into
// checkable state machines.
//
// The model machines (include/ffq/model) are steppable by construction:
// every shared-memory access is one explicit step. The shipped queues are
// not — they run on hardware atomics — so ffq::check instead instruments
// their protocol loops with FFQ_CHECK_YIELD() scheduling points. In a
// normal build the macro expands to nothing: no code, no data members, no
// layout change (mirror-struct static_asserts in tests/test_check.cpp
// prove byte-identical layouts, the same guarantee telemetry and trace
// make). In a TU compiled with FFQ_CHECK=1 (the `check` CMake preset, or
// a test that defines it before including the queue headers) the macro
// calls through a thread-local hook that the cooperative scheduler
// (sched.hpp) installs while it is stepping a task — so a queue running
// inside a check task hands control back to the schedule driver at every
// protocol step, and ordinary code in the same build pays one
// thread-local load and a predicted-not-taken branch only.
//
// Yield points mark the boundaries the paper's arguments care about: the
// head/tail fetch-and-adds, each iteration of the cell-resolution spins,
// the gap-load → rank-re-check window of Algorithm 1 line 29, and the
// MPMC claim(-2) → publish window of Algorithm 2.
#pragma once

namespace ffq::check {

using yield_hook_fn = void (*)();

/// Installed by coop_sched::step() for the duration of a task step;
/// null whenever no checking scheduler is driving this thread.
inline thread_local yield_hook_fn tl_yield_hook = nullptr;

/// The out-of-line body of FFQ_CHECK_YIELD() in FFQ_CHECK builds.
inline void yield_point() noexcept {
  if (tl_yield_hook != nullptr) tl_yield_hook();
}

/// RAII installer, used by the scheduler (and handy in tests).
class hook_guard {
 public:
  explicit hook_guard(yield_hook_fn fn) noexcept : prev_(tl_yield_hook) {
    tl_yield_hook = fn;
  }
  ~hook_guard() { tl_yield_hook = prev_; }

  hook_guard(const hook_guard&) = delete;
  hook_guard& operator=(const hook_guard&) = delete;

 private:
  yield_hook_fn prev_;
};

}  // namespace ffq::check

#ifndef FFQ_CHECK_YIELD
#if defined(FFQ_CHECK) && FFQ_CHECK
#define FFQ_CHECK_YIELD() ::ffq::check::yield_point()
#else
#define FFQ_CHECK_YIELD() ((void)0)
#endif
#endif
