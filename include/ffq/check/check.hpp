// check.hpp — umbrella header for ffq::check.
//
// One include gives a TU the whole checking toolkit:
//   yield.hpp    — the FFQ_CHECK_YIELD() hook the queues compile against
//   schedule.hpp — compact replayable schedule strings
//   sched.hpp    — the controllable cooperative scheduler
//   drivers.hpp  — seeded-random and replay schedule drivers
//   oracles.hpp  — conservation, per-producer FIFO, Wing–Gong checker
//   harness.hpp  — programs over the real queues (FFQ_CHECK=1 builds)
//   explore.hpp  — preemption-bounded DFS / replay / fuzz over the models
#pragma once

#include "ffq/check/drivers.hpp"
#include "ffq/check/explore.hpp"
#include "ffq/check/harness.hpp"
#include "ffq/check/oracles.hpp"
#include "ffq/check/sched.hpp"
#include "ffq/check/schedule.hpp"
#include "ffq/check/yield.hpp"
