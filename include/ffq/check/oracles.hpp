// oracles.hpp — what "correct" means for an explored schedule.
//
// Three layers, cheapest first:
//
//  1. conservation — every enqueued value dequeued exactly once, nothing
//     invented, nothing lost (the trace_check oracle, applied per run);
//  2. per-producer FIFO — each consumer's stream, restricted to one
//     producer, is increasing in that producer's sequence numbers (the
//     paper's order guarantee survives gap-skipping);
//  3. linearizability — the timed history of invocations/responses has a
//     witness sequential execution of a FIFO queue spec, found by a
//     Wing–Gong style search: repeatedly fire some *minimal* pending
//     operation (one whose invocation precedes every pending response)
//     whose effect the spec accepts. Memoized on (done-mask, spec state)
//     and bounded to histories of <= 64 operations, which covers every
//     program the harness generates while keeping the search tractable.
//
// Values carry their producer and per-producer sequence number by
// construction (value = producer * 1'000'000 + seq), so the oracles need
// no out-of-band metadata.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ffq::check {

/// One completed operation in a concurrent history. Timestamps come from
/// a single monotone counter stamped at invocation and response; in the
/// cooperative scheduler these are exact (no clock skew to reason about).
struct lin_op {
  int tid = 0;               // task that performed the operation
  bool is_enqueue = false;   // else dequeue
  long long value = 0;       // enqueued / dequeued value
  std::uint64_t invoked = 0; // stamp at operation start
  std::uint64_t returned = 0;// stamp at operation completion
};

/// Decompose a harness value into (producer, sequence-within-producer).
constexpr long long kProducerStride = 1'000'000;

/// Layer 1: multiset equality between what went in and what came out.
/// `expected` is every enqueued value; `got` is every dequeued value.
inline bool check_conservation(std::vector<long long> expected,
                               std::vector<long long> got,
                               std::string* why) {
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  if (expected == got) return true;
  if (why != nullptr) {
    std::multiset<long long> in(expected.begin(), expected.end());
    std::multiset<long long> out(got.begin(), got.end());
    for (long long v : out) {
      auto it = in.find(v);
      if (it == in.end()) {
        *why = "conservation: value " + std::to_string(v) +
               " dequeued but never enqueued (duplicate or invented)";
        return false;
      }
      in.erase(it);
    }
    if (!in.empty()) {
      *why = "conservation: value " + std::to_string(*in.begin()) +
             " enqueued but never dequeued (lost)";
      return false;
    }
    *why = "conservation: multiset mismatch";
  }
  return false;
}

/// Layer 2: within each consumer's dequeue stream, values from any single
/// producer must appear in increasing sequence order.
/// `streams[c]` is consumer c's dequeues in the order it observed them.
inline bool check_per_producer_fifo(
    const std::vector<std::vector<long long>>& streams, std::string* why) {
  for (std::size_t c = 0; c < streams.size(); ++c) {
    std::map<long long, long long> last_seq;  // producer -> last seq seen
    for (long long v : streams[c]) {
      const long long producer = v / kProducerStride;
      const long long seq = v % kProducerStride;
      auto it = last_seq.find(producer);
      if (it != last_seq.end() && seq <= it->second) {
        if (why != nullptr) {
          *why = "fifo: consumer " + std::to_string(c) + " saw producer " +
                 std::to_string(producer) + " seq " + std::to_string(seq) +
                 " after seq " + std::to_string(it->second);
        }
        return false;
      }
      last_seq[producer] = seq;
    }
  }
  return true;
}

/// Layer 3: Wing–Gong linearizability against a sequential FIFO queue.
/// Returns true when a witness linearization exists. Histories longer
/// than 64 ops are reported as trivially true (the caller logs the skip);
/// the bitmask memoization requires the bound and the harness never
/// exceeds it.
inline bool check_linearizable(const std::vector<lin_op>& history,
                               std::string* why) {
  const std::size_t n = history.size();
  if (n == 0) return true;
  if (n > 64) return true;  // out of scope for the bounded checker

  // DFS over subsets of completed ops. A pending op is minimal iff no
  // other pending op returned before it was invoked.
  std::set<std::pair<std::uint64_t, std::string>> visited;

  struct frame {
    std::uint64_t done;
    std::deque<long long> q;
  };
  auto spec_key = [](const std::deque<long long>& q) {
    std::string k;
    for (long long v : q) {
      k += std::to_string(v);
      k += ',';
    }
    return k;
  };

  std::vector<frame> stack;
  stack.push_back({0, {}});
  const std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);

  while (!stack.empty()) {
    frame f = std::move(stack.back());
    stack.pop_back();
    if (f.done == all) return true;
    if (!visited.insert({f.done, spec_key(f.q)}).second) continue;

    for (std::size_t i = 0; i < n; ++i) {
      if ((f.done >> i) & 1ULL) continue;
      // Minimality: no pending op j returned strictly before i invoked.
      bool minimal = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || ((f.done >> j) & 1ULL)) continue;
        if (history[j].returned < history[i].invoked) {
          minimal = false;
          break;
        }
      }
      if (!minimal) continue;

      const lin_op& op = history[i];
      frame next = f;
      next.done |= (1ULL << i);
      if (op.is_enqueue) {
        next.q.push_back(op.value);
      } else {
        if (next.q.empty() || next.q.front() != op.value) continue;
        next.q.pop_front();
      }
      stack.push_back(std::move(next));
    }
  }

  if (why != nullptr) {
    *why = "linearizability: no witness ordering exists for the " +
           std::to_string(n) + "-op history";
  }
  return false;
}

}  // namespace ffq::check
