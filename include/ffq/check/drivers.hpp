// drivers.hpp — the three ways a schedule gets chosen.
//
// A driver is anything with `int pick(const std::vector<int>& runnable)`:
// given the runnable task indices (spawn order, never empty), return the
// one to step next, or -1 to abandon the run. The harness records every
// pick into a schedule so any run — random or exhaustive — replays.
//
//  * random_driver   — seeded xoshiro256**; uniform over runnable tasks.
//    Same seed, same program => same schedule, bit for bit.
//  * replay_driver   — plays back a recorded schedule; returns -1 when
//    the schedule is exhausted or names a task that is not runnable
//    (divergence means the program changed since the schedule was
//    recorded — the harness reports it rather than exploring silently).
//
// The third driver, preemption-bounded exhaustive DFS, lives in
// explore.hpp: it needs to clone and restore states, which only the
// model substrate supports, so it is not a pick()-style driver.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ffq/check/schedule.hpp"
#include "ffq/runtime/rng.hpp"

namespace ffq::check {

class random_driver {
 public:
  explicit random_driver(std::uint64_t seed) noexcept : rng_(seed) {}

  int pick(const std::vector<int>& runnable) noexcept {
    if (runnable.empty()) return -1;
    return runnable[rng_.bounded(runnable.size())];
  }

 private:
  ffq::runtime::xoshiro256ss rng_;
};

class replay_driver {
 public:
  explicit replay_driver(schedule s) noexcept : sched_(std::move(s)) {}

  int pick(const std::vector<int>& runnable) noexcept {
    if (pos_ >= sched_.picks.size()) return -1;  // schedule exhausted
    const int t = sched_.picks[pos_];
    if (std::find(runnable.begin(), runnable.end(), t) == runnable.end()) {
      diverged_ = true;
      return -1;
    }
    ++pos_;
    return t;
  }

  /// True if a pick named a task that was no longer runnable — the
  /// program being replayed differs from the one that was recorded.
  bool diverged() const noexcept { return diverged_; }

  /// True if every recorded pick was consumed.
  bool exhausted() const noexcept { return pos_ >= sched_.picks.size(); }

 private:
  schedule sched_;
  std::size_t pos_ = 0;
  bool diverged_ = false;
};

}  // namespace ffq::check
