// syscall_service.hpp — the paper's application benchmark (§V-F, Fig. 7):
// asynchronous system calls for enclave threads.
//
// "The benchmark spawns threads that execute getppid(2) in a loop. ...
// The application records throughput (system calls per second) and
// average latency (CPU cycles). The benchmark application is built in
// three variants: native version, SGX enclave with an external MPMC
// queue, and SGX enclave with FFQ."
//
// Variants:
//   native    — threads call getppid() directly (the paper's baseline);
//   sgx_sync  — traditional path: exit the enclave, trap, re-enter
//               (extension beyond the paper's figure; quantifies why the
//               async design exists);
//   sgx_ffq   — per-app-thread FFQ SPMC submission queue + FFQ SPSC
//               response queues, OS-side executor threads consume;
//   sgx_mpmc  — the same architecture over generic bounded MPMC
//               (Vyukov) queues, the paper's "external MPMC queue".
//
// Threads called "app" live inside the simulated enclave (and pay the
// inside-op surcharge); "os" threads execute the real getppid(2) outside.
#pragma once

#include <cstdint>
#include <string>

#include "ffq/sgxsim/enclave.hpp"

namespace ffq::sgxsim {

enum class service_variant { native, sgx_sync, sgx_ffq, sgx_mpmc };

const char* to_string(service_variant v) noexcept;

struct syscall_request {
  std::uint32_t app_thread = 0;
  std::uint32_t number = 0;     ///< syscall number (getppid in the bench)
  std::uint64_t issue_tsc = 0;  ///< for end-to-end latency
};

struct syscall_response {
  std::uint64_t result = 0;
  std::uint64_t issue_tsc = 0;
};

struct service_config {
  service_variant variant = service_variant::sgx_ffq;
  int app_threads = 1;          ///< producers ("inside the enclave")
  int os_threads = 1;           ///< syscall executors (consumers)
  std::uint64_t calls_per_thread = 100000;
  std::size_t queue_capacity = 1 << 12;
  enclave_cost_model cost{};
  bool pin_threads = false;
  /// When pinning, restrict threads to the first N online CPUs
  /// (0 = use all). This is how the Fig. 7 bench limits "available
  /// cores" on a machine that cannot hot-unplug them.
  int cpu_limit = 0;
  /// 0 = execute the real getppid(2). >0 = replace it with a calibrated
  /// spin of that many nanoseconds. The paper picked getppid *because*
  /// it is nearly free (~100 ns), keeping the queues the bottleneck; in
  /// sandboxed environments where a trapped syscall costs ~10 us, the
  /// simulated syscall restores that queue-bound regime (DESIGN.md §5).
  double simulated_syscall_ns = 0.0;
  /// Record per-thread latency histograms into the process-wide
  /// telemetry registry (recorders "syscall.<variant>.e2e_ns" for all
  /// variants, plus ".enqueue_ns"/".dequeue_ns" for the queue-based
  /// ones) and fold queue event counters into "queue.<variant>.*"
  /// totals. The paper reports only the latency *average*; the
  /// histograms expose the tail (DESIGN.md §8).
  bool collect_telemetry = false;
  /// When non-empty, write an "ffq.trace.v1" Chrome/Perfetto trace of
  /// the run to this path after the service finishes. Worker threads
  /// are named ("app-N", "os-N") so tracks read meaningfully in the
  /// viewer. In FFQ_TRACE=OFF builds the queues emit no events, so the
  /// file carries thread names only.
  std::string trace_path;
};

struct service_result {
  double calls_per_sec = 0.0;
  double avg_latency_cycles = 0.0;
  std::uint64_t total_calls = 0;
  std::uint64_t enclave_transitions = 0;
};

/// Run one benchmark of the configured variant. Blocking; spawns
/// app_threads (+ os_threads for the queue variants).
service_result run_syscall_service(const service_config& cfg);

}  // namespace ffq::sgxsim
