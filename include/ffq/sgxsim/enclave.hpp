// enclave.hpp — performance model of an SGX enclave runtime.
//
// We have no SGX hardware (DESIGN.md §5.1); what Fig. 7 needs is not the
// security property but the *cost structure* that motivates the paper's
// asynchronous system-call design:
//   * crossing the enclave boundary (EENTER/EEXIT) costs thousands of
//     cycles — the paper quotes "up to 50,000 cycles" for the signal/AEX
//     path; SDK literature puts a synchronous ocall round trip at
//     ~8,000–14,000 cycles;
//   * code running inside the enclave pays a small surcharge when its
//     working set leaves the CPU cache (memory encryption), modelled as
//     a fixed per-operation overhead.
//
// Costs are charged by spinning the calibrated TSC, so the simulated
// timings translate directly into the throughput/latency the benchmark
// measures, on any machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace ffq::sgxsim {

struct enclave_cost_model {
  /// One-way boundary crossing (EENTER or EEXIT), in cycles.
  std::uint64_t transition_cycles = 6000;
  /// Surcharge per operation executed inside the enclave (encryption /
  /// EPC effects), in cycles.
  std::uint64_t inside_op_cycles = 200;
  /// Asynchronous exit (signal delivery etc.), in cycles — the paper's
  /// "up to 50,000 cycles" path; used by the Lynx discussion, kept for
  /// completeness.
  std::uint64_t aex_cycles = 50000;
};

/// Per-thread enclave context: tracks whether the thread is "inside" and
/// charges boundary crossings. Not thread-safe by design (one per
/// thread); aggregate counters are atomic so the service can report
/// transition totals.
class enclave_thread {
 public:
  explicit enclave_thread(const enclave_cost_model& model,
                          std::atomic<std::uint64_t>* transition_counter = nullptr)
      : model_(model), counter_(transition_counter) {}

  /// Cross into the enclave (charges one transition).
  void eenter();

  /// Cross out of the enclave (charges one transition).
  void eexit();

  /// Charge the inside-the-enclave surcharge for one operation. No-op
  /// when the thread is outside.
  void charge_inside_op();

  /// Synchronous ocall: exit, run `fn` outside, re-enter. This is the
  /// *traditional* system-call path the async design replaces.
  template <typename Fn>
  auto ocall(Fn&& fn) {
    eexit();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      eenter();
    } else {
      auto r = fn();
      eenter();
      return r;
    }
  }

  bool inside() const noexcept { return inside_; }
  std::uint64_t transitions() const noexcept { return transitions_; }
  const enclave_cost_model& model() const noexcept { return model_; }

 private:
  void charge(std::uint64_t cycles);

  enclave_cost_model model_;
  std::atomic<std::uint64_t>* counter_;
  bool inside_ = false;
  std::uint64_t transitions_ = 0;
};

}  // namespace ffq::sgxsim
