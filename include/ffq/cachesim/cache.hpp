// cache.hpp — a set-associative cache model with LRU replacement.
//
// Substrate for reproducing the paper's Fig. 4–5 (L2/L3 hit ratios,
// cache misses and memory bandwidth as a function of queue size and
// thread placement) in environments where PMU counters are unavailable
// (DESIGN.md §5.2). The model tracks presence/eviction only — no data —
// which is sufficient for hit-ratio and traffic questions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ffq::cachesim {

/// Geometry of one cache level.
struct cache_geometry {
  std::size_t size_bytes = 32 * 1024;
  std::size_t ways = 8;
  std::size_t line_bytes = 64;

  std::size_t num_sets() const { return size_bytes / (line_bytes * ways); }
  bool valid() const {
    return line_bytes > 0 && ways > 0 && size_bytes % (line_bytes * ways) == 0 &&
           (num_sets() & (num_sets() - 1)) == 0;
  }
};

/// Hit/miss/traffic counters for one cache instance.
struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One set-associative, true-LRU cache. Addresses are byte addresses;
/// the cache internally operates on line addresses.
class set_assoc_cache {
 public:
  explicit set_assoc_cache(const cache_geometry& geo);

  /// Access a byte address. Returns true on hit; on miss the line is
  /// installed (allocate-on-miss for both reads and writes) and
  /// `evicted_line` receives the victim line address (or ~0 if none).
  bool access(std::uint64_t addr, std::uint64_t* evicted_line = nullptr);

  /// Probe without updating LRU or installing.
  bool contains(std::uint64_t addr) const;

  /// Remove a line if present (coherence invalidation). Returns true if
  /// the line was present.
  bool invalidate_line(std::uint64_t line_addr);

  const cache_stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  const cache_geometry& geometry() const { return geo_; }

  std::uint64_t line_of(std::uint64_t addr) const { return addr / geo_.line_bytes; }

 private:
  struct way_entry {
    std::uint64_t line = kInvalid;
    std::uint64_t lru = 0;  // larger = more recent
  };
  static constexpr std::uint64_t kInvalid = ~0ULL;

  std::size_t set_of_line(std::uint64_t line) const { return line & set_mask_; }

  cache_geometry geo_;
  std::size_t set_mask_;
  std::uint64_t tick_ = 0;
  std::vector<way_entry> ways_;  // sets * ways, row-major by set
  cache_stats stats_;
};

}  // namespace ffq::cachesim
