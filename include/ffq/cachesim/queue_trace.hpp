// queue_trace.hpp — replay the FFQ producer/consumer access pattern
// through the cache hierarchy.
//
// Reproduces the *mechanism* behind Figs. 4–5: for a 1-producer /
// 1-consumer FFQ, the memory trace is fully determined by the queue
// geometry (entries × cell size × index mapping), the producer/consumer
// distance ("lag" — how far the queue decouples the two), and whether
// the two threads share private caches (same core: the paper's same-HT
// and sibling-HT placements) or only the L3 (other-core / no-affinity).
//
// The replay produces L1/L2/L3 hit ratios, L3 miss counts, memory
// traffic, and coherence invalidations, plus a latency-weighted IPC
// proxy. Core frequency (one panel of Fig. 4) is not modelled; the
// hardware perf path reports it when available.
#pragma once

#include <cstdint>

#include "ffq/cachesim/hierarchy.hpp"

namespace ffq::cachesim {

struct queue_trace_config {
  std::size_t queue_entries = 1 << 16;
  std::size_t cell_bytes = 64;      ///< 24 = compact, 64 = cache-aligned
  bool randomized_index = false;    ///< rotate-by-4 mapping (§IV-A)
  std::uint64_t items = 1'000'000;  ///< enqueue/dequeue pairs to replay
  bool shared_domain = false;       ///< true: same core (same/sibling HT)
  std::size_t lag = 0;              ///< consumer distance; 0 = entries/2
  hierarchy_config hw{};
};

struct queue_trace_result {
  double l1_hit_ratio = 0.0;
  double l2_hit_ratio = 0.0;
  double l3_hit_ratio = 0.0;
  std::uint64_t l3_misses = 0;
  std::uint64_t memory_bytes = 0;
  std::uint64_t coherence_invalidations = 0;
  /// Latency-weighted instructions-per-cycle proxy (higher = better).
  double ipc_proxy = 0.0;
  /// Estimated memory-system cycles per enqueue+dequeue pair.
  double cycles_per_pair = 0.0;
};

queue_trace_result simulate_queue_trace(const queue_trace_config& cfg);

}  // namespace ffq::cachesim
