// hierarchy.hpp — a coherent multi-core cache hierarchy.
//
// Private L1+L2 per core domain, shared inclusive L3, write-invalidate
// coherence: a write by one core removes the line from every other
// core's private caches (the "false sharing" mechanism of paper §IV-A:
// "Two threads accessing distinct variables sharing the same cache line
// will contend and invalidate each other's cache lines").
//
// Note on hardware threads: two hyperthreads of one core share L1/L2, so
// the paper's `same HT` and `sibling HT` placements are the same *cache*
// domain; their difference (execution-resource sharing) is modelled by
// the latency/IPC proxy in queue_trace, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ffq/cachesim/cache.hpp"

namespace ffq::cachesim {

struct hierarchy_config {
  int domains = 2;  ///< private-cache domains (cores)
  // Defaults follow the paper's Skylake (Xeon E3-1270 v5): 32 KB 8-way
  // L1D, 256 KB 4-way L2 (the paper blames randomization regressions on
  // "eviction patterns in the 4-way associative L2 cache"), 8 MB 16-way
  // shared L3.
  cache_geometry l1{32 * 1024, 8, 64};
  cache_geometry l2{256 * 1024, 4, 64};
  cache_geometry l3{8 * 1024 * 1024, 16, 64};
};

/// Where an access was satisfied.
enum class hit_level { l1, l2, l3, memory };

class cache_hierarchy {
 public:
  explicit cache_hierarchy(const hierarchy_config& cfg);

  hit_level read(int domain, std::uint64_t addr);
  hit_level write(int domain, std::uint64_t addr);

  const cache_stats& l1_stats(int domain) const { return l1_[domain]->stats(); }
  const cache_stats& l2_stats(int domain) const { return l2_[domain]->stats(); }
  const cache_stats& l3_stats() const { return l3_->stats(); }

  /// Aggregated private-level stats across domains.
  cache_stats l1_total() const;
  cache_stats l2_total() const;

  /// Lines fetched from DRAM (L3 misses) — the bandwidth proxy of Fig. 5.
  std::uint64_t memory_lines() const { return memory_lines_; }
  std::uint64_t memory_bytes() const {
    return memory_lines_ * cfg_.l3.line_bytes;
  }

  /// Cross-domain invalidations delivered (coherence traffic proxy).
  std::uint64_t coherence_invalidations() const { return coherence_invals_; }

  void reset_stats();

  const hierarchy_config& config() const { return cfg_; }

 private:
  hit_level access(int domain, std::uint64_t addr, bool is_write);

  hierarchy_config cfg_;
  std::vector<std::unique_ptr<set_assoc_cache>> l1_;
  std::vector<std::unique_ptr<set_assoc_cache>> l2_;
  std::unique_ptr<set_assoc_cache> l3_;
  std::uint64_t memory_lines_ = 0;
  std::uint64_t coherence_invals_ = 0;
};

}  // namespace ffq::cachesim
