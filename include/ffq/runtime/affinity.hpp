// affinity.hpp — thread pinning and the paper's four placement policies.
//
// §IV-B: "We support in our implementation four different strategies for
// thread placement": same hardware thread, sibling hardware threads of one
// core, different cores, and no affinity (OS scheduler). A placement plan
// assigns a CPU set to every producer and consumer of a benchmark
// configuration; `pin_self` applies one.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ffq/runtime/topology.hpp"

namespace ffq::runtime {

/// Placement policies evaluated in Figs. 4–6.
enum class placement_policy {
  same_ht,     ///< producer and consumers share one hardware thread
  sibling_ht,  ///< producer on HT0 of a core, consumers on HT1 of that core
  other_core,  ///< producer and consumers on distinct cores
  none,        ///< leave scheduling to the OS
};

const char* to_string(placement_policy p) noexcept;
std::optional<placement_policy> placement_from_string(const std::string& s);

/// Pin the calling thread to a single CPU. Returns false (and leaves the
/// affinity unchanged) when the cpu is not allowed in this environment.
bool pin_self_to(int os_cpu_id) noexcept;

/// Pin the calling thread to a set of CPUs.
bool pin_self_to(const std::vector<int>& os_cpu_ids) noexcept;

/// Remove any affinity restriction (all online CPUs allowed).
bool unpin_self() noexcept;

/// The CPUs the calling thread is currently allowed to run on.
std::vector<int> current_affinity();

/// The CPU assignment for one producer/consumer group.
struct group_placement {
  std::vector<int> producer_cpus;  ///< empty = unpinned
  std::vector<int> consumer_cpus;  ///< empty = unpinned (shared by all consumers)
};

/// Compute placements for `groups` producer groups under `policy`.
///
/// Group g gets core (g mod #cores): with more groups than cores the plan
/// oversubscribes round-robin, exactly like the paper's Skylake runs with
/// up to 2 threads per hardware thread. For `other_core`, consumers go to
/// core (g + groups) mod #cores when enough cores exist, else to the next
/// core.
std::vector<group_placement> plan_placement(const cpu_topology& topo,
                                            placement_policy policy,
                                            std::size_t groups);

}  // namespace ffq::runtime
