// epoch.hpp — epoch-based reclamation (EBR, Fraser 2004).
//
// The second classic safe-memory-reclamation scheme, next to hazard
// pointers (hazard.hpp). Readers pin the global epoch for the duration
// of a critical region instead of publishing per-pointer hazards:
// reads get cheaper (no store/fence per pointer), reclamation gets
// coarser (a single stalled reader blocks all reclamation — the
// trade-off the bench_reclamation ablation measures on the MS queue).
//
// Classic 3-epoch scheme: an object retired in epoch e is free once the
// global epoch reaches e+2, because every reader active at e has since
// gone quiescent (the epoch can only advance when no reader still pins
// an older epoch).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ffq/runtime/cacheline.hpp"

namespace ffq::runtime {

class epoch_domain {
 public:
  static constexpr std::size_t kMaxThreads = 128;
  static constexpr std::uint64_t kQuiescent = ~0ULL;
  static constexpr std::size_t kRetireThreshold = 64;

  epoch_domain() = default;
  epoch_domain(const epoch_domain&) = delete;
  epoch_domain& operator=(const epoch_domain&) = delete;

  ~epoch_domain() {
    for (auto& rec : records_) {
      for (auto& r : rec.retired) r.deleter(r.ptr);
      rec.retired.clear();
    }
  }

  static epoch_domain& global() {
    static epoch_domain d;
    return d;
  }

  class thread_record {
   public:
    /// Enter a read-side critical region.
    void pin() noexcept {
      // seq_cst store so the epoch-advance scan cannot miss us.
      local_.value.store(owner_->epoch_.value.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
    }

    /// Leave the critical region.
    void unpin() noexcept {
      local_.value.store(epoch_domain::kQuiescent, std::memory_order_release);
    }

    template <typename T>
    void retire(T* p) {
      retire_raw(p, [](void* q) { delete static_cast<T*>(q); });
    }

    void retire_raw(void* p, void (*deleter)(void*)) {
      retired.push_back(
          {p, deleter, owner_->epoch_.value.load(std::memory_order_acquire)});
      if (retired.size() >= epoch_domain::kRetireThreshold) {
        owner_->try_advance();
        reclaim_old();
      }
    }

    /// Free everything whose retire epoch is two behind the global one.
    void reclaim_old() {
      const std::uint64_t e =
          owner_->epoch_.value.load(std::memory_order_acquire);
      std::size_t keep = 0;
      for (std::size_t i = 0; i < retired.size(); ++i) {
        if (retired[i].epoch + 2 <= e) {
          retired[i].deleter(retired[i].ptr);
        } else {
          retired[keep++] = retired[i];
        }
      }
      retired.resize(keep);
    }

   private:
    friend class epoch_domain;

    struct retired_ptr {
      void* ptr;
      void (*deleter)(void*);
      std::uint64_t epoch;
    };

    padded<std::atomic<std::uint64_t>> local_{epoch_domain::kQuiescent};
    std::atomic<bool> in_use{false};
    std::vector<retired_ptr> retired;
    epoch_domain* owner_ = nullptr;
  };

  /// Attach the calling thread (same recycling protocol as the hazard
  /// domain). Cache the result per thread.
  thread_record& attach() {
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      bool expected = false;
      if (records_[i].in_use.compare_exchange_strong(expected, true,
                                                     std::memory_order_acq_rel)) {
        records_[i].owner_ = this;
        return records_[i];
      }
    }
    for (;;) {
      std::size_t i = hwm_.load(std::memory_order_acquire);
      if (i >= kMaxThreads) continue;  // effectively unreachable
      if (hwm_.compare_exchange_weak(i, i + 1, std::memory_order_acq_rel)) {
        bool expected = false;
        if (records_[i].in_use.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          records_[i].owner_ = this;
          return records_[i];
        }
      }
    }
  }

  void release(thread_record& rec) {
    rec.local_.value.store(kQuiescent, std::memory_order_release);
    rec.in_use.store(false, std::memory_order_release);
  }

  /// Advance the global epoch if every pinned thread has caught up.
  /// Returns true on advance.
  bool try_advance() noexcept {
    const std::uint64_t e = epoch_.value.load(std::memory_order_seq_cst);
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t l =
          records_[i].local_.value.load(std::memory_order_seq_cst);
      if (l != kQuiescent && l < e) return false;  // straggler
    }
    std::uint64_t expected = e;
    return epoch_.value.compare_exchange_strong(expected, e + 1,
                                                std::memory_order_seq_cst);
  }

  std::uint64_t current_epoch() const noexcept {
    return epoch_.value.load(std::memory_order_acquire);
  }

 private:
  padded<std::atomic<std::uint64_t>> epoch_{0};
  thread_record records_[kMaxThreads];
  std::atomic<std::size_t> hwm_{0};
};

/// Cached per-thread attachment to the global epoch domain.
inline epoch_domain::thread_record& tls_global_epoch() {
  struct holder {
    epoch_domain::thread_record* rec;
    holder() : rec(&epoch_domain::global().attach()) {}
    ~holder() { epoch_domain::global().release(*rec); }
  };
  thread_local holder h;
  return *h.rec;
}

}  // namespace ffq::runtime
