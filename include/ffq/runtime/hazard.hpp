// hazard.hpp — hazard-pointer safe memory reclamation (Michael, 2004).
//
// The unbounded baseline queues (MS-queue, LCRQ) pop nodes that other
// threads may still be traversing; freeing them immediately would be a
// use-after-free, and never freeing them would be a leak that distorts the
// cache behaviour the benchmarks measure. Hazard pointers give bounded
// memory overhead with lock-free progress — matching the progress
// guarantees of the queues built on top.
//
// Design: a `hazard_domain` owns a fixed pool of per-thread records, each
// with K hazard slots and a private retire list. Threads attach lazily
// (first use) and release their record on thread exit so records are
// recycled. Scanning is O(#records * K) and amortized over
// kRetireThreshold retirements.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "ffq/runtime/cacheline.hpp"

namespace ffq::runtime {

class hazard_domain {
 public:
  static constexpr std::size_t kMaxThreads = 128;
  static constexpr std::size_t kSlotsPerThread = 4;
  static constexpr std::size_t kRetireThreshold = 64;

  hazard_domain() = default;
  hazard_domain(const hazard_domain&) = delete;
  hazard_domain& operator=(const hazard_domain&) = delete;

  ~hazard_domain() {
    // At destruction no user threads may still operate on protected
    // structures; drain every retire list unconditionally.
    for (auto& rec : records_) {
      for (auto& r : rec.retired) r.deleter(r.ptr);
      rec.retired.clear();
    }
  }

  /// Process-wide default domain (one per program is almost always right;
  /// separate domains only pay off when retire lists must not mix).
  static hazard_domain& global() {
    static hazard_domain d;
    return d;
  }

  class thread_record;

  /// Attach the calling thread (idempotent per domain). Returns the
  /// thread's record; cached by the caller via thread_local.
  thread_record& attach();

  class thread_record {
   public:
    /// Publish `p` in hazard slot `slot`. Release ordering so the scan's
    /// acquire load observes it before any subsequent traversal.
    void set(std::size_t slot, const void* p) noexcept {
      slots_[slot].value.store(p, std::memory_order_seq_cst);
    }

    void clear(std::size_t slot) noexcept {
      slots_[slot].value.store(nullptr, std::memory_order_release);
    }

    void clear_all() noexcept {
      for (auto& s : slots_) s.value.store(nullptr, std::memory_order_release);
    }

    /// Protect the pointee of `src`: loop (load, publish, re-validate)
    /// until the published value is still current. Standard Michael
    /// protocol; the seq_cst store in set() orders against the reclaimer's
    /// scan.
    template <typename T>
    T* protect(std::size_t slot, const std::atomic<T*>& src) noexcept {
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        set(slot, p);
        T* q = src.load(std::memory_order_acquire);
        if (q == p) return p;
        p = q;
      }
    }

    /// Retire `p`; it is deleted once no thread holds it in a hazard slot.
    template <typename T>
    void retire(T* p) {
      retire_raw(p, [](void* q) { delete static_cast<T*>(q); });
    }

    void retire_raw(void* p, void (*deleter)(void*)) {
      retired.push_back({p, deleter});
      if (retired.size() >= hazard_domain::kRetireThreshold) owner_->scan(*this);
    }

   private:
    friend class hazard_domain;
    friend class hazard_thread;

    struct retired_ptr {
      void* ptr;
      void (*deleter)(void*);
    };

    padded<std::atomic<const void*>> slots_[hazard_domain::kSlotsPerThread];
    std::atomic<bool> in_use{false};
    std::vector<retired_ptr> retired;
    hazard_domain* owner_ = nullptr;
  };

  /// Force-reclaim everything that is currently unprotected, across the
  /// calling thread's retire list. Mostly for tests and shutdown paths.
  void flush(thread_record& rec) { scan(rec); }

  std::size_t attached_upper_bound() const noexcept {
    return hwm_.load(std::memory_order_acquire);
  }

 private:
  void scan(thread_record& rec) {
    // Snapshot all published hazards.
    std::vector<const void*> hazards;
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    hazards.reserve(n * kSlotsPerThread);
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& s : records_[i].slots_) {
        if (const void* p = s.value.load(std::memory_order_acquire)) {
          hazards.push_back(p);
        }
      }
    }
    // Partition the retire list; delete the safe part.
    std::vector<thread_record::retired_ptr> still;
    still.reserve(rec.retired.size());
    for (const auto& r : rec.retired) {
      bool hazardous = false;
      for (const void* h : hazards) {
        if (h == r.ptr) {
          hazardous = true;
          break;
        }
      }
      if (hazardous) {
        still.push_back(r);
      } else {
        r.deleter(r.ptr);
      }
    }
    rec.retired.swap(still);
  }

  thread_record records_[kMaxThreads];
  std::atomic<std::size_t> hwm_{0};  // high-water mark of ever-used records

  friend class thread_record;
};

/// RAII attachment: acquires a record on construction, releases the
/// record's slots (but keeps its retire list for later scans by the same
/// record's next owner) on destruction.
class hazard_thread {
 public:
  explicit hazard_thread(hazard_domain& d = hazard_domain::global())
      : rec_(&d.attach()) {}

  ~hazard_thread() {
    rec_->clear_all();
    rec_->in_use.store(false, std::memory_order_release);
  }

  hazard_thread(const hazard_thread&) = delete;
  hazard_thread& operator=(const hazard_thread&) = delete;

  hazard_domain::thread_record* operator->() noexcept { return rec_; }
  hazard_domain::thread_record& operator*() noexcept { return *rec_; }

 private:
  hazard_domain::thread_record* rec_;
};

/// Cached per-thread attachment to the global domain. Attach() scans the
/// record array, which is too slow to pay per queue operation; the
/// thread_local amortizes it to once per thread. (Only offered for the
/// global domain: a thread_local tied to a shorter-lived domain could
/// outlive it.)
inline hazard_thread& tls_global_hazard() {
  thread_local hazard_thread h(hazard_domain::global());
  return h;
}

inline hazard_domain::thread_record& hazard_domain::attach() {
  // Reuse a released record if possible, else claim a fresh one.
  const std::size_t n = hwm_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    bool expected = false;
    if (records_[i].in_use.compare_exchange_strong(expected, true,
                                                   std::memory_order_acq_rel)) {
      records_[i].owner_ = this;
      return records_[i];
    }
  }
  for (;;) {
    std::size_t i = hwm_.load(std::memory_order_acquire);
    if (i >= kMaxThreads) {
      // Fall back to racing for released records; with kMaxThreads = 128
      // this is effectively unreachable in this codebase.
      for (std::size_t j = 0; j < kMaxThreads; ++j) {
        bool expected = false;
        if (records_[j].in_use.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          records_[j].owner_ = this;
          return records_[j];
        }
      }
      continue;
    }
    if (hwm_.compare_exchange_weak(i, i + 1, std::memory_order_acq_rel)) {
      // The record became visible to the "reuse" loop the moment hwm
      // moved, so claim it with the same CAS protocol; if a reuser stole
      // it first, just keep looking.
      bool expected = false;
      if (records_[i].in_use.compare_exchange_strong(expected, true,
                                                     std::memory_order_acq_rel)) {
        records_[i].owner_ = this;
        return records_[i];
      }
    }
  }
}

}  // namespace ffq::runtime
