// rng.hpp — fast, reproducible pseudo-random number generation.
//
// The comparative benchmark (paper §V-G / Fig. 8) inserts "an arbitrary
// delay (between 50 and 150 ns)" between queue operations. Drawing those
// delays must itself be far cheaper than a queue operation, so we use
// xoshiro256** (sub-nanosecond per draw) seeded deterministically per
// thread via splitmix64 — benchmark runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace ffq::runtime {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush; recommended seeding procedure by the xoshiro authors.
class splitmix64 {
 public:
  explicit constexpr splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: all-purpose 64-bit generator (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    splitmix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) using Lemire's multiply-shift trick
  /// (no modulo in the common case).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer uniform in the closed interval [lo, hi].
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + bounded(hi - lo + 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ffq::runtime
