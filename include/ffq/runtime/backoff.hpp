// backoff.hpp — CPU-relax and bounded exponential back-off.
//
// FFQ's dequeue (Algorithm 1, line 32) "backs off" while the producer is
// still writing a cell. The paper's C artifact uses a pause-loop; we expose
// the same primitive plus an exponential variant used by the baselines
// (MS-queue CAS retry loops, LCRQ ring contention, ...).
#pragma once

#include <cstdint>

#include <sched.h>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ffq::runtime {

/// One architectural relax hint. On x86 this is `pause` (~35 cycles on
/// Skylake), which de-pipelines the spin loop and yields execution
/// resources to the sibling hardware thread — exactly the situation the
/// paper's "sibling HT" affinity policy creates.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Spin for `n` relax hints.
inline void relax_for(std::uint32_t n) noexcept {
  for (std::uint32_t i = 0; i < n; ++i) cpu_relax();
}

/// Bounded exponential back-off: 1, 2, 4, ... up to `kMaxSpins` relax
/// hints per call. Reset on success.
class exp_backoff {
 public:
  static constexpr std::uint32_t kMinSpins = 1;
  static constexpr std::uint32_t kMaxSpins = 1024;

  /// Spin once at the current level and double the level.
  void pause() noexcept {
    relax_for(cur_);
    cur_ = cur_ < kMaxSpins ? cur_ * 2 : kMaxSpins;
  }

  /// Back to the minimum level (call after the contended operation
  /// succeeds).
  void reset() noexcept { cur_ = kMinSpins; }

  std::uint32_t level() const noexcept { return cur_; }

 private:
  std::uint32_t cur_ = kMinSpins;
};

/// Fixed-interval back-off matching the paper's dequeue wait: a short,
/// constant pause (the cited "few nanoseconds"). Constant rather than
/// exponential because the expected wait — the producer finishing two plain
/// stores — is tiny and bounded.
class const_backoff {
 public:
  explicit const_backoff(std::uint32_t spins = 4) noexcept : spins_(spins) {}
  void pause() const noexcept { relax_for(spins_); }

 private:
  std::uint32_t spins_;
};

/// Spin-then-yield back-off for potentially long waits. The paper's
/// testbeds dedicate a hardware thread per benchmark thread, so pure
/// spinning is fine there (its artifact waits "a few nanoseconds"); on
/// oversubscribed machines a spinning waiter can occupy the core the
/// thread it waits for needs.
///
/// Phase 1 — kSpinRounds short constant pauses (~a few ns each): keeps
/// the reaction latency of a hot wait in the sub-microsecond range,
/// which matters for ping-pong patterns (exponential pauses here would
/// add tens of microseconds to every queue round trip).
/// Phase 2 — sched_yield per pause: stops burning a core once the wait
/// has clearly outlived the "partner is one store away" case.
class yielding_backoff {
 public:
  static constexpr std::uint32_t kSpinRounds = 512;
  static constexpr std::uint32_t kSpinsPerRound = 4;

  void pause() noexcept {
    if (rounds_ < kSpinRounds) {
      relax_for(kSpinsPerRound);
      ++rounds_;
    } else {
      yield_now();
    }
  }

  void reset() noexcept { rounds_ = 0; }

 private:
  static void yield_now() noexcept { sched_yield(); }

  std::uint32_t rounds_ = 0;
};

}  // namespace ffq::runtime
