// topology.hpp — CPU topology discovery (packages / cores / hardware
// threads).
//
// The paper's affinity experiments (§IV-B, Figs. 4–6) require placing a
// producer and its consumers on (a) the same hardware thread, (b) two
// sibling hardware threads of one core, or (c) different cores. Computing
// those placements needs the package/core/HT structure, which we read from
// Linux sysfs with a flat fallback for restricted environments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ffq::runtime {

/// One logical CPU (a hardware thread).
struct logical_cpu {
  int os_id = -1;       ///< id used by sched_setaffinity
  int package_id = 0;   ///< socket
  int core_id = 0;      ///< physical core within the machine (normalized)
  int smt_index = 0;    ///< 0 for the first HT of a core, 1 for its sibling, ...
};

/// Immutable snapshot of the machine's CPU structure.
class cpu_topology {
 public:
  /// Discover from sysfs; falls back to a flat topology (every online CPU
  /// its own core, one package) when sysfs is unreadable.
  static cpu_topology discover();

  /// Build a synthetic topology: `packages` sockets × `cores_per_package`
  /// cores × `threads_per_core` HTs, os_ids densely numbered core-major.
  /// Used by tests and by the cache simulator.
  static cpu_topology synthetic(int packages, int cores_per_package,
                                int threads_per_core);

  const std::vector<logical_cpu>& cpus() const noexcept { return cpus_; }
  std::size_t num_cpus() const noexcept { return cpus_.size(); }
  std::size_t num_cores() const noexcept { return num_cores_; }
  std::size_t num_packages() const noexcept { return num_packages_; }
  std::size_t threads_per_core() const noexcept {
    return num_cores_ ? cpus_.size() / num_cores_ : 1;
  }

  /// All logical CPUs of one (normalized) core, ordered by smt_index.
  std::vector<int> core_members(int core_id) const;

  /// os_ids of the first hardware thread of every core (one entry per
  /// core) — the canonical "one thread per core" placement set.
  std::vector<int> primary_threads() const;

  /// The sibling HT of `os_id` on the same core, or -1 if the core has a
  /// single hardware thread.
  int sibling_of(int os_id) const;

  /// The core the given logical CPU belongs to, or -1 if unknown.
  int core_of(int os_id) const;

  /// Human-readable one-line summary (for benchmark headers).
  std::string summary() const;

 private:
  void finalize();

  std::vector<logical_cpu> cpus_;
  std::size_t num_cores_ = 0;
  std::size_t num_packages_ = 0;
};

}  // namespace ffq::runtime
