// htm.hpp — hardware transactional memory abstraction with emulation.
//
// The paper's comparative study includes "a simple concurrent queue
// algorithm that uses hardware transactional memory (HTM) extensions of
// Intel and IBM CPUs ... [which] simply executes the enqueue and dequeue
// operations inside hardware transactions" (§V-G). TSX is fused off or
// disabled on most current x86 parts (and absent in this container), so
// the abstraction below uses real RTM only when (a) the build enables
// FFQ_ENABLE_RTM and (b) cpuid reports it; otherwise it emulates a
// transaction with a global test-and-test-and-set lock plus probabilistic
// conflict aborts.
//
// Why the emulation preserves the experiment (DESIGN.md §5.3): the
// paper's observation is that the HTM queue is competitive single-threaded
// but collapses under concurrency because transactions serialize on the
// same cache lines and abort/retry. A global lock with injected aborts
// has the same two properties — near-zero uncontended overhead,
// serialization plus retry cost under contention.
#pragma once

#include <atomic>
#include <cstdint>

#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"
#include "ffq/runtime/rng.hpp"

namespace ffq::runtime {

/// True when the running CPU exposes Intel RTM *and* the build compiled
/// RTM support in.
bool htm_hardware_available() noexcept;

/// Aggregate transaction statistics (per htm_context, i.e. per thread).
struct htm_stats {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t fallbacks = 0;  ///< executions under the fallback lock
};

/// The shared state one transactional region synchronizes on: the
/// fallback lock (also the emulation lock) on its own cache line.
class htm_lock {
 public:
  bool is_locked() const noexcept {
    return locked_->load(std::memory_order_acquire);
  }

  void lock() noexcept {
    exp_backoff bo;
    for (;;) {
      if (!locked_->load(std::memory_order_relaxed) &&
          !locked_->exchange(true, std::memory_order_acquire)) {
        return;
      }
      bo.pause();
    }
  }

  void unlock() noexcept { locked_->store(false, std::memory_order_release); }

 private:
  padded<std::atomic<bool>> locked_{false};
};

/// Per-thread transaction executor. Not thread-safe; create one per
/// thread (cheap).
class htm_context {
 public:
  /// `abort_rate_permille` only affects emulation: probability (in 1/1000)
  /// that a "transaction" aborts when the lock is observed contended,
  /// modelling a data-conflict abort.
  explicit htm_context(std::uint64_t seed = 1, unsigned max_retries = 8,
                       unsigned abort_rate_permille = 250) noexcept
      : rng_(seed), max_retries_(max_retries), abort_rate_permille_(abort_rate_permille) {}

  /// Run `fn` transactionally against `lk`. Retries up to max_retries
  /// times, then takes the fallback lock. `fn` must be idempotent until
  /// the final successful execution (standard HTM contract).
  template <typename Fn>
  void run(htm_lock& lk, Fn&& fn) {
    stats_.attempts++;
    for (unsigned attempt = 0; attempt < max_retries_; ++attempt) {
      if (begin_tx(lk)) {
        fn();
        end_tx(lk);
        stats_.commits++;
        return;
      }
      stats_.aborts++;
      backoff_.pause();
    }
    // Fallback: serialize on the lock. With real RTM every concurrent
    // transaction would abort on the lock word; in emulation this *is*
    // the lock path already.
    stats_.fallbacks++;
    lk.lock();
    fn();
    lk.unlock();
    backoff_.reset();
  }

  const htm_stats& stats() const noexcept { return stats_; }

 private:
  bool begin_tx(htm_lock& lk) noexcept;
  void end_tx(htm_lock& lk) noexcept;

  xoshiro256ss rng_;
  exp_backoff backoff_;
  htm_stats stats_;
  unsigned max_retries_;
  unsigned abort_rate_permille_;
  bool in_hw_tx_ = false;
  bool holds_emulation_lock_ = false;
};

}  // namespace ffq::runtime
