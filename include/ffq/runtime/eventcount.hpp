// eventcount.hpp — futex-backed event count for spin-then-park waiting.
//
// The paper's application context avoids spinning consumers by yielding
// to an application-level scheduler (§I: "to avoid spinning while
// waiting ... we can call the scheduler to indicate that another
// application thread can execute"). When there is no user-level
// scheduler, the kernel equivalent is parking on a futex. An event count
// is the standard way to bolt parking onto a lock-free structure without
// adding anything to its hot path:
//
//   consumer:  key = ec.prepare_wait();
//              if (queue still empty) ec.wait(key); else ec.cancel_wait();
//   producer:  enqueue(...); ec.notify_one();   // only when waiters exist
//
// The producer-side notify is a single relaxed load when nobody waits,
// so an always-busy queue pays (almost) nothing.
#pragma once

#include <atomic>
#include <cstdint>

#include "ffq/runtime/cacheline.hpp"

namespace ffq::runtime {

class eventcount {
 public:
  using key_type = std::uint32_t;

  /// Announce intent to wait. Must be followed by wait(key) or
  /// cancel_wait(). The returned key captures the current generation;
  /// any notify after prepare_wait() invalidates it.
  key_type prepare_wait() noexcept {
    waiters_->fetch_add(1, std::memory_order_seq_cst);
    return epoch_->load(std::memory_order_seq_cst);
  }

  /// Park until a notify arrives after the matching prepare_wait().
  /// Returns immediately if one already happened (stale key).
  void wait(key_type key) noexcept;

  /// Abort a prepared wait (the caller found data on its re-check).
  void cancel_wait() noexcept {
    waiters_->fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wake one parked waiter (no-op when none).
  void notify_one() noexcept;

  /// Wake all parked waiters (used by close()).
  void notify_all() noexcept;

  /// Racy diagnostic.
  std::uint32_t approx_waiters() const noexcept {
    return waiters_->load(std::memory_order_relaxed);
  }

 private:
  // epoch: bumped by every notify; waiters compare their key against it.
  padded<std::atomic<std::uint32_t>> epoch_{0};
  padded<std::atomic<std::uint32_t>> waiters_{0};
};

}  // namespace ffq::runtime
