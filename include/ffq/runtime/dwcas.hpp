// dwcas.hpp — double-word (128-bit) compare-and-set.
//
// FFQ^m (Algorithm 2) synchronizes producers with a double-compare-and-set
// over the adjacent (rank, gap) fields of a cell; LCRQ needs the same
// primitive for its (flags|index, value) cell words. The paper notes this
// "can be supported by simply using a 128-bit version of the
// compare-and-set operation ... and placing the rank and gap fields
// consecutively in the same cache line" — which is exactly what we do.
//
// Implementation: GCC/Clang `__atomic_compare_exchange` on a 16-byte,
// 16-aligned object compiles to `lock cmpxchg16b` (via libatomic) when the
// CPU advertises cx16. The two words remain individually `std::atomic` so
// single-word loads/stores stay cheap; the 16-byte CAS addresses the pair
// through the first member. This dual-view technique is the standard idiom
// in production lock-free code (liblfds, folly, the paper's own artifact);
// it is not describable in pure ISO C++ but is well-defined under the
// GCC/Clang memory model we target.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace ffq::runtime {

/// A pair of 64-bit atomics that supports single-word access *and*
/// 128-bit CAS across both words.
struct alignas(16) atomic_u64_pair {
  std::atomic<std::uint64_t> lo{0};
  std::atomic<std::uint64_t> hi{0};

  static_assert(sizeof(std::atomic<std::uint64_t>) == 8,
                "atomic<uint64_t> must have no internal lock word");

  struct value_type {
    std::uint64_t lo;
    std::uint64_t hi;
    friend bool operator==(const value_type&, const value_type&) = default;
  };

  /// 128-bit CAS over (lo, hi). Sequentially consistent on success,
  /// acquire on failure; `expected` is updated with the observed value on
  /// failure, like compare_exchange_strong.
  bool compare_exchange(value_type& expected, value_type desired) noexcept {
    return __atomic_compare_exchange(
        reinterpret_cast<value_type*>(this), &expected, &desired,
        /*weak=*/false, __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE);
  }

  /// Atomic 128-bit snapshot (compiled to a cmpxchg16b read-modify-write
  /// with identical old/new; use sparingly — individual word loads are
  /// much cheaper and usually sufficient).
  value_type load_pair() noexcept {
    value_type expected{0, 0};
    // A CAS that "fails" writes back the current value into expected.
    (void)compare_exchange(expected, expected);
    return expected;
  }
};

static_assert(sizeof(atomic_u64_pair) == 16);
static_assert(alignof(atomic_u64_pair) == 16);

/// Signed view used by FFQ^m, whose rank/gap fields are signed (-1 free,
/// -2 reserved).
struct alignas(16) atomic_i64_pair {
  std::atomic<std::int64_t> first{0};
  std::atomic<std::int64_t> second{0};

  struct value_type {
    std::int64_t first;
    std::int64_t second;
    friend bool operator==(const value_type&, const value_type&) = default;
  };

  bool compare_exchange(value_type& expected, value_type desired) noexcept {
    return __atomic_compare_exchange(
        reinterpret_cast<value_type*>(this), &expected, &desired,
        /*weak=*/false, __ATOMIC_ACQ_REL, __ATOMIC_ACQUIRE);
  }

  value_type load_pair() noexcept {
    value_type expected{0, 0};
    (void)compare_exchange(expected, expected);
    return expected;
  }
};

static_assert(sizeof(atomic_i64_pair) == 16);

}  // namespace ffq::runtime
