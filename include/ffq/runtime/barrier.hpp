// barrier.hpp — generation-counting spin barrier.
//
// Benchmark threads must start their measured loops simultaneously;
// std::barrier parks threads in the kernel, which adds milliseconds of
// wake-up skew — unacceptable when a whole run lasts tens of milliseconds.
// A spin barrier releases all waiters within a few hundred cycles.
//
// Design note: this uses a generation counter rather than the classic
// sense-reversing flag. A global-sense barrier is broken for immediate
// re-entry without per-thread state: a thread arriving at generation g+1
// before generation g's last arrival flips the flag computes the *same*
// target sense as generation g and falls through the moment g completes.
// With a generation counter, the count reset happens-before the counter
// bump (program order in the releasing thread), so a thread that
// observed the bump and re-enters always decrements a fresh count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "ffq/runtime/backoff.hpp"
#include "ffq/runtime/cacheline.hpp"

namespace ffq::runtime {

class spin_barrier {
 public:
  explicit spin_barrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  /// Blocks until all parties have arrived. Reusable; immediate re-entry
  /// is safe (see design note above).
  void arrive_and_wait() noexcept {
    const std::uint64_t gen = generation_->load(std::memory_order_acquire);
    if (remaining_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset the count for the next generation *before*
      // releasing this one.
      remaining_->store(parties_, std::memory_order_relaxed);
      generation_->fetch_add(1, std::memory_order_release);
    } else {
      // Spin briefly, then yield: a barrier waiter that burns a core for
      // a whole benchmark run (e.g. the coordinator waiting on the finish
      // line) starves the measured threads on small machines.
      yielding_backoff bo;
      while (generation_->load(std::memory_order_acquire) == gen) bo.pause();
    }
  }

  std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  padded<std::atomic<std::size_t>> remaining_;
  padded<std::atomic<std::uint64_t>> generation_{0};
};

}  // namespace ffq::runtime
