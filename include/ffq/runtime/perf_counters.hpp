// perf_counters.hpp — thin RAII wrapper over perf_event_open.
//
// Figures 4–5 of the paper plot IPC, core frequency, and L2/L3 hit ratios
// recorded "during the benchmark execution ... [from] different
// performance counters". We expose the subset of counters those figures
// need. Containers and locked-down kernels frequently deny
// perf_event_open; every call degrades gracefully and `available()`
// reports the truth so the bench can fall back to the cache simulator
// (see DESIGN.md §5.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ffq::runtime {

enum class perf_event_kind {
  cycles,
  instructions,
  cache_references,  ///< LLC accesses
  cache_misses,      ///< LLC misses
  l1d_read_access,
  l1d_read_miss,
};

const char* to_string(perf_event_kind k) noexcept;

/// A group of hardware counters for the calling thread. Counters are
/// opened on construction, started by start(), and read by read_all().
class perf_counter_group {
 public:
  explicit perf_counter_group(const std::vector<perf_event_kind>& kinds);
  ~perf_counter_group();

  perf_counter_group(const perf_counter_group&) = delete;
  perf_counter_group& operator=(const perf_counter_group&) = delete;
  perf_counter_group(perf_counter_group&&) noexcept;
  perf_counter_group& operator=(perf_counter_group&&) noexcept;

  /// True when every requested counter opened successfully.
  bool available() const noexcept { return available_; }

  /// Why the group is unavailable (empty string when available).
  const std::string& error() const noexcept { return error_; }

  void start() noexcept;
  void stop() noexcept;

  struct sample {
    perf_event_kind kind;
    std::uint64_t value = 0;
  };

  /// Counter values since start(). Empty when unavailable.
  std::vector<sample> read_all() const;

  /// Convenience: value of a single kind (0 when absent/unavailable).
  std::uint64_t value(perf_event_kind k) const;

 private:
  struct counter {
    perf_event_kind kind;
    int fd = -1;
  };

  std::vector<counter> counters_;
  bool available_ = false;
  std::string error_;
};

/// One-line capability report for benchmark headers.
std::string perf_capability_summary();

}  // namespace ffq::runtime
