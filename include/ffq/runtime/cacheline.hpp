// cacheline.hpp — cache-line geometry constants and padding helpers.
//
// FFQ's evaluation (paper §IV-A, Fig. 2) shows that false sharing between
// queue cells is one of the dominant performance effects. Every shared
// structure in this library spells out its cache-line placement through the
// helpers below instead of sprinkling alignas(64) ad hoc.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>

namespace ffq::runtime {

/// Size of one cache line in bytes. x86-64 and POWER8 (the paper's two
/// target architectures) both use 64-byte lines at L1/L2; POWER8's L3 uses
/// 128-byte sectors but coherence granularity stays 64.
/// Fixed at 64 rather than std::hardware_destructive_interference_size:
/// the latter varies with -mtune (GCC warns when it leaks into an ABI),
/// and these headers define the on-disk/cross-TU layout of queue cells.
inline constexpr std::size_t kCacheLineSize = 64;

static_assert(kCacheLineSize >= 64, "unexpectedly small cache line");

/// Rounds `n` up to the next multiple of the cache-line size.
constexpr std::size_t round_up_to_line(std::size_t n) noexcept {
  return (n + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
}

/// True if two byte offsets fall into the same cache line.
constexpr bool same_cache_line(std::size_t a, std::size_t b) noexcept {
  return a / kCacheLineSize == b / kCacheLineSize;
}

/// A value of type T alone on its own cache line(s).
///
/// Used for queue head/tail counters and any other single hot variable
/// that must not share a line with its neighbours ("dedicated cache lines"
/// mapping in the paper's terminology).
template <typename T>
struct alignas(kCacheLineSize) padded {
  static_assert(std::is_object_v<T>);

  T value{};

  padded() = default;
  /// In-place construction; also covers non-copyable T (e.g. std::atomic).
  template <typename... Args>
  explicit padded(Args&&... args) : value(static_cast<Args&&>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Trailing pad so that sizeof(padded<T>) is a whole number of lines even
  // when T itself is larger than one line.
  char pad_[round_up_to_line(sizeof(T)) - sizeof(T) == 0
                ? kCacheLineSize
                : round_up_to_line(sizeof(T)) - sizeof(T)] = {};
};

}  // namespace ffq::runtime
