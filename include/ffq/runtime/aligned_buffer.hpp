// aligned_buffer.hpp — RAII over-aligned uninitialized storage.
//
// Queue cell arrays need (a) alignment to a cache-line (or stronger)
// boundary so the "dedicated cache lines" layout actually starts on a line
// boundary, and (b) explicit lifetime control, because cells contain
// atomics we construct in place. std::vector gives neither.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "ffq/runtime/cacheline.hpp"

namespace ffq::runtime {

/// Uninitialized aligned byte storage. Objects are created by the caller
/// via construct_at / placement new and destroyed by the caller.
class aligned_storage_buffer {
 public:
  aligned_storage_buffer() = default;

  aligned_storage_buffer(std::size_t bytes, std::size_t alignment)
      : bytes_(bytes) {
    if (alignment < alignof(std::max_align_t)) alignment = alignof(std::max_align_t);
    // aligned_alloc requires size to be a multiple of alignment.
    const std::size_t padded_size = (bytes + alignment - 1) / alignment * alignment;
    ptr_ = std::aligned_alloc(alignment, padded_size);
    if (ptr_ == nullptr) throw std::bad_alloc();
  }

  aligned_storage_buffer(aligned_storage_buffer&& o) noexcept
      : ptr_(std::exchange(o.ptr_, nullptr)), bytes_(std::exchange(o.bytes_, 0)) {}

  aligned_storage_buffer& operator=(aligned_storage_buffer&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = std::exchange(o.ptr_, nullptr);
      bytes_ = std::exchange(o.bytes_, 0);
    }
    return *this;
  }

  aligned_storage_buffer(const aligned_storage_buffer&) = delete;
  aligned_storage_buffer& operator=(const aligned_storage_buffer&) = delete;

  ~aligned_storage_buffer() { release(); }

  void* data() noexcept { return ptr_; }
  const void* data() const noexcept { return ptr_; }
  std::size_t size_bytes() const noexcept { return bytes_; }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }

 private:
  void release() noexcept {
    std::free(ptr_);
    ptr_ = nullptr;
  }

  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

/// A cache-line-aligned array of default-constructed T with RAII lifetime.
/// T need not be copyable or movable (atomics welcome).
template <typename T>
class aligned_array {
 public:
  aligned_array() = default;

  explicit aligned_array(std::size_t count, std::size_t alignment = kCacheLineSize)
      : storage_(count * sizeof(T), alignment), count_(count) {
    T* p = static_cast<T*>(storage_.data());
    std::size_t constructed = 0;
    try {
      for (; constructed < count_; ++constructed) std::construct_at(p + constructed);
    } catch (...) {
      while (constructed-- > 0) std::destroy_at(p + constructed);
      throw;
    }
  }

  aligned_array(aligned_array&&) noexcept = default;
  aligned_array& operator=(aligned_array&& o) noexcept {
    if (this != &o) {
      destroy_all();
      storage_ = std::move(o.storage_);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }

  ~aligned_array() { destroy_all(); }

  T* data() noexcept { return static_cast<T*>(storage_.data()); }
  const T* data() const noexcept { return static_cast<const T*>(storage_.data()); }
  std::size_t size() const noexcept { return count_; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + count_; }

 private:
  void destroy_all() noexcept {
    if (!storage_) return;
    T* p = data();
    for (std::size_t i = count_; i-- > 0;) std::destroy_at(p + i);
    count_ = 0;
  }

  aligned_storage_buffer storage_;
  std::size_t count_ = 0;
};

}  // namespace ffq::runtime
