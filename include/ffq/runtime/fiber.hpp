// fiber.hpp — a minimal cooperative (m:n) user-level thread scheduler.
//
// Paper §I: "Modern programming languages like Go and Rust support
// application level threads, i.e., they have their own scheduler that
// maps m application threads to n operating system threads. In such
// settings, to avoid spinning while waiting for a return from an
// operating system call, we can call the scheduler to indicate that
// another application thread can execute."
//
// This is that scheduler, reduced to what the asynchronous-syscall
// architecture needs: one `fiber_scheduler` per OS thread, cooperative
// fibers (ucontext-based), `yield()` from inside a fiber, and a
// `wait_until(pred)` helper that yields until a condition holds — the
// idiom an app fiber uses while its syscall response is in flight.
// With m fibers per OS thread, a single producer keeps up to m requests
// outstanding in its SPMC submission queue, which is exactly the
// "implicit flow control" population the paper dimensions queues for.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace ffq::runtime {

class fiber_scheduler {
 public:
  /// Per-fiber stack size. Syscall-shim fibers are shallow; 64 KiB is
  /// plenty and keeps m:n configurations cheap.
  static constexpr std::size_t kStackBytes = 64 * 1024;

  fiber_scheduler();
  ~fiber_scheduler();

  fiber_scheduler(const fiber_scheduler&) = delete;
  fiber_scheduler& operator=(const fiber_scheduler&) = delete;

  /// Register a fiber. Must be called before run() or from inside a
  /// running fiber of this scheduler.
  void spawn(std::function<void()> fn);

  /// Run fibers round-robin on the calling OS thread until every fiber
  /// has finished. Re-entrant spawns are picked up.
  void run();

  /// Number of fibers not yet finished (valid inside run()).
  std::size_t live_fibers() const noexcept;

  // --- static API usable from inside a fiber ---------------------------

  /// Cooperative yield: back to the scheduler, which resumes the next
  /// ready fiber. No-op when called outside a fiber.
  static void yield();

  /// Yield until `pred()` returns true (checked each time this fiber is
  /// rescheduled). Returns immediately if it already holds.
  template <typename Pred>
  static void wait_until(Pred&& pred) {
    while (!pred()) yield();
  }

  /// True when the caller runs inside a fiber of some scheduler.
  static bool in_fiber() noexcept;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace ffq::runtime
