// timing.hpp — cycle counters, TSC calibration, and calibrated spin delays.
//
// Three distinct needs across the reproduction:
//   * throughput benches need a cheap monotonic wall clock,
//   * the application benchmark (Fig. 7 right) reports latency in CPU
//     *cycles*, like the paper,
//   * the comparative benchmark needs 50–150 ns "think time" delays whose
//     cost is dominated by the delay itself, not by reading a clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace ffq::runtime {

/// Raw timestamp counter. On x86-64 this is `rdtsc`; constant-rate and
/// monotonic on every CPU from the last decade. Elsewhere falls back to
/// steady_clock nanoseconds.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// `rdtsc` with a compiler barrier on both sides so the measured region
/// cannot be moved across the read. (Not a serializing instruction; fine
/// for the >100-cycle regions we measure.)
inline std::uint64_t rdtsc_fenced() noexcept {
  asm volatile("" ::: "memory");
  const std::uint64_t t = rdtsc();
  asm volatile("" ::: "memory");
  return t;
}

/// Measured TSC frequency in GHz (cycles per nanosecond). Calibrated once
/// on first use against steady_clock over a few milliseconds.
double tsc_ghz();

/// Convert a TSC delta to nanoseconds using the calibrated frequency.
double tsc_to_ns(std::uint64_t cycles);

/// Convert nanoseconds to TSC cycles.
std::uint64_t ns_to_tsc(double ns);

/// Busy-wait for approximately `ns` nanoseconds by spinning on the TSC.
/// Used for the benchmark think time and for the sgxsim enclave-transition
/// cost model; precision is a few cycles, far below the modeled costs.
inline void spin_ns_tsc(std::uint64_t deadline_cycles) noexcept {
#if defined(__x86_64__)
  while (__rdtsc() < deadline_cycles) {
    // empty: a pause here would overshoot short (50 ns) delays
  }
#else
  (void)deadline_cycles;
#endif
}

void spin_ns(double ns);

/// Measurement window spanning multiple worker threads: each worker
/// marks its own start (right after the start barrier) and end (right
/// before the finish barrier); the window is max(end) - min(start).
///
/// This is robust against coordinator starvation: on machines with more
/// benchmark threads than cores, a coordinator thread timing the run
/// with its own clock may not be scheduled while the workers monopolize
/// the cores, producing arbitrarily wrong (even zero-length) windows.
class time_window_recorder {
 public:
  explicit time_window_recorder(std::size_t workers)
      : start_(workers, 0), end_(workers, 0) {}

  void mark_start(std::size_t worker) { start_[worker] = rdtsc_fenced(); }
  void mark_end(std::size_t worker) { end_[worker] = rdtsc_fenced(); }

  /// Window length in seconds. Call after all workers are joined.
  double seconds() const {
    std::uint64_t lo = ~0ULL, hi = 0;
    for (std::size_t i = 0; i < start_.size(); ++i) {
      lo = start_[i] < lo ? start_[i] : lo;
      hi = end_[i] > hi ? end_[i] : hi;
    }
    if (hi <= lo) return 0.0;
    return tsc_to_ns(hi - lo) * 1e-9;
  }

 private:
  std::vector<std::uint64_t> start_;
  std::vector<std::uint64_t> end_;
};

/// Simple scope timer for coarse phases (reports seconds).
class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ffq::runtime
