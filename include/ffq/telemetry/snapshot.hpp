// snapshot.hpp — point-in-time view of all registered metrics, plus the
// versioned JSON schema every exporter in the repo shares.
//
// Schema "ffq.metrics.v1":
//   {
//     "schema": "ffq.metrics.v1",
//     "counters": { "<domain>/<name>": <uint>, ... },
//     "histograms": {
//       "<name>": { "count": u, "max": u, "mean": u,
//                    "p50": u, "p90": u, "p99": u, "p999": u }, ...
//     },
//     "perf": { "<event>": <uint>, ... }        // optional, may be {}
//   }
//
// All values are integers (counts and nanoseconds) so the output is
// byte-stable across platforms and locales, and both maps are
// std::map — iteration order IS key order, which makes the export
// deterministic and golden-file testable.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ffq/telemetry/histogram.hpp"

namespace ffq::telemetry {

inline constexpr const char* kMetricsSchema = "ffq.metrics.v1";

struct metrics_snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, histogram_summary> histograms;
  std::map<std::string, std::uint64_t> perf;

  bool empty() const noexcept {
    return counters.empty() && histograms.empty() && perf.empty();
  }

  /// Render as a JSON object. `indent` is the column every line is
  /// indented to, so the snapshot can be embedded inside a larger
  /// document (harness::report::table::write_json) or written standalone
  /// with indent 0.
  std::string to_json(int indent = 0) const;

  /// Write `to_json(0)` (plus a trailing newline) to `path`. Returns
  /// false if the file cannot be opened.
  bool write_json_file(const std::string& path) const;
};

}  // namespace ffq::telemetry
