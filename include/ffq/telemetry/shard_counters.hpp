// shard_counters.hpp — the shard fabric's scheduler counters behind the
// telemetry policy (DESIGN.md §11).
//
// The fabric's per-shard queues already carry the full queue_counters set
// (gaps, skips, stalls, ...); this block counts what the *scheduler* on
// top of them does:
//
//   steals        consumer left its round-robin cursor for the busiest
//                 other shard after its current shard ran dry
//   empty_polls   shard visits that yielded nothing
//   empty_sweeps  polls in which no shard (current or steal target) had
//                 anything claimable — the consumer went away empty
//   drains        drain calls that returned ≥ 1 item
//   drained_items total items handed out by the scheduler
//   drain_batch_* log2 histogram of drain batch sizes (same buckets as
//                 the queues' bulk histogram)
//
// Same contract as queue_counters: the enabled specialization uses
// relaxed fetch-add on miss/decision paths only, the disabled one is an
// empty class held through [[no_unique_address]] so the OFF fabric layout
// is byte-identical (mirror static_asserts in tests/test_shard.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "ffq/telemetry/counters.hpp"
#include "ffq/telemetry/policy.hpp"

namespace ffq::telemetry {

template <typename Policy = default_policy>
class fabric_counters;

template <>
class fabric_counters<enabled> {
 public:
  static constexpr bool kEnabled = true;

  void on_steal() noexcept { bump(steals_); }
  void on_empty_poll() noexcept { bump(empty_polls_); }
  void on_empty_sweep() noexcept { bump(empty_sweeps_); }
  void on_drain(std::size_t n) noexcept {
    bump(drains_);
    drained_items_.fetch_add(n, std::memory_order_relaxed);
    bump(drain_hist_[bulk_bucket(n)]);
  }

  std::uint64_t steals() const noexcept { return get(steals_); }
  std::uint64_t empty_polls() const noexcept { return get(empty_polls_); }
  std::uint64_t empty_sweeps() const noexcept { return get(empty_sweeps_); }
  std::uint64_t drains() const noexcept { return get(drains_); }
  std::uint64_t drained_items() const noexcept { return get(drained_items_); }
  std::uint64_t drain_batches(std::size_t bucket) const noexcept {
    return get(drain_hist_[bucket]);
  }

  /// Visit every counter as (name, value) — the interface
  /// registry::accumulate_queue consumes.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    fn("steals", steals());
    fn("empty_polls", empty_polls());
    fn("empty_sweeps", empty_sweeps());
    fn("drains", drains());
    fn("drained_items", drained_items());
    for (std::size_t b = 0; b < kBulkBucketCount; ++b) {
      fn(drain_bucket_name(b), drain_batches(b));
    }
  }

  static constexpr const char* drain_bucket_name(std::size_t b) noexcept {
    constexpr const char* kNames[kBulkBucketCount] = {
        "drain_batch_1",      "drain_batch_2_3",    "drain_batch_4_7",
        "drain_batch_8_15",   "drain_batch_16_31",  "drain_batch_32_63",
        "drain_batch_64_127", "drain_batch_128_up"};
    return kNames[b];
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }
  static std::uint64_t get(const std::atomic<std::uint64_t>& c) noexcept {
    return c.load(std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> empty_polls_{0};
  std::atomic<std::uint64_t> empty_sweeps_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> drained_items_{0};
  std::atomic<std::uint64_t> drain_hist_[kBulkBucketCount] = {};
};

template <>
class fabric_counters<disabled> {
 public:
  static constexpr bool kEnabled = false;

  void on_steal() noexcept {}
  void on_empty_poll() noexcept {}
  void on_empty_sweep() noexcept {}
  void on_drain(std::size_t) noexcept {}

  std::uint64_t steals() const noexcept { return 0; }
  std::uint64_t empty_polls() const noexcept { return 0; }
  std::uint64_t empty_sweeps() const noexcept { return 0; }
  std::uint64_t drains() const noexcept { return 0; }
  std::uint64_t drained_items() const noexcept { return 0; }
  std::uint64_t drain_batches(std::size_t) const noexcept { return 0; }

  template <typename Fn>
  void for_each(Fn&&) const noexcept {}
};

static_assert(std::is_empty_v<fabric_counters<disabled>>,
              "the disabled policy must add no storage to the fabric");

}  // namespace ffq::telemetry
