// telemetry.hpp — umbrella header for the ffq::telemetry subsystem.
//
// See DESIGN.md §8. The pieces:
//   policy.hpp    — enabled/disabled tags + FFQ_TELEMETRY-selected default
//   counters.hpp  — queue event counter block (the policy's payload)
//   histogram.hpp — log-bucketed latency shards + lock-free merge
//   registry.hpp  — process-wide recorders and counter totals
//   snapshot.hpp  — versioned "ffq.metrics.v1" snapshot + JSON export
#pragma once

#include "ffq/telemetry/counters.hpp"
#include "ffq/telemetry/histogram.hpp"
#include "ffq/telemetry/json.hpp"
#include "ffq/telemetry/policy.hpp"
#include "ffq/telemetry/registry.hpp"
#include "ffq/telemetry/snapshot.hpp"
