// counters.hpp — queue event counters behind the telemetry policy.
//
// One uniform counter set for the whole FFQ family (DESIGN.md §8), so
// SPMC and MPMC — and every future variant — export the same names:
//
//   gaps_created     producer announced a gap rank (Alg. 1 l.13 / Alg. 2
//                    DWCAS gap install)
//   consumer_skips   consumer abandoned a skipped rank ("gap ≥ rank")
//   dwcas_retries    failed cmpxchg16b in the MPMC cell protocol (claim
//                    or gap install lost a race; 0 for SP variants)
//   rank_block_faas  block acquisitions in the bulk paths: one shared-
//                    counter fetch-and-add claiming a *run* of ranks
//   full_stalls      pauses spent in the full-ring regime (the paper's
//                    free-slot assumption violated; footnote 2)
//   backoff_pauses   consumer back-off pauses while a rank is undecided
//   parks / wakes    eventcount kernel parks and producer-side wake-ups
//                    (waitable wrapper only; 0 elsewhere)
//   bulk_calls/items + a log2 batch-size distribution for bulk ops
//
// The enabled specialization uses relaxed fetch-add — every counted
// event is on a miss/contention path, never on the uncontended
// enqueue/dequeue fast path, which is how ON-mode overhead stays <5%
// (bench_telemetry_overhead). The disabled specialization is an empty
// class whose members are no-op inlines; queues hold it through
// [[no_unique_address]] so it occupies no storage.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "ffq/telemetry/policy.hpp"

namespace ffq::telemetry {

/// Log2 buckets of the bulk batch-size distribution: 1, 2-3, 4-7, ...,
/// 128+.
inline constexpr std::size_t kBulkBucketCount = 8;

constexpr std::size_t bulk_bucket(std::size_t n) noexcept {
  const std::size_t lg =
      n == 0 ? 0 : static_cast<std::size_t>(std::bit_width(n) - 1);
  return lg < kBulkBucketCount ? lg : kBulkBucketCount - 1;
}

constexpr const char* bulk_bucket_name(std::size_t b) noexcept {
  constexpr const char* kNames[kBulkBucketCount] = {
      "bulk_batch_1",      "bulk_batch_2_3",    "bulk_batch_4_7",
      "bulk_batch_8_15",   "bulk_batch_16_31",  "bulk_batch_32_63",
      "bulk_batch_64_127", "bulk_batch_128_up"};
  return kNames[b];
}

/// Wait loops flush their locally-accumulated pause counts every this
/// many pauses (power of two), so a stuck wait is observable while it is
/// still in progress at one RMW per kFlushEvery pauses.
inline constexpr std::uint64_t kFlushEvery = 1024;

/// True when a local pause accumulator just crossed a flush boundary.
/// Usage: `++pauses; if (flush_due(pauses)) { tel_.on_x(pauses); pauses = 0; }`
constexpr bool flush_due(std::uint64_t accumulated) noexcept {
  return (accumulated & (kFlushEvery - 1)) == 0;
}

template <typename Policy = default_policy>
class queue_counters;

template <>
class queue_counters<enabled> {
 public:
  static constexpr bool kEnabled = true;

  void on_gap_created() noexcept { bump(gaps_created_); }
  void on_consumer_skip() noexcept { bump(consumer_skips_); }
  void on_dwcas_retry() noexcept { bump(dwcas_retries_); }
  void on_rank_block_faa() noexcept { bump(rank_block_faas_); }
  void on_full_stall() noexcept { bump(full_stalls_); }
  void on_backoff_pause() noexcept { bump(backoff_pauses_); }
  // Batched forms for spin loops: accumulate in a register inside the
  // wait loop and flush once per episode — one RMW per *wait*, not one
  // per pause, which keeps heavily-contended runs within the overhead
  // budget. `n == 0` (the common no-wait case) is free. Wait loops also
  // flush every kFlushEvery pauses (see flush_due) so a thread stuck
  // waiting stays visible to live snapshots.
  void on_full_stalls(std::uint64_t n) noexcept {
    if (n != 0) full_stalls_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_dwcas_retries(std::uint64_t n) noexcept {
    if (n != 0) dwcas_retries_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_backoff_pauses(std::uint64_t n) noexcept {
    if (n != 0) backoff_pauses_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_park() noexcept { bump(parks_); }
  void on_wake() noexcept { bump(wakes_); }
  void on_bulk(std::size_t n) noexcept {
    bump(bulk_calls_);
    bulk_items_.fetch_add(n, std::memory_order_relaxed);
    bump(bulk_hist_[bulk_bucket(n)]);
  }

  std::uint64_t gaps_created() const noexcept { return get(gaps_created_); }
  std::uint64_t consumer_skips() const noexcept { return get(consumer_skips_); }
  std::uint64_t dwcas_retries() const noexcept { return get(dwcas_retries_); }
  std::uint64_t rank_block_faas() const noexcept { return get(rank_block_faas_); }
  std::uint64_t full_stalls() const noexcept { return get(full_stalls_); }
  std::uint64_t backoff_pauses() const noexcept { return get(backoff_pauses_); }
  std::uint64_t parks() const noexcept { return get(parks_); }
  std::uint64_t wakes() const noexcept { return get(wakes_); }
  std::uint64_t bulk_calls() const noexcept { return get(bulk_calls_); }
  std::uint64_t bulk_items() const noexcept { return get(bulk_items_); }
  std::uint64_t bulk_batches(std::size_t bucket) const noexcept {
    return get(bulk_hist_[bucket]);
  }

  /// Visit every counter as (name, value) — the export interface the
  /// registry and snapshots consume.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    fn("gaps_created", gaps_created());
    fn("consumer_skips", consumer_skips());
    fn("dwcas_retries", dwcas_retries());
    fn("rank_block_faas", rank_block_faas());
    fn("full_stalls", full_stalls());
    fn("backoff_pauses", backoff_pauses());
    fn("parks", parks());
    fn("wakes", wakes());
    fn("bulk_calls", bulk_calls());
    fn("bulk_items", bulk_items());
    for (std::size_t b = 0; b < kBulkBucketCount; ++b) {
      fn(bulk_bucket_name(b), bulk_batches(b));
    }
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }
  static std::uint64_t get(const std::atomic<std::uint64_t>& c) noexcept {
    return c.load(std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> gaps_created_{0};
  std::atomic<std::uint64_t> consumer_skips_{0};
  std::atomic<std::uint64_t> dwcas_retries_{0};
  std::atomic<std::uint64_t> rank_block_faas_{0};
  std::atomic<std::uint64_t> full_stalls_{0};
  std::atomic<std::uint64_t> backoff_pauses_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakes_{0};
  std::atomic<std::uint64_t> bulk_calls_{0};
  std::atomic<std::uint64_t> bulk_items_{0};
  std::atomic<std::uint64_t> bulk_hist_[kBulkBucketCount] = {};
};

template <>
class queue_counters<disabled> {
 public:
  static constexpr bool kEnabled = false;

  void on_gap_created() noexcept {}
  void on_consumer_skip() noexcept {}
  void on_dwcas_retry() noexcept {}
  void on_rank_block_faa() noexcept {}
  void on_full_stall() noexcept {}
  void on_backoff_pause() noexcept {}
  void on_full_stalls(std::uint64_t) noexcept {}
  void on_dwcas_retries(std::uint64_t) noexcept {}
  void on_backoff_pauses(std::uint64_t) noexcept {}
  void on_park() noexcept {}
  void on_wake() noexcept {}
  void on_bulk(std::size_t) noexcept {}

  std::uint64_t gaps_created() const noexcept { return 0; }
  std::uint64_t consumer_skips() const noexcept { return 0; }
  std::uint64_t dwcas_retries() const noexcept { return 0; }
  std::uint64_t rank_block_faas() const noexcept { return 0; }
  std::uint64_t full_stalls() const noexcept { return 0; }
  std::uint64_t backoff_pauses() const noexcept { return 0; }
  std::uint64_t parks() const noexcept { return 0; }
  std::uint64_t wakes() const noexcept { return 0; }
  std::uint64_t bulk_calls() const noexcept { return 0; }
  std::uint64_t bulk_items() const noexcept { return 0; }
  std::uint64_t bulk_batches(std::size_t) const noexcept { return 0; }

  template <typename Fn>
  void for_each(Fn&&) const noexcept {}
};

static_assert(std::is_empty_v<queue_counters<disabled>>,
              "the disabled policy must add no storage to queues");

}  // namespace ffq::telemetry
