// policy.hpp — the compile-time switch for queue instrumentation.
//
// Telemetry is a per-instantiation *policy*, not a global ifdef: every
// queue takes a `Telemetry` template parameter that is either
// `telemetry::enabled` or `telemetry::disabled`. The CMake option
// `FFQ_TELEMETRY` only selects which one `default_policy` aliases, so
//   * a default (OFF) build compiles the disabled policy everywhere —
//     empty counter objects, no-op inline member functions, unchanged
//     sizeof and codegen (verified by static_asserts in
//     tests/test_telemetry.cpp and by bench_telemetry_overhead);
//   * tests and the overhead bench can instantiate *both* policies in
//     one binary and compare them directly, independent of the build
//     mode.
#pragma once

namespace ffq::telemetry {

/// Policy tag: compile event counters into the queue hot paths.
struct enabled {
  static constexpr bool kEnabled = true;
};

/// Policy tag: all instrumentation compiles to nothing.
struct disabled {
  static constexpr bool kEnabled = false;
};

#if defined(FFQ_TELEMETRY) && FFQ_TELEMETRY
using default_policy = enabled;
#else
using default_policy = disabled;
#endif

}  // namespace ffq::telemetry
