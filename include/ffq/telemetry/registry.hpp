// registry.hpp — the process-wide metrics registry.
//
// Two kinds of state flow in:
//   * latency recorders — named collections of per-thread
//     `log_histogram` shards. A worker calls `new_shard()` once
//     (mutex-guarded registration; shard storage is a deque so pointers
//     stay stable) and then records with zero synchronization; the
//     snapshot path merges shards with relaxed reads and never blocks a
//     writer.
//   * counter totals — `accumulate(domain, name, delta)` folds event
//     counts into named totals. Queues are typically *destroyed* before
//     a bench exports its report (harness::pairwise creates one queue
//     per run), so instead of holding queue pointers the harness folds
//     each queue's `queue_counters` into the registry right before the
//     queue dies (`accumulate_queue`), and the totals outlive it.
//
// `snapshot()` returns a metrics_snapshot (schema "ffq.metrics.v1");
// `reset()` clears everything between independent experiment phases.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "ffq/telemetry/histogram.hpp"
#include "ffq/telemetry/snapshot.hpp"

namespace ffq::telemetry {

/// A named latency series. Threads own shards; snapshots merge them.
class latency_recorder {
 public:
  /// Register and return a new single-writer shard for the calling
  /// thread. The pointer stays valid until registry::reset().
  log_histogram* new_shard();

  /// Merge all shards (relaxed reads; writers keep running).
  merged_histogram merge() const;

 private:
  friend class registry;
  mutable std::mutex mu_;
  std::deque<log_histogram> shards_;
};

class registry {
 public:
  static registry& instance();

  /// Get or create the latency recorder with this name.
  latency_recorder& recorder(std::string_view name);

  /// Fold `delta` into the counter total "<domain>/<name>".
  void accumulate(std::string_view domain, std::string_view name,
                  std::uint64_t delta);

  /// Fold every counter of a queue's telemetry block into
  /// "<domain>/<counter>" totals. Call right before the queue is
  /// destroyed; a disabled-policy block contributes nothing.
  template <typename Counters>
  void accumulate_queue(std::string_view domain, const Counters& c) {
    c.for_each([&](const char* name, std::uint64_t value) {
      if (value != 0) accumulate(domain, name, value);
    });
  }

  /// Attach one hardware perf-counter sample (runtime::perf_counters)
  /// to the next snapshot. Last write per name wins.
  void set_perf_sample(std::string_view name, std::uint64_t value);

  metrics_snapshot snapshot() const;

  /// Drop all recorders, counter totals, and perf samples. Outstanding
  /// shard pointers are invalidated — only call between phases when no
  /// worker threads are recording.
  void reset();

 private:
  registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, latency_recorder> recorders_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> perf_;
};

}  // namespace ffq::telemetry
