// histogram.hpp — HDR-style log-bucketed latency histograms.
//
// The paper reports syscall latency as a single average (Fig. 7 right);
// a production service needs the tail. An HDR-style histogram keeps
// bounded relative error at every magnitude: values below 2^kSubBits
// get exact unit buckets, and every further octave is split into
// 2^kSubBits sub-buckets, so the bucket width is always ≤ 1/2^kSubBits
// of the value (12.5% with kSubBits = 3) while the whole table is 496
// buckets (~4 KB) covering the full uint64 range.
//
// Concurrency model: one `log_histogram` is a single-writer *shard* —
// the owning thread records with plain relaxed load+store (no lock
// prefix on the hot path) and any thread may concurrently read the
// buckets with relaxed loads. Percentiles come from merging shards into
// a `merged_histogram` at snapshot time; the merge never blocks writers
// (registry.hpp holds a mutex only around shard *registration*).
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace ffq::telemetry {

/// Summary statistics of one (merged) histogram. All values are in the
/// recorded unit (nanoseconds everywhere in this repository). Integer
/// fields keep the JSON export byte-stable across platforms.
struct histogram_summary {
  std::uint64_t count = 0;
  std::uint64_t max = 0;
  std::uint64_t mean = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

class log_histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount =
      (64 - kSubBits) * kSubBuckets + kSubBuckets;

  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const std::size_t block = msb - kSubBits + 1;
    const std::size_t sub = (v >> (msb - kSubBits)) & (kSubBuckets - 1);
    return block * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `idx` (inverse of bucket_index).
  static constexpr std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < kSubBuckets) return idx;
    const std::size_t block = idx / kSubBuckets;
    const std::size_t sub = idx % kSubBuckets;
    const unsigned msb = static_cast<unsigned>(block) + kSubBits - 1;
    return (std::uint64_t{1} << msb) |
           (static_cast<std::uint64_t>(sub) << (msb - kSubBits));
  }

  static constexpr std::uint64_t bucket_width(std::size_t idx) noexcept {
    if (idx < kSubBuckets) return 1;
    const unsigned msb =
        static_cast<unsigned>(idx / kSubBuckets) + kSubBits - 1;
    return std::uint64_t{1} << (msb - kSubBits);
  }

  /// Representative value reported for a bucket (its midpoint; exact for
  /// the unit buckets below 2^kSubBits).
  static constexpr std::uint64_t bucket_mid(std::size_t idx) noexcept {
    return bucket_lower(idx) + (bucket_width(idx) - 1) / 2;
  }

  /// Record one value. Owner thread only: uses relaxed load+store so the
  /// hot path has no locked RMW; concurrent snapshot readers are fine,
  /// concurrent *writers* are not (that is what per-thread shards are for).
  void record(std::uint64_t v) noexcept {
    relaxed_add(counts_[bucket_index(v)], 1);
    relaxed_add(sum_, v);
    relaxed_add(count_, 1);
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t idx) const noexcept {
    return counts_[idx].load(std::memory_order_relaxed);
  }

 private:
  static void relaxed_add(std::atomic<std::uint64_t>& c,
                          std::uint64_t d) noexcept {
    c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> counts_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Snapshot-side accumulator over any number of shards.
class merged_histogram {
 public:
  void add(const log_histogram& shard) noexcept {
    for (std::size_t i = 0; i < log_histogram::kBucketCount; ++i) {
      counts_[i] += shard.bucket(i);
    }
    count_ += shard.count();
    sum_ += shard.sum();
    if (shard.max() > max_) max_ = shard.max();
  }

  histogram_summary summary() const noexcept {
    histogram_summary s;
    s.count = count_;
    s.max = max_;
    if (count_ == 0) return s;
    s.mean = sum_ / count_;
    s.p50 = percentile(0.50);
    s.p90 = percentile(0.90);
    s.p99 = percentile(0.99);
    s.p999 = percentile(0.999);
    return s;
  }

  /// Value at quantile `q` ∈ (0, 1]: the midpoint of the bucket holding
  /// the ceil(q·count)-th recorded value, clamped to the observed max.
  std::uint64_t percentile(double q) const noexcept {
    if (count_ == 0) return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
    if (target < 1) target = 1;
    if (target > count_) target = count_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < log_histogram::kBucketCount; ++i) {
      cum += counts_[i];
      if (cum >= target) {
        const std::uint64_t mid = log_histogram::bucket_mid(i);
        return mid < max_ ? mid : max_;
      }
    }
    return max_;
  }

  std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t counts_[log_histogram::kBucketCount] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ffq::telemetry
