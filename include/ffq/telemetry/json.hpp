// json.hpp — minimal JSON string escaping shared by the telemetry
// snapshot export and harness::report.
//
// The repo deliberately has no JSON library dependency; everything we
// emit is built from escaped strings and integers. This helper is the
// one escaping routine both writers share, covering the full set RFC
// 8259 requires: quote, backslash, and every control character below
// 0x20 (named escapes where they exist, \u00XX otherwise).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ffq::telemetry {

inline std::string json_escape(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += ch;
        }
        break;
    }
  }
  return out;
}

}  // namespace ffq::telemetry
