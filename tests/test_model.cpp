// Model-checking tests: exhaustively explore every interleaving of the
// Algorithm 1 / Algorithm 2 state machines for small configurations.
//
// Two kinds of assertions:
//  * the faithful models PASS (no safety violation, every reachable
//    state can complete) — a machine-checked version of the paper's
//    Propositions 1–3 for bounded configurations;
//  * each mutation that removes one of the paper's §III safeguards is
//    CAUGHT — which both validates the safeguards and proves the checker
//    is actually capable of finding these bugs.
#include <gtest/gtest.h>

#include <memory>

#include "ffq/model/checker.hpp"
#include "ffq/model/ffq_alg1.hpp"
#include "ffq/model/ffq_alg2.hpp"

using namespace ffq::model;

namespace {

/// 1 producer of `items` values, consumers with the given quotas.
world make_alg1(std::size_t cells, int items, std::vector<int> quotas,
                producer_mutation pmut = producer_mutation::none,
                consumer_mutation cmut = consumer_mutation::none) {
  world w(cells, items);
  w.producer_ranges_ = {{1, items}};
  w.threads_.push_back(std::make_unique<alg1_producer>(1, items, pmut));
  for (int q : quotas) {
    w.threads_.push_back(std::make_unique<alg1_consumer>(q, cmut));
  }
  return w;
}

/// Bulk variant of make_alg1: 1 producer enqueueing `items` values in
/// batches of `pbatch` (single tail store per batch); consumers run
/// dequeue_bulk with run size `cbatch` when cbatch > 0, scalar dequeues
/// when cbatch == 0.
world make_alg1_bulk(std::size_t cells, int items, int pbatch, int cbatch,
                     std::vector<int> quotas,
                     producer_mutation pmut = producer_mutation::none,
                     consumer_mutation cmut = consumer_mutation::none) {
  world w(cells, items);
  w.producer_ranges_ = {{1, items}};
  w.threads_.push_back(std::make_unique<alg1_bulk_producer>(1, items, pbatch, pmut));
  for (int q : quotas) {
    if (cbatch > 0) {
      w.threads_.push_back(std::make_unique<alg1_bulk_consumer>(q, cbatch, cmut));
    } else {
      w.threads_.push_back(std::make_unique<alg1_consumer>(q, cmut));
    }
  }
  return w;
}

/// `producers` MPMC producers with `per` values each + consumers.
world make_alg2(std::size_t cells, int producers, int per,
                std::vector<int> quotas,
                alg2_mutation mut = alg2_mutation::none) {
  world w(cells, producers * per);
  for (int p = 0; p < producers; ++p) {
    w.producer_ranges_.emplace_back(p * per + 1, (p + 1) * per);
    w.threads_.push_back(std::make_unique<alg2_producer>(p * per + 1, per, mut));
  }
  for (int q : quotas) {
    w.threads_.push_back(std::make_unique<alg1_consumer>(q));
  }
  return w;
}

}  // namespace

// ---------------------------------------------------------------------------
// Faithful models: must verify.
// ---------------------------------------------------------------------------

TEST(ModelAlg1, SingleConsumerVerifies) {
  const auto r = check(make_alg1(2, 3, {3}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.states, 10u);
  EXPECT_GT(r.terminals, 0u);
}

TEST(ModelAlg1, TwoConsumersVerify) {
  const auto r = check(make_alg1(2, 3, {2, 1}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelAlg1, TwoConsumersLargerRingVerifies) {
  const auto r = check(make_alg1(4, 4, {2, 2}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelAlg1, ThreeConsumersVerify) {
  const auto r = check(make_alg1(2, 4, {2, 1, 1}));
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ModelAlg2, TwoProducersOneConsumerVerifies) {
  const auto r = check(make_alg2(2, 2, 2, {4}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelAlg2, TwoProducersTwoConsumersVerify) {
  // One item per producer keeps two consumers tractable (the 2x2-item
  // two-consumer graph exceeds the state budget).
  const auto r = check(make_alg2(2, 2, 1, {1, 1}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelAlg2, SingleCellRingVerifies) {
  // One cell maximizes collisions: every rank maps to the same cell.
  const auto r = check(make_alg2(1, 2, 2, {4}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// Batched operations (DESIGN.md §5.8): the bulk machines keep Algorithm 1's
// cell protocol, so the scalar invariants must carry over verbatim.
// ---------------------------------------------------------------------------

TEST(ModelAlg1Bulk, BulkProducerWithScalarConsumersVerifies) {
  // enqueue_bulk defers the shared tail store to the batch boundary;
  // scalar consumers never read the tail, so every interleaving must
  // still deliver exactly once in FIFO order.
  const auto r = check(make_alg1_bulk(2, 3, /*pbatch=*/2, /*cbatch=*/0, {2, 1}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelAlg1Bulk, BulkProducerWithBulkConsumerVerifies) {
  const auto r = check(make_alg1_bulk(2, 3, /*pbatch=*/2, /*cbatch=*/2, {3}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

TEST(ModelAlg1Bulk, TwoBulkConsumersVerify) {
  // Two bulk consumers expose the stale-head claim race (head loaded,
  // then fetched-and-added in a separate step) and runs that land on
  // gap ranks; both must preserve exactly-once and liveness.
  const auto r = check(make_alg1_bulk(2, 3, /*pbatch=*/2, /*cbatch=*/2, {2, 1}));
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// Mutations: the checker must catch each removed safeguard.
// ---------------------------------------------------------------------------

TEST(ModelAlg1, PublishBeforeDataIsCaught) {
  // Swapping lines 16/17 lets a consumer read data that was never
  // written (or a stale value from a previous round).
  const auto r = check(make_alg1(2, 3, {2, 1},
                                 producer_mutation::publish_before_data));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("safety"), std::string::npos) << r.violation;
}

TEST(ModelAlg1, SkippingLine29RecheckIsCaught) {
  // Without the rank != rank re-check, a consumer abandons a rank whose
  // item was already published. The gap-accounting monitor flags the
  // skip-of-a-published-rank on the exact edge (it used to surface only
  // downstream, as a liveness wedge).
  const auto r = check(make_alg1(2, 4, {2, 2},
                                 producer_mutation::none,
                                 consumer_mutation::skip_line29_recheck));
  EXPECT_FALSE(r.ok) << "states=" << r.states;
  EXPECT_NE(r.violation.find("safety"), std::string::npos) << r.violation;
  EXPECT_NE(r.violation.find("gap-accounting"), std::string::npos)
      << r.violation;
}

TEST(ModelAlg1Bulk, PublishBeforeDataInBulkIsCaught) {
  // The line 16/17 ordering is per cell, not per batch: deferring the
  // tail store buys no licence to publish a rank before its data.
  const auto r = check(make_alg1_bulk(2, 3, /*pbatch=*/2, /*cbatch=*/0, {2, 1},
                                      producer_mutation::publish_before_data));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("safety"), std::string::npos) << r.violation;
}

TEST(ModelAlg1Bulk, SkippingRecheckInsideClaimedRunIsCaught) {
  // Dropping a rank of the claimed run on gap >= rank alone (without the
  // line-29 rank re-check) loses a just-published item exactly as in the
  // scalar protocol; the claimed-run bookkeeping must not mask it.
  const auto r = check(make_alg1_bulk(2, 4, /*pbatch=*/2, /*cbatch=*/2, {2, 2},
                                      producer_mutation::none,
                                      consumer_mutation::skip_line29_recheck));
  EXPECT_FALSE(r.ok) << "states=" << r.states;
  EXPECT_FALSE(r.violation.empty());
}

TEST(ModelAlg2, DirectPublishWithoutReserveIsCaught) {
  const auto r = check(make_alg2(2, 2, 2, {2, 2},
                                 alg2_mutation::claim_publishes_directly));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("safety"), std::string::npos) << r.violation;
}

TEST(ModelAlg2, GapIgnoringRankIsCaught) {
  // The "enqueue in the past" race of §III-B, now named as such: the
  // monitor flags the publish onto an already-skipped rank on the exact
  // edge (previously only visible as the downstream liveness wedge).
  const auto r = check(make_alg2(1, 2, 2, {4},
                                 alg2_mutation::gap_ignores_rank));
  EXPECT_FALSE(r.ok) << "states=" << r.states;
  EXPECT_NE(r.violation.find("safety"), std::string::npos) << r.violation;
  EXPECT_NE(r.violation.find("enqueue in the past"), std::string::npos)
      << r.violation;
}

TEST(ModelAlg2, ClaimIgnoringGapIsCaught) {
  const auto r = check(make_alg2(1, 2, 2, {4},
                                 alg2_mutation::claim_ignores_gap));
  EXPECT_FALSE(r.ok) << "states=" << r.states;
  EXPECT_NE(r.violation.find("safety"), std::string::npos) << r.violation;
}

TEST(ModelAlg2, ThrottleDeadlockRegressionIsCaught) {
  // Regression memorial: the checker found this deadlock in our own
  // MPMC implementation (full-ring throttle waiting on a cell that
  // holds a LATER rank). The mutation re-introduces the bug; the fixed
  // model/implementation pass the Verifies tests above.
  const auto r = check(make_alg2(1, 2, 2, {4},
                                 alg2_mutation::throttle_ignores_rank_order));
  EXPECT_FALSE(r.ok) << "states=" << r.states;
  EXPECT_NE(r.violation.find("liveness"), std::string::npos) << r.violation;
}

// ---------------------------------------------------------------------------
// Checker mechanics.
// ---------------------------------------------------------------------------

TEST(ModelChecker, ReportsInexhaustiveOnTinyBudget) {
  const auto r = check(make_alg1(2, 3, {2, 1}), /*max_states=*/50);
  EXPECT_FALSE(r.exhausted);
}

TEST(ModelChecker, WorldEncodingDistinguishesStates) {
  world a = make_alg1(2, 2, {2});
  world b = make_alg1(2, 2, {2});
  EXPECT_EQ(a.encode(), b.encode());
  b.threads_[0]->step(b);
  EXPECT_NE(a.encode(), b.encode());
}

TEST(ModelChecker, DuplicateConsumeIsFlaggedByWorld) {
  world w(2, 3);
  w.record_consume(2);
  EXPECT_TRUE(w.violation_.empty());
  w.record_consume(2);
  EXPECT_FALSE(w.violation_.empty());
}

TEST(ModelChecker, OutOfRangeConsumeIsFlagged) {
  world w(2, 3);
  w.record_consume(0);  // "uninitialized data" marker
  EXPECT_FALSE(w.violation_.empty());
}
