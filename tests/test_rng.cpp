#include "ffq/runtime/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rt = ffq::runtime;

TEST(Rng, SplitmixKnownSequenceIsDeterministic) {
  rt::splitmix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  rt::xoshiro256ss a(7), b(7), c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds must give different streams";
}

TEST(Rng, BoundedStaysInBounds) {
  rt::xoshiro256ss g(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.bounded(17), 17u);
  }
  EXPECT_EQ(g.bounded(0), 0u);
  EXPECT_EQ(g.bounded(1), 0u);
}

TEST(Rng, RangeIsInclusiveAndCoversAllValues) {
  rt::xoshiro256ss g(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = g.range(50, 150);
    ASSERT_GE(v, 50u);
    ASSERT_LE(v, 150u);
    seen.insert(v);
  }
  // All 101 values of the paper's think-time interval should occur.
  EXPECT_EQ(seen.size(), 101u);
}

TEST(Rng, RoughUniformity) {
  rt::xoshiro256ss g(2024);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[g.bounded(kBuckets)]++;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(rt::xoshiro256ss::min() == 0);
  static_assert(rt::xoshiro256ss::max() == ~0ULL);
  rt::xoshiro256ss g;
  (void)g();
  SUCCEED();
}
