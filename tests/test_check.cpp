// Tests for ffq::check — the cooperative scheduler (determinism, yield
// hooks), the schedule codec, the three oracles (conservation,
// per-producer FIFO, Wing–Gong linearizability), preemption-bounded DFS
// over the model machines (clean passes and mutation catches with
// replayable witnesses), and seeded fuzzing of the real queues under the
// FFQ_CHECK_YIELD() instrumentation.
//
// FFQ_CHECK is defined before any include so the queues in this TU carry
// live yield points in every preset, not just `check`. The mirror-struct
// static_asserts below prove the instrumentation is layout-neutral: the
// instrumented queues still match the member-sequence mirrors that
// test_trace.cpp pins for the uninstrumented build.
#ifndef FFQ_CHECK
#define FFQ_CHECK 1
#endif

#include "ffq/check/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ffq/core/mpmc.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/core/spsc.hpp"
#include "ffq/core/waitable.hpp"
#include "ffq/model/ffq_alg1.hpp"
#include "ffq/model/ffq_alg2.hpp"
#include "ffq/model/shard_sched.hpp"
#include "ffq/shard/shard.hpp"

namespace chk = ffq::check;
namespace model = ffq::model;

namespace {

// Policies pinned to disabled so the mirror asserts below hold in every
// preset (the telemetry/trace presets flip the *defaults*, which would
// legitimately grow the queues — that is their own suites' concern).
using ffq::core::layout_aligned;
using tel_off = ffq::telemetry::disabled;
using trc_off = ffq::trace::disabled;
using q_spsc = ffq::core::spsc_queue<long long, layout_aligned, tel_off, trc_off>;
using q_spmc = ffq::core::spmc_queue<long long, layout_aligned, tel_off, trc_off>;
using q_mpmc = ffq::core::mpmc_queue<long long, layout_aligned, tel_off, trc_off>;
using q_wait =
    ffq::core::waitable_spsc_queue<long long, layout_aligned, tel_off, trc_off>;

// ---------------------------------------------------------------------------
// Layout neutrality: FFQ_CHECK=1 in this TU, yet the queues still match
// the uninstrumented member-sequence mirrors — FFQ_CHECK_YIELD() adds
// code, never data.
// ---------------------------------------------------------------------------

using spmc_cell = ffq::core::detail::spmc_cell<long long, true>;
using mpmc_cell = ffq::core::detail::mpmc_cell<long long, true>;

struct spsc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<spmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::int64_t> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::uint64_t gaps_created_;
};

struct spmc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<spmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::atomic<std::int64_t>> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::uint64_t gaps_created_;
  std::atomic<std::uint64_t> skips_;
};

struct mpmc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<mpmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::atomic<std::int64_t>> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::atomic<std::uint64_t> gaps_;
  std::atomic<std::uint64_t> skips_;
};

struct waitable_mirror {
  q_spsc q_;
  ffq::runtime::eventcount ec_;
};

static_assert(sizeof(q_spsc) == sizeof(spsc_mirror),
              "FFQ_CHECK yield points must not grow spsc_queue");
static_assert(sizeof(q_spmc) == sizeof(spmc_mirror),
              "FFQ_CHECK yield points must not grow spmc_queue");
static_assert(sizeof(q_mpmc) == sizeof(mpmc_mirror),
              "FFQ_CHECK yield points must not grow mpmc_queue");
static_assert(sizeof(q_wait) == sizeof(waitable_mirror),
              "FFQ_CHECK yield points must not grow waitable_spsc_queue");
static_assert(alignof(q_spsc) == alignof(spsc_mirror));
static_assert(alignof(q_spmc) == alignof(spmc_mirror));
static_assert(alignof(q_mpmc) == alignof(mpmc_mirror));
static_assert(alignof(q_wait) == alignof(waitable_mirror));

// Model shapes shared with tools/check_explore.cpp (kept tiny so DFS
// bound 2 finishes in milliseconds).
model::world make_spsc_model(model::consumer_mutation cmut =
                                 model::consumer_mutation::none) {
  model::world w(2, 3);
  w.producer_ranges_ = {{1, 3}};
  w.threads_.push_back(std::make_unique<model::alg1_producer>(
      1, 3, model::producer_mutation::none));
  w.threads_.push_back(std::make_unique<model::alg1_consumer>(3, cmut));
  return w;
}

model::world make_spmc_model(model::consumer_mutation cmut =
                                 model::consumer_mutation::none) {
  model::world w(2, 4);
  w.producer_ranges_ = {{1, 4}};
  w.threads_.push_back(std::make_unique<model::alg1_producer>(
      1, 4, model::producer_mutation::none));
  w.threads_.push_back(std::make_unique<model::alg1_consumer>(2, cmut));
  w.threads_.push_back(std::make_unique<model::alg1_consumer>(2, cmut));
  return w;
}

/// The shard-scheduler shape check_explore uses for --model shard: two
/// shards (one wraps its ring, one runs short so steals happen), two
/// scheduler consumers starting on opposite cursors.
model::world make_shard_model(model::consumer_mutation cmut =
                                  model::consumer_mutation::none) {
  model::world w = model::world::sharded(2, 2, 6);
  w.producer_ranges_ = {{1, 4}, {5, 6}};
  w.threads_.push_back(std::make_unique<model::shard_producer>(
      0, 1, 4, model::producer_mutation::none));
  w.threads_.push_back(std::make_unique<model::shard_producer>(
      1, 5, 2, model::producer_mutation::none));
  w.threads_.push_back(std::make_unique<model::shard_consumer>(0, 3, 2, cmut));
  w.threads_.push_back(std::make_unique<model::shard_consumer>(1, 3, 2, cmut));
  return w;
}

}  // namespace

// ---------------------------------------------------------------------------
// Schedule codec.
// ---------------------------------------------------------------------------

TEST(CheckSchedule, FormatUsesRunLengthEncoding) {
  EXPECT_EQ(chk::format_schedule({{0, 0, 0, 1, 0, 2, 2}}), "0*3.1.0.2*2");
  EXPECT_EQ(chk::format_schedule({{5}}), "5");
  EXPECT_EQ(chk::format_schedule({{}}), "-");
}

TEST(CheckSchedule, ParseIsTheExactInverse) {
  const std::vector<std::vector<int>> cases = {
      {}, {0}, {1, 1, 1}, {0, 1, 0, 1}, {2, 2, 0, 0, 0, 1}};
  for (const auto& picks : cases) {
    const chk::schedule s{picks};
    const auto back = chk::parse_schedule(chk::format_schedule(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
}

TEST(CheckSchedule, ParseRejectsMalformedInput) {
  for (const char* bad : {"0..1", "*3", "1*", "1*0", "a", "0.1x", "1.*2"}) {
    EXPECT_FALSE(chk::parse_schedule(bad).has_value()) << bad;
  }
}

// ---------------------------------------------------------------------------
// Cooperative scheduler: externally driven, deterministic, yield hooks.
// ---------------------------------------------------------------------------

TEST(CheckSched, StepsTasksInExactlyTheOrderDriven) {
  auto run = [](const std::vector<int>& picks) {
    chk::coop_sched s;
    std::vector<int> log;
    for (int t = 0; t < 3; ++t) {
      s.spawn([&log, t] {
        log.push_back(t);
        chk::coop_sched::yield();
        log.push_back(t + 10);
      });
    }
    for (int p : picks) s.step(p);
    return log;
  };
  // Same schedule twice: bitwise-identical logs (determinism).
  const std::vector<int> picks = {2, 0, 2, 1, 0, 1};
  EXPECT_EQ(run(picks), run(picks));
  EXPECT_EQ(run(picks), (std::vector<int>{2, 0, 12, 1, 10, 11}));
}

TEST(CheckSched, StepOnFinishedTaskIsANoOp) {
  chk::coop_sched s;
  int runs = 0;
  s.spawn([&] { ++runs; });
  EXPECT_FALSE(s.step(0));  // runs to completion, no yield
  EXPECT_TRUE(s.done(0));
  EXPECT_FALSE(s.step(0));
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(s.all_done());
  EXPECT_TRUE(s.runnable().empty());
}

TEST(CheckSched, QueueYieldPointsRouteToTheScheduler) {
  // An instrumented enqueue/try_dequeue hits FFQ_CHECK_YIELD() inside the
  // queue; the hook must bounce control back to the driver mid-operation.
  chk::coop_sched s;
  q_spsc q(4);
  std::vector<std::string> log;
  s.spawn([&] {
    q.enqueue(7);
    log.push_back("enqueued");
  });
  s.spawn([&] {
    long long v = 0;
    while (!q.try_dequeue(v)) chk::coop_sched::yield();
    log.push_back("dequeued " + std::to_string(v));
  });
  // The producer's first step must stop at a yield point *inside*
  // enqueue — i.e. before "enqueued" is logged.
  EXPECT_TRUE(s.step(0));
  EXPECT_TRUE(log.empty());
  while (!s.all_done()) {
    for (int t : s.runnable()) s.step(t);
  }
  EXPECT_EQ(log, (std::vector<std::string>{"enqueued", "dequeued 7"}));
}

// ---------------------------------------------------------------------------
// Oracles.
// ---------------------------------------------------------------------------

TEST(CheckOracles, ConservationCatchesLossAndDuplication) {
  std::string why;
  EXPECT_TRUE(chk::check_conservation({1, 2, 3}, {3, 1, 2}, &why));
  EXPECT_FALSE(chk::check_conservation({1, 2, 3}, {1, 2}, &why));
  EXPECT_NE(why.find("lost"), std::string::npos);
  EXPECT_FALSE(chk::check_conservation({1, 2}, {1, 2, 2}, &why));
  EXPECT_NE(why.find("never enqueued"), std::string::npos);
}

TEST(CheckOracles, PerProducerFifoCatchesReordering) {
  std::string why;
  using S = std::vector<std::vector<long long>>;
  const auto v = [](long long p, long long s) {
    return p * chk::kProducerStride + s;
  };
  // Interleaving producers within a stream is fine; going backwards
  // within one producer is not.
  EXPECT_TRUE(chk::check_per_producer_fifo(
      S{{v(0, 0), v(1, 0), v(0, 1), v(1, 1)}}, &why));
  EXPECT_FALSE(
      chk::check_per_producer_fifo(S{{v(0, 1), v(1, 0), v(0, 0)}}, &why));
  EXPECT_NE(why.find("fifo"), std::string::npos);
  // Ordering across consumers is unconstrained.
  EXPECT_TRUE(chk::check_per_producer_fifo(S{{v(0, 1)}, {v(0, 0)}}, &why));
}

TEST(CheckOracles, LinearizabilityAcceptsAWitnessableHistory) {
  std::string why;
  // enq(1) and enq(2) overlap, then both are dequeued 2-first: legal,
  // because the overlapping enqueues may linearize in either order.
  const std::vector<chk::lin_op> h = {
      {0, true, 1, 0, 3},
      {1, true, 2, 1, 2},
      {2, false, 2, 4, 5},
      {2, false, 1, 6, 7},
  };
  EXPECT_TRUE(chk::check_linearizable(h, &why)) << why;
}

TEST(CheckOracles, LinearizabilityRejectsReorderedSequentialEnqueues) {
  std::string why;
  // enq(1) returns before enq(2) is invoked, so 1 precedes 2 in every
  // linearization — yet 2 came out first. No witness exists.
  const std::vector<chk::lin_op> h = {
      {0, true, 1, 0, 1},
      {0, true, 2, 2, 3},
      {1, false, 2, 4, 5},
      {1, false, 1, 6, 7},
  };
  EXPECT_FALSE(chk::check_linearizable(h, &why));
  EXPECT_NE(why.find("linearizability"), std::string::npos);
}

TEST(CheckOracles, LinearizabilityRejectsDequeueBeforeAnyEnqueue) {
  std::string why;
  const std::vector<chk::lin_op> h = {
      {0, false, 1, 0, 1},  // dequeue of 1 completed...
      {1, true, 1, 2, 3},   // ...before its enqueue was even invoked
  };
  EXPECT_FALSE(chk::check_linearizable(h, &why));
}

// ---------------------------------------------------------------------------
// Model exploration: clean DFS passes, mutation catches, witness replay.
// ---------------------------------------------------------------------------

TEST(CheckExplore, CleanSpscModelPassesExhaustiveBound2) {
  const auto r = chk::dfs_explore(make_spsc_model(), {});
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.terminals, 0u);
}

TEST(CheckExplore, CleanSpmcModelPassesExhaustiveBound2) {
  const auto r = chk::dfs_explore(make_spmc_model(), {});
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.terminals, 0u);
}

TEST(CheckExplore, InjectedLine29BugIsCaughtWithReplayableWitness) {
  // The paper's line-29 re-check omitted: a consumer skips a rank the
  // producer already published. DFS must find it within preemption bound
  // 2 and hand back a schedule that reproduces it exactly.
  const auto w =
      make_spmc_model(model::consumer_mutation::skip_line29_recheck);
  const auto r = chk::dfs_explore(w, {});
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("gap-accounting"), std::string::npos)
      << r.violation;
  ASSERT_FALSE(r.witness.picks.empty());

  // The witness string round-trips through the codec and replays to the
  // same violation — this is the workflow a human uses from the CLI.
  const auto parsed =
      chk::parse_schedule(chk::format_schedule(r.witness));
  ASSERT_TRUE(parsed.has_value());
  const auto replay = chk::replay_model(w, *parsed);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.violation, r.violation);

  // The same schedule on the *unmutated* model trips no safety monitor:
  // the witness pins the bug, not the schedule shape. (The witness is
  // truncated at the violating edge, so on the clean model the only
  // acceptable complaint is that the schedule ends early.)
  const auto clean = chk::replay_model(make_spmc_model(), *parsed);
  EXPECT_EQ(clean.violation.find("safety"), std::string::npos)
      << clean.violation;
}

TEST(CheckExplore, CleanShardSchedulerModelPassesExhaustiveBound2) {
  const auto r = chk::dfs_explore(make_shard_model(), {});
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.terminals, 0u);
}

// Differential masking claim (model/shard_sched.hpp): the scheduler's
// tail-bounded claims decide every rank before it is claimed, so the
// line-29 consumer race — which the scalar SPMC model catches above —
// is unreachable through the fabric's bulk drain. The pair of results
// (flagged scalar, clean scheduler) is the machine-checked statement.
TEST(CheckExplore, ShardSchedulerMasksTheLine29RaceTheScalarPathHas) {
  const auto scalar = chk::dfs_explore(
      make_spmc_model(model::consumer_mutation::skip_line29_recheck), {});
  ASSERT_FALSE(scalar.ok);
  const auto sched = chk::dfs_explore(
      make_shard_model(model::consumer_mutation::skip_line29_recheck), {});
  EXPECT_TRUE(sched.ok) << sched.violation;
  EXPECT_TRUE(sched.exhausted);
}

TEST(CheckExplore, ModelFuzzPassesAndIsSeedDeterministic) {
  const auto a = chk::fuzz_model(make_spmc_model(), 7, 300);
  EXPECT_TRUE(a.ok) << a.violation;
  const auto b = chk::fuzz_model(make_spmc_model(), 7, 300);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.terminals, b.terminals);
}

// ---------------------------------------------------------------------------
// Real queues under the harness: seeded fuzz + schedule replay.
// ---------------------------------------------------------------------------

namespace {

chk::program_config small_cfg(int producers, int consumers) {
  chk::program_config cfg;
  cfg.capacity = 4;
  cfg.producers = producers;
  cfg.consumers = consumers;
  cfg.items_per_producer = 5;
  return cfg;
}

}  // namespace

TEST(CheckQueues, FuzzSpscPasses) {
  const auto r = chk::fuzz_queue<q_spsc>(small_cfg(1, 1), 11, 300);
  EXPECT_TRUE(r.ok) << r.failure.violation
                    << "\nschedule: " << chk::format_schedule(r.failure.sched);
}

TEST(CheckQueues, FuzzSpmcPasses) {
  const auto r = chk::fuzz_queue<q_spmc>(small_cfg(1, 2), 12, 300);
  EXPECT_TRUE(r.ok) << r.failure.violation
                    << "\nschedule: " << chk::format_schedule(r.failure.sched);
}

TEST(CheckQueues, FuzzMpmcPasses) {
  const auto r = chk::fuzz_queue<q_mpmc>(small_cfg(2, 2), 13, 300);
  EXPECT_TRUE(r.ok) << r.failure.violation
                    << "\nschedule: " << chk::format_schedule(r.failure.sched);
}

TEST(CheckQueues, FuzzWaitablePasses) {
  const auto r = chk::fuzz_queue<q_wait>(small_cfg(1, 1), 14, 300);
  EXPECT_TRUE(r.ok) << r.failure.violation
                    << "\nschedule: " << chk::format_schedule(r.failure.sched);
}

TEST(CheckQueues, BulkPathsFuzzCleanToo) {
  auto cfg = small_cfg(1, 1);
  cfg.enqueue_batch = 3;
  cfg.dequeue_batch = 2;
  const auto r = chk::fuzz_queue<q_spsc>(cfg, 15, 300);
  EXPECT_TRUE(r.ok) << r.failure.violation;
}

TEST(CheckQueues, FuzzShardFabricBothModesPass) {
  using q_shard = ffq::shard::fabric<long long, false, layout_aligned,
                                     tel_off, trc_off>;
  using q_shard_ord = ffq::shard::fabric<long long, true, layout_aligned,
                                         tel_off, trc_off>;
  auto cfg = small_cfg(2, 2);
  cfg.dequeue_batch = 2;  // exercise the scheduler's bulk drain
  cfg.check_linearizability = false;  // sharded: not one FIFO by design
  const auto r = chk::fuzz_queue<q_shard>(cfg, 16, 300);
  EXPECT_TRUE(r.ok) << r.failure.violation
                    << "\nschedule: " << chk::format_schedule(r.failure.sched);
  const auto o = chk::fuzz_queue<q_shard_ord>(cfg, 17, 300);
  EXPECT_TRUE(o.ok) << o.failure.violation
                    << "\nschedule: " << chk::format_schedule(o.failure.sched);
}

TEST(CheckQueues, RecordedScheduleReplaysToTheIdenticalRun) {
  const auto cfg = small_cfg(2, 2);
  chk::random_driver d(99);
  const auto first = chk::run_program<q_mpmc>(cfg, d);
  ASSERT_TRUE(first.ok) << first.violation;

  const auto again = chk::replay_queue<q_mpmc>(cfg, first.sched);
  ASSERT_TRUE(again.ok) << again.violation;
  EXPECT_EQ(again.streams, first.streams);
  EXPECT_EQ(again.steps, first.steps);
  EXPECT_EQ(again.sched, first.sched);
}
