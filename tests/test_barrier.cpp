#include "ffq/runtime/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rt = ffq::runtime;

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  rt::spin_barrier b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(SpinBarrier, AllThreadsObserveWorkOfPhaseBeforeBarrier) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  rt::spin_barrier b(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int r = 1; r <= kRounds; ++r) {
        counter.fetch_add(1, std::memory_order_relaxed);
        b.arrive_and_wait();
        // After the barrier every thread of round r has incremented.
        if (counter.load(std::memory_order_relaxed) < r * kThreads) {
          failed.store(true);
        }
        b.arrive_and_wait();  // keep rounds separated
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(SpinBarrier, ReportsParties) {
  rt::spin_barrier b(3);
  EXPECT_EQ(b.parties(), 3u);
}
