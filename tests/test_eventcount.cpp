// Tests for the futex-backed event count.
#include "ffq/runtime/eventcount.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace rt = ffq::runtime;

// The park/wake tests sleep to let waiter threads reach the futex; that
// scheduling assumption needs a second hardware thread, and the binary
// runs RUN_SERIAL so parallel ctest jobs don't dilate the sleeps.
#define FFQ_REQUIRE_PARALLEL_HW()                    \
  if (std::thread::hardware_concurrency() < 2)       \
  GTEST_SKIP() << "needs >= 2 hardware threads"

TEST(Eventcount, CancelWaitLeavesNoWaiters) {
  rt::eventcount ec;
  auto key = ec.prepare_wait();
  (void)key;
  EXPECT_EQ(ec.approx_waiters(), 1u);
  ec.cancel_wait();
  EXPECT_EQ(ec.approx_waiters(), 0u);
}

TEST(Eventcount, NotifyWithoutWaitersIsCheap) {
  rt::eventcount ec;
  // Must not crash, must not accumulate state that breaks later waits.
  for (int i = 0; i < 100; ++i) ec.notify_one();
  ec.notify_all();
  SUCCEED();
}

TEST(Eventcount, StaleKeyReturnsImmediately) {
  rt::eventcount ec;
  const auto key = ec.prepare_wait();
  // A notify between prepare and wait invalidates the key; wait() must
  // not block. (Notify observes waiters_ == 1 and bumps the epoch.)
  ec.notify_one();
  const auto t0 = std::chrono::steady_clock::now();
  ec.wait(key);
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration<double>(dt).count(), 1.0);
  EXPECT_EQ(ec.approx_waiters(), 0u);
}

TEST(Eventcount, WakesParkedThread) {
  FFQ_REQUIRE_PARALLEL_HW();
  rt::eventcount ec;
  std::atomic<bool> data{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    for (;;) {
      const auto key = ec.prepare_wait();
      if (data.load(std::memory_order_acquire)) {
        ec.cancel_wait();
        break;
      }
      ec.wait(key);
    }
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(woke.load());
  data.store(true, std::memory_order_release);
  ec.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(Eventcount, NotifyAllWakesEveryone) {
  FFQ_REQUIRE_PARALLEL_HW();
  rt::eventcount ec;
  constexpr int kWaiters = 4;
  std::atomic<bool> go{false};
  std::atomic<int> awake{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&] {
      for (;;) {
        const auto key = ec.prepare_wait();
        if (go.load(std::memory_order_acquire)) {
          ec.cancel_wait();
          break;
        }
        ec.wait(key);
      }
      awake.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  go.store(true, std::memory_order_release);
  ec.notify_all();
  for (auto& t : ts) t.join();
  EXPECT_EQ(awake.load(), kWaiters);
}

TEST(Eventcount, ProducerConsumerHandoffLoop) {
  // The canonical usage pattern under churn: no lost wake-ups allowed.
  rt::eventcount ec;
  std::atomic<int> available{0};
  constexpr int kItems = 20000;
  std::thread consumer([&] {
    int got = 0;
    while (got < kItems) {
      int cur = available.load(std::memory_order_acquire);
      if (cur > 0 &&
          available.compare_exchange_strong(cur, cur - 1,
                                            std::memory_order_acq_rel)) {
        ++got;
        continue;
      }
      const auto key = ec.prepare_wait();
      if (available.load(std::memory_order_acquire) > 0) {
        ec.cancel_wait();
        continue;
      }
      ec.wait(key);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    available.fetch_add(1, std::memory_order_acq_rel);
    ec.notify_one();
  }
  consumer.join();
  EXPECT_EQ(available.load(), 0);
}
