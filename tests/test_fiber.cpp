// Tests for the cooperative fiber scheduler and its integration with the
// FFQ queues (the paper's m:n application-thread architecture, §I).
#include "ffq/runtime/fiber.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"

namespace rt = ffq::runtime;

TEST(Fiber, RunsAllFibersToCompletion) {
  rt::fiber_scheduler sched;
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    sched.spawn([&done] { ++done; });
  }
  sched.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(sched.live_fibers(), 0u);
}

TEST(Fiber, YieldInterleavesRoundRobin) {
  rt::fiber_scheduler sched;
  std::vector<int> order;
  for (int id = 0; id < 3; ++id) {
    sched.spawn([&order, id] {
      for (int round = 0; round < 3; ++round) {
        order.push_back(id);
        rt::fiber_scheduler::yield();
      }
    });
  }
  sched.run();
  // Round-robin: 0 1 2 0 1 2 0 1 2.
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 3)) << "position " << i;
  }
}

TEST(Fiber, InFiberDetection) {
  EXPECT_FALSE(rt::fiber_scheduler::in_fiber());
  rt::fiber_scheduler sched;
  bool inside = false;
  sched.spawn([&] { inside = rt::fiber_scheduler::in_fiber(); });
  sched.run();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(rt::fiber_scheduler::in_fiber());
}

TEST(Fiber, YieldOutsideFiberIsNoop) {
  rt::fiber_scheduler::yield();
  SUCCEED();
}

TEST(Fiber, SpawnFromInsideAFiber) {
  rt::fiber_scheduler sched;
  int children = 0;
  sched.spawn([&] {
    for (int i = 0; i < 4; ++i) {
      sched.spawn([&children] { ++children; });
    }
  });
  sched.run();
  EXPECT_EQ(children, 4);
}

TEST(Fiber, WaitUntilResumesWhenConditionHolds) {
  rt::fiber_scheduler sched;
  bool flag = false;
  std::vector<int> events;
  sched.spawn([&] {
    rt::fiber_scheduler::wait_until([&] { return flag; });
    events.push_back(2);
  });
  sched.spawn([&] {
    events.push_back(1);
    flag = true;
  });
  sched.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], 1);
  EXPECT_EQ(events[1], 2);
}

// ---------------------------------------------------------------------------
// The paper's architecture: m app fibers on ONE OS thread keep m syscall
// requests outstanding in the submission queue; an executor thread
// serves them. The fiber yields (instead of spinning) while its response
// is in flight — total wall time approaches max(per-fiber work), not the
// sum, because requests overlap.
// ---------------------------------------------------------------------------
TEST(Fiber, ManyOutstandingSyscallsFromOneOsThread) {
  constexpr int kFibers = 8;
  constexpr std::uint64_t kCallsPerFiber = 500;

  struct request {
    std::uint32_t fiber;
    std::uint64_t seq;
  };
  ffq::core::spmc_queue<request> submission(1 << 10);
  std::vector<std::unique_ptr<ffq::core::spsc_queue<std::uint64_t>>> responses;
  for (int f = 0; f < kFibers; ++f) {
    responses.push_back(
        std::make_unique<ffq::core::spsc_queue<std::uint64_t>>(1 << 8));
  }

  // Executor (the "OS thread pool" side): serves every fiber's requests
  // from the one SPMC queue.
  std::thread executor([&] {
    request req;
    while (submission.dequeue(req)) {
      responses[req.fiber]->enqueue(req.seq * 2 + 1);
    }
  });

  std::uint64_t completed = 0;
  std::atomic<std::uint64_t> in_flight_max{0};
  std::uint64_t in_flight = 0;
  {
    rt::fiber_scheduler sched;
    for (int f = 0; f < kFibers; ++f) {
      sched.spawn([&, f] {
        for (std::uint64_t s = 0; s < kCallsPerFiber; ++s) {
          submission.enqueue(request{static_cast<std::uint32_t>(f), s});
          ++in_flight;
          if (in_flight > in_flight_max.load()) in_flight_max.store(in_flight);
          std::uint64_t resp;
          // Paper §I: yield to the scheduler instead of spinning.
          rt::fiber_scheduler::wait_until(
              [&] { return responses[f]->try_dequeue(resp); });
          --in_flight;
          ASSERT_EQ(resp, s * 2 + 1);
          ++completed;
        }
      });
    }
    sched.run();
  }
  submission.close();
  executor.join();

  EXPECT_EQ(completed, static_cast<std::uint64_t>(kFibers) * kCallsPerFiber);
  // The whole point of m:n: multiple requests were genuinely overlapped
  // from a single OS thread.
  EXPECT_GT(in_flight_max.load(), 1u);
}
