// Tests for the perf_event wrapper. PMU access is usually denied in
// containers; both the available and unavailable paths must be safe.
#include "ffq/runtime/perf_counters.hpp"

#include <gtest/gtest.h>

namespace rt = ffq::runtime;

TEST(PerfCounters, KindNamesAreStable) {
  EXPECT_STREQ(rt::to_string(rt::perf_event_kind::cycles), "cycles");
  EXPECT_STREQ(rt::to_string(rt::perf_event_kind::instructions), "instructions");
  EXPECT_STREQ(rt::to_string(rt::perf_event_kind::cache_misses), "cache-misses");
}

TEST(PerfCounters, UnavailableGroupIsInert) {
  rt::perf_counter_group g({rt::perf_event_kind::cycles});
  if (g.available()) {
    GTEST_SKIP() << "PMU available here; covered by the Available test";
  }
  EXPECT_FALSE(g.error().empty());
  g.start();  // all no-ops, must not crash
  g.stop();
  EXPECT_TRUE(g.read_all().empty());
  EXPECT_EQ(g.value(rt::perf_event_kind::cycles), 0u);
}

TEST(PerfCounters, AvailableGroupCountsSomething) {
  rt::perf_counter_group g(
      {rt::perf_event_kind::cycles, rt::perf_event_kind::instructions});
  if (!g.available()) {
    GTEST_SKIP() << "PMU unavailable: " << g.error();
  }
  g.start();
  volatile std::uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + static_cast<std::uint64_t>(i);
  g.stop();
  EXPECT_GT(g.value(rt::perf_event_kind::instructions), 100000u);
}

// The UnavailableGroupIsInert test above only exercises degradation when
// the PMU actually denies us. An out-of-range kind is rejected by the
// wrapper itself, giving a deterministically-unavailable group in every
// environment, PMU or not.
TEST(PerfCounters, InvalidKindDegradesGracefully) {
  rt::perf_counter_group g({static_cast<rt::perf_event_kind>(999)});
  EXPECT_FALSE(g.available());
  EXPECT_FALSE(g.error().empty());
  g.start();
  g.stop();
  EXPECT_TRUE(g.read_all().empty());
  for (auto k : {rt::perf_event_kind::cycles, rt::perf_event_kind::instructions,
                 rt::perf_event_kind::cache_references,
                 rt::perf_event_kind::cache_misses,
                 rt::perf_event_kind::l1d_read_access,
                 rt::perf_event_kind::l1d_read_miss}) {
    EXPECT_EQ(g.value(k), 0u) << rt::to_string(k);
  }
}

TEST(PerfCounters, InvalidKindAfterValidOnesStillDegrades) {
  // Constructor must close any counters it already opened before the
  // bad kind, and the group must read as fully unavailable.
  rt::perf_counter_group g(
      {rt::perf_event_kind::cycles, static_cast<rt::perf_event_kind>(999)});
  EXPECT_FALSE(g.available());
  EXPECT_FALSE(g.error().empty());
  EXPECT_TRUE(g.read_all().empty());
  EXPECT_EQ(g.value(rt::perf_event_kind::cycles), 0u);
}

TEST(PerfCounters, EmptyGroupIsTriviallyAvailable) {
  rt::perf_counter_group g({});
  EXPECT_TRUE(g.available());
  EXPECT_TRUE(g.error().empty());
  g.start();
  g.stop();
  EXPECT_TRUE(g.read_all().empty());
  EXPECT_EQ(g.value(rt::perf_event_kind::cycles), 0u);
}

TEST(PerfCounters, MovedFromGroupIsInert) {
  rt::perf_counter_group a({rt::perf_event_kind::cycles});
  rt::perf_counter_group b(std::move(a));
  EXPECT_FALSE(a.available());
  EXPECT_TRUE(a.read_all().empty());
  EXPECT_EQ(a.value(rt::perf_event_kind::cycles), 0u);
  a.start();  // inert, must not crash
  a.stop();
}

TEST(PerfCounters, MoveTransfersOwnership) {
  rt::perf_counter_group a({rt::perf_event_kind::cycles});
  rt::perf_counter_group b(std::move(a));
  EXPECT_FALSE(a.available());
  rt::perf_counter_group c({rt::perf_event_kind::instructions});
  c = std::move(b);
  SUCCEED();  // destructors must not double-close fds
}

TEST(PerfCounters, CapabilitySummaryIsNonEmpty) {
  EXPECT_FALSE(rt::perf_capability_summary().empty());
}
