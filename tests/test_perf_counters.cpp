// Tests for the perf_event wrapper. PMU access is usually denied in
// containers; both the available and unavailable paths must be safe.
#include "ffq/runtime/perf_counters.hpp"

#include <gtest/gtest.h>

namespace rt = ffq::runtime;

TEST(PerfCounters, KindNamesAreStable) {
  EXPECT_STREQ(rt::to_string(rt::perf_event_kind::cycles), "cycles");
  EXPECT_STREQ(rt::to_string(rt::perf_event_kind::instructions), "instructions");
  EXPECT_STREQ(rt::to_string(rt::perf_event_kind::cache_misses), "cache-misses");
}

TEST(PerfCounters, UnavailableGroupIsInert) {
  rt::perf_counter_group g({rt::perf_event_kind::cycles});
  if (g.available()) {
    GTEST_SKIP() << "PMU available here; covered by the Available test";
  }
  EXPECT_FALSE(g.error().empty());
  g.start();  // all no-ops, must not crash
  g.stop();
  EXPECT_TRUE(g.read_all().empty());
  EXPECT_EQ(g.value(rt::perf_event_kind::cycles), 0u);
}

TEST(PerfCounters, AvailableGroupCountsSomething) {
  rt::perf_counter_group g(
      {rt::perf_event_kind::cycles, rt::perf_event_kind::instructions});
  if (!g.available()) {
    GTEST_SKIP() << "PMU unavailable: " << g.error();
  }
  g.start();
  volatile std::uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + static_cast<std::uint64_t>(i);
  g.stop();
  EXPECT_GT(g.value(rt::perf_event_kind::instructions), 100000u);
}

TEST(PerfCounters, MoveTransfersOwnership) {
  rt::perf_counter_group a({rt::perf_event_kind::cycles});
  rt::perf_counter_group b(std::move(a));
  EXPECT_FALSE(a.available());
  rt::perf_counter_group c({rt::perf_event_kind::instructions});
  c = std::move(b);
  SUCCEED();  // destructors must not double-close fds
}

TEST(PerfCounters, CapabilitySummaryIsNonEmpty) {
  EXPECT_FALSE(rt::perf_capability_summary().empty());
}
