// Tests for the reclaimer policies through the MS queue: the same
// battery must pass under hazard pointers and under epochs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ffq/baselines/ms_queue.hpp"
#include "ffq/baselines/reclaimers.hpp"

using namespace ffq::baselines;

template <typename R>
class MsQueueReclaimer : public ::testing::Test {};

using Policies = ::testing::Types<hazard_reclaimer, epoch_reclaimer>;
TYPED_TEST_SUITE(MsQueueReclaimer, Policies);

TYPED_TEST(MsQueueReclaimer, SingleThreadFifo) {
  ms_queue<std::uint64_t, TypeParam> q;
  std::uint64_t out;
  EXPECT_FALSE(q.try_dequeue(out));
  for (std::uint64_t i = 1; i <= 200; ++i) q.enqueue(i);
  for (std::uint64_t i = 1; i <= 200; ++i) {
    ASSERT_TRUE(q.try_dequeue(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_dequeue(out));
}

TYPED_TEST(MsQueueReclaimer, ConcurrentConservation) {
  ms_queue<std::uint64_t, TypeParam> q;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPer = 30000;
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
  std::atomic<int> done{0};

  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        q.enqueue(static_cast<std::uint64_t>(p) * kPer + i + 1);
      }
      done.fetch_add(1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      std::uint64_t out;
      for (;;) {
        if (q.try_dequeue(out)) {
          sum.fetch_add(out, std::memory_order_relaxed);
          count.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load() == kProducers) {
          if (!q.try_dequeue(out)) return;
          sum.fetch_add(out, std::memory_order_relaxed);
          count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  const std::uint64_t n = kProducers * kPer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TYPED_TEST(MsQueueReclaimer, DestructorReleasesRemainingNodes) {
  // No ASAN here, but a leak/corruption in the destructor path tends to
  // crash under repetition; run a few construct/fill/destroy cycles.
  for (int round = 0; round < 20; ++round) {
    ms_queue<std::uint64_t, TypeParam> q;
    for (std::uint64_t i = 1; i <= 100; ++i) q.enqueue(i);
    std::uint64_t out;
    for (int d = 0; d < 50; ++d) ASSERT_TRUE(q.try_dequeue(out));
  }
  SUCCEED();
}
