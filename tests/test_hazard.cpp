#include "ffq/runtime/hazard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rt = ffq::runtime;

namespace {
struct tracked {
  static std::atomic<int> live;
  int payload = 0;
  explicit tracked(int p = 0) : payload(p) { live.fetch_add(1); }
  ~tracked() { live.fetch_sub(1); }
};
std::atomic<int> tracked::live{0};
}  // namespace

TEST(Hazard, RetireWithoutHazardIsFreedOnFlush) {
  rt::hazard_domain dom;
  rt::hazard_thread ht(dom);
  auto* p = new tracked(1);
  ht->retire(p);
  dom.flush(*ht);
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Hazard, ProtectedPointerSurvivesScan) {
  rt::hazard_domain dom;
  rt::hazard_thread ht(dom);
  auto* p = new tracked(2);
  std::atomic<tracked*> src{p};
  tracked* got = ht->protect(0, src);
  EXPECT_EQ(got, p);
  ht->retire(p);
  dom.flush(*ht);
  EXPECT_EQ(tracked::live.load(), 1) << "protected object must not be freed";
  ht->clear(0);
  dom.flush(*ht);
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Hazard, ProtectFollowsConcurrentChange) {
  rt::hazard_domain dom;
  rt::hazard_thread ht(dom);
  auto* a = new tracked(1);
  auto* b = new tracked(2);
  std::atomic<tracked*> src{a};
  // Single-threaded sanity: protect returns whatever is current.
  EXPECT_EQ(ht->protect(0, src), a);
  src.store(b);
  EXPECT_EQ(ht->protect(1, src), b);
  ht->clear_all();
  ht->retire(a);
  ht->retire(b);
  dom.flush(*ht);
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Hazard, ThresholdTriggersAutomaticScan) {
  rt::hazard_domain dom;
  rt::hazard_thread ht(dom);
  for (std::size_t i = 0; i < rt::hazard_domain::kRetireThreshold + 5; ++i) {
    ht->retire(new tracked(static_cast<int>(i)));
  }
  // The threshold scan must have freed (at least) the first batch.
  EXPECT_LT(tracked::live.load(),
            static_cast<int>(rt::hazard_domain::kRetireThreshold));
  dom.flush(*ht);
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Hazard, RecordsAreRecycledAcrossThreads) {
  rt::hazard_domain dom;
  std::size_t first_hwm = 0;
  std::thread t1([&] {
    rt::hazard_thread ht(dom);
    first_hwm = dom.attached_upper_bound();
  });
  t1.join();
  std::thread t2([&] {
    rt::hazard_thread ht(dom);
    // The released record must be reused, not a fresh one claimed.
    EXPECT_EQ(dom.attached_upper_bound(), first_hwm);
  });
  t2.join();
}

// Stress: producer publishes nodes, consumers protect-and-read while the
// producer retires replaced nodes. ASAN (or a crash) would flag
// use-after-free; the assertion checks payload integrity.
TEST(Hazard, ConcurrentProtectRetireStress) {
  rt::hazard_domain dom;
  std::atomic<tracked*> shared{new tracked(0)};
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      rt::hazard_thread ht(dom);
      while (!stop.load(std::memory_order_acquire)) {
        tracked* p = ht->protect(0, shared);
        if (p->payload < 0) bad.fetch_add(1);
        ht->clear(0);
      }
    });
  }
  {
    rt::hazard_thread ht(dom);
    for (int i = 1; i <= 3000; ++i) {
      auto* fresh = new tracked(i);
      tracked* old = shared.exchange(fresh);
      ht->retire(old);
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    ht->retire(shared.load());
    dom.flush(*ht);
  }
  EXPECT_EQ(bad.load(), 0);
  // Everything reclaimable is reclaimed; the domain destructor drains the
  // rest (checked implicitly by tracked::live below).
}

TEST(Hazard, DomainDestructorDrainsRetireLists) {
  {
    rt::hazard_domain dom;
    rt::hazard_thread ht(dom);
    auto* p = new tracked(7);
    std::atomic<tracked*> src{p};
    ht->protect(0, src);
    ht->retire(p);
    // Still protected — flush would keep it; destructor must free anyway.
  }
  EXPECT_EQ(tracked::live.load(), 0);
}
