// Tests for ffq::shard — the sharded SPMC fabric (DESIGN.md §11): the
// zero-cost claim (disabled telemetry/trace leave the fabric layout
// byte-identical, asserted against mirror structs), conservation and
// per-producer FIFO under real threads in both modes, the ordered mode's
// closed-drain total order, the scheduler's telemetry counters (steals,
// drains, empty polls/sweeps), and placement-plan reuse of the runtime
// topology layer.
#include "ffq/shard/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ffq/telemetry/counters.hpp"
#include "ffq/trace/policy.hpp"

namespace sh = ffq::shard;
namespace rt = ffq::runtime;
namespace tel = ffq::telemetry;
namespace trc = ffq::trace;

namespace {

using fab_plain = sh::fabric<long long, false, ffq::core::layout_aligned,
                             tel::disabled, trc::disabled>;
using fab_plain_ord = sh::fabric<long long, true, ffq::core::layout_aligned,
                                 tel::disabled, trc::disabled>;
using fab_tel = sh::fabric<long long, false, ffq::core::layout_aligned,
                           tel::enabled, trc::disabled>;

// --- zero-cost layout: mirrors of the fully-disabled fabrics --------------
// The mirror repeats the fabric's members minus the policy blocks; equal
// size and alignment proves [[no_unique_address]] erased them.

struct fabric_mirror {
  std::size_t shard_capacity;
  sh::options opts;
  std::vector<std::unique_ptr<fab_plain::shard_type>> shards;
  sh::placement_plan plan;
  std::atomic<std::uint64_t> next_consumer;
  std::atomic<bool> closed;
};

struct fabric_ordered_mirror {
  std::size_t shard_capacity;
  sh::options opts;
  std::vector<std::unique_ptr<fab_plain_ord::shard_type>> shards;
  sh::placement_plan plan;
  std::atomic<std::uint64_t> next_consumer;
  std::atomic<bool> closed;
  rt::padded<std::atomic<std::uint64_t>> epoch;
};

static_assert(std::is_empty_v<tel::fabric_counters<tel::disabled>>);

static_assert(sizeof(fab_plain) == sizeof(fabric_mirror),
              "disabled policies must not grow the fabric");
static_assert(sizeof(fab_plain_ord) == sizeof(fabric_ordered_mirror),
              "disabled policies must not grow the ordered fabric");
static_assert(alignof(fab_plain) == alignof(fabric_mirror));
static_assert(alignof(fab_plain_ord) == alignof(fabric_ordered_mirror));

/// Value encoding: producer p's i-th item is p * kStride + i, so streams
/// decompose into per-producer subsequences without a side channel.
constexpr long long kStride = 1'000'000;

/// Assert `stream` preserves each producer's enqueue order.
void expect_per_producer_fifo(const std::vector<long long>& stream) {
  std::map<long long, long long> last_seq;  // producer -> last seq seen
  for (long long v : stream) {
    const long long p = v / kStride;
    const long long i = v % kStride;
    auto it = last_seq.find(p);
    if (it != last_seq.end()) {
      ASSERT_LT(it->second, i) << "producer " << p << " reordered";
    }
    last_seq[p] = i;
  }
}

/// Run `producers` threads enqueuing `items` each through Fabric, drain
/// with `consumers` threads, and return the per-consumer streams.
template <typename Fabric>
std::vector<std::vector<long long>> run_fabric(Fabric& fab, int producers,
                                               int items, int consumers) {
  std::vector<std::thread> pts;
  std::atomic<int> left{producers};
  for (int p = 0; p < producers; ++p) {
    pts.emplace_back([&, p] {
      auto ep = fab.producer(static_cast<std::size_t>(p));
      for (int i = 0; i < items; ++i) {
        ep.enqueue(static_cast<long long>(p) * kStride + i);
      }
      if (left.fetch_sub(1) == 1) fab.close();
    });
  }
  std::vector<std::vector<long long>> streams(
      static_cast<std::size_t>(consumers));
  std::vector<std::thread> cts;
  for (int c = 0; c < consumers; ++c) {
    cts.emplace_back([&, c] {
      auto ep = fab.consumer();
      long long v = 0;
      while (ep.dequeue(v)) streams[static_cast<std::size_t>(c)].push_back(v);
    });
  }
  for (auto& t : pts) t.join();
  for (auto& t : cts) t.join();
  return streams;
}

/// Flatten, sort, and compare against the full expected multiset.
void expect_conservation(const std::vector<std::vector<long long>>& streams,
                         int producers, int items) {
  std::vector<long long> got;
  for (const auto& s : streams) got.insert(got.end(), s.begin(), s.end());
  std::sort(got.begin(), got.end());
  std::vector<long long> want;
  for (int p = 0; p < producers; ++p) {
    for (int i = 0; i < items; ++i) {
      want.push_back(static_cast<long long>(p) * kStride + i);
    }
  }
  ASSERT_EQ(got, want);
}

}  // namespace

TEST(ShardFabric, ShapeAndLifecycle) {
  fab_plain fab(4, 64);
  EXPECT_EQ(fab.shards(), 4u);
  EXPECT_EQ(fab.shard_capacity(), 64u);
  EXPECT_FALSE(fab.closed());
  EXPECT_EQ(fab.approx_size(), 0);
  EXPECT_TRUE(fab.placement().empty());  // default policy: none
  fab.close();
  EXPECT_TRUE(fab.closed());
}

TEST(ShardFabric, UnorderedConservationAndPerProducerFifo) {
  const int kProducers = 4, kItems = 5000, kConsumers = 2;
  fab_plain fab(kProducers, 1024);
  const auto streams = run_fabric(fab, kProducers, kItems, kConsumers);
  expect_conservation(streams, kProducers, kItems);
  for (const auto& s : streams) expect_per_producer_fifo(s);
}

TEST(ShardFabric, OrderedConservationAndPerProducerFifo) {
  const int kProducers = 3, kItems = 3000, kConsumers = 2;
  fab_plain_ord fab(kProducers, 1024);
  const auto streams = run_fabric(fab, kProducers, kItems, kConsumers);
  expect_conservation(streams, kProducers, kItems);
  for (const auto& s : streams) expect_per_producer_fifo(s);
}

// Ordered mode's strongest contract: draining a *closed* fabric with a
// single consumer yields exact global epoch order. With enqueues issued
// from one thread, epoch order is enqueue order, so the drained sequence
// must equal the enqueue sequence even though it zig-zags across shards.
TEST(ShardFabric, OrderedClosedDrainIsEnqueueOrder) {
  const int kProducers = 3, kRounds = 40;
  fab_plain_ord fab(kProducers, 128);
  std::vector<long long> want;
  for (int i = 0; i < kRounds; ++i) {
    // Uneven zig-zag so the merge has to interleave shards non-trivially.
    for (int p = 0; p < kProducers; ++p) {
      const int burst = 1 + (i + p) % 3;
      auto ep = fab.producer(static_cast<std::size_t>(p));
      for (int b = 0; b < burst; ++b) {
        const long long v =
            static_cast<long long>(p) * kStride + i * 10 + b;
        ep.enqueue(v);
        want.push_back(v);
      }
    }
  }
  fab.close();
  auto c = fab.consumer();
  std::vector<long long> got;
  long long v = 0;
  while (c.dequeue(v)) got.push_back(v);
  ASSERT_EQ(got, want);
}

TEST(ShardFabric, BulkEnqueueAndBulkDequeueAgree) {
  const int kProducers = 2, kItems = 4096;
  fab_plain fab(kProducers, 512);
  std::vector<std::thread> pts;
  std::atomic<int> left{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    pts.emplace_back([&, p] {
      auto ep = fab.producer(static_cast<std::size_t>(p));
      std::vector<long long> batch;
      for (int i = 0; i < kItems; ++i) {
        batch.push_back(static_cast<long long>(p) * kStride + i);
        if (batch.size() == 64) {
          ep.enqueue_bulk(batch.begin(), batch.size());
          batch.clear();
        }
      }
      if (!batch.empty()) ep.enqueue_bulk(batch.begin(), batch.size());
      if (left.fetch_sub(1) == 1) fab.close();
    });
  }
  std::vector<std::vector<long long>> streams(1);
  std::thread ct([&] {
    auto ep = fab.consumer();
    std::vector<long long> buf(128);
    for (;;) {
      const std::size_t n = ep.dequeue_bulk(buf.begin(), buf.size());
      if (n == 0) break;
      streams[0].insert(streams[0].end(), buf.begin(),
                        buf.begin() + static_cast<std::ptrdiff_t>(n));
    }
  });
  for (auto& t : pts) t.join();
  ct.join();
  expect_conservation(streams, kProducers, kItems);
  expect_per_producer_fifo(streams[0]);
}

// The scheduler's telemetry: draining through the cursor counts drains
// and items; a consumer whose cursor shard is empty while another shard
// holds items must record a steal; polling a fully-empty fabric records
// empty polls and an empty sweep.
TEST(ShardFabric, SchedulerCountersCount) {
  fab_tel fab(2, 64);
  // consumer() handles rotate start cursors: first handle starts at 0.
  auto c0 = fab.consumer();
  auto p1 = fab.producer(1);
  for (int i = 0; i < 10; ++i) p1.enqueue(i);
  std::vector<long long> buf(16);
  // Cursor shard 0 is empty, shard 1 holds 10: this drain must steal.
  const std::size_t n = c0.try_dequeue_bulk(buf.begin(), buf.size());
  EXPECT_EQ(n, 10u);
  const auto& t = fab.telemetry();
  EXPECT_EQ(t.steals(), 1u);
  EXPECT_EQ(t.drains(), 1u);
  EXPECT_EQ(t.drained_items(), 10u);
  EXPECT_GE(t.empty_polls(), 1u);  // the cursor miss before the steal
  const auto sweeps_before = t.empty_sweeps();
  long long v = 0;
  EXPECT_FALSE(c0.try_dequeue(v));  // fabric empty: full sweep fails
  EXPECT_GT(t.empty_sweeps(), sweeps_before);
  // The histogram attributes the drain to its batch-size bucket.
  std::uint64_t hist_total = 0;
  t.for_each([&](const char* name, std::uint64_t val) {
    if (std::string(name).rfind("drain_batch_", 0) == 0) hist_total += val;
  });
  EXPECT_EQ(hist_total, 1u);
}

TEST(ShardFabric, ConsumerCursorsRotateAcrossHandles) {
  fab_tel fab(4, 64);
  // Fill only shard 2; the third handle starts there and drains with no
  // steal, proving consumer() spreads start cursors round-robin.
  auto p2 = fab.producer(2);
  for (int i = 0; i < 4; ++i) p2.enqueue(i);
  auto c0 = fab.consumer();
  auto c1 = fab.consumer();
  auto c2 = fab.consumer();
  std::vector<long long> buf(8);
  EXPECT_EQ(c2.try_dequeue_bulk(buf.begin(), buf.size()), 4u);
  EXPECT_EQ(fab.telemetry().steals(), 0u);
}

TEST(ShardFabric, PlacementPlanReusesTopologyLayer) {
  const auto topo = rt::cpu_topology::synthetic(1, 4, 2);
  sh::options opts;
  opts.placement = rt::placement_policy::other_core;
  opts.topology = &topo;
  fab_plain fab(3, 64, opts);
  const auto& plan = fab.placement();
  ASSERT_EQ(plan.groups.size(), 3u);
  EXPECT_EQ(plan.policy, rt::placement_policy::other_core);
  for (std::size_t s = 0; s < 3; ++s) {
    ASSERT_NE(fab.placement_of(s), nullptr);
    EXPECT_FALSE(fab.placement_of(s)->producer_cpus.empty());
    EXPECT_FALSE(fab.placement_of(s)->consumer_cpus.empty());
  }
  EXPECT_EQ(fab.placement_of(3), nullptr);  // out of range: no group
  // The summary names the policy and every shard's groups.
  const auto s = plan.summary();
  EXPECT_NE(s.find("policy=other-core"), std::string::npos);
  EXPECT_NE(s.find("shards=3"), std::string::npos);
  // Direct planning agrees with what the fabric stored.
  const auto direct = sh::plan_shards(topo, rt::placement_policy::other_core, 3);
  ASSERT_EQ(direct.groups.size(), plan.groups.size());
  for (std::size_t g = 0; g < direct.groups.size(); ++g) {
    EXPECT_EQ(direct.groups[g].producer_cpus, plan.groups[g].producer_cpus);
    EXPECT_EQ(direct.groups[g].consumer_cpus, plan.groups[g].consumer_cpus);
  }
}

TEST(ShardFabric, PolicyNoneSkipsPlanning) {
  fab_plain fab(2, 64);  // default options: placement none
  EXPECT_TRUE(fab.placement().empty());
  EXPECT_EQ(fab.placement_of(0), nullptr);
}

TEST(ShardFabric, BlockingDequeueReturnsFalseOnlyWhenClosedAndDrained) {
  fab_plain fab(2, 64);
  auto p0 = fab.producer(0);
  p0.enqueue(7);
  fab.close();
  auto c = fab.consumer();
  long long v = 0;
  ASSERT_TRUE(c.dequeue(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(c.dequeue(v));
  EXPECT_FALSE(c.try_dequeue(v));
}
