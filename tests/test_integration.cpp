// Cross-module integration tests: exercise the public API the way the
// paper's application does — several subsystems composed end-to-end.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "ffq/core/ffq.hpp"
#include "ffq/core/waitable.hpp"
#include "ffq/harness/adapters.hpp"
#include "ffq/harness/pairwise.hpp"
#include "ffq/runtime/affinity.hpp"
#include "ffq/runtime/topology.hpp"

// ---------------------------------------------------------------------------
// The paper's full architecture in miniature: N requester threads submit
// work through per-requester SPMC queues; a pool of workers serves them;
// replies return through per-(requester, worker) waitable SPSC queues.
// Everything closed and drained cleanly at the end.
// ---------------------------------------------------------------------------
TEST(Integration, RequestReplyServiceEndToEnd) {
  constexpr int kRequesters = 2;
  constexpr int kWorkersPerRequester = 2;
  constexpr std::uint64_t kRequests = 20000;

  struct request {
    std::uint64_t id;
  };
  struct reply {
    std::uint64_t id;
    std::uint64_t result;
  };

  using submit_q = ffq::core::spmc_queue<request>;
  using reply_q = ffq::core::waitable_spsc_queue<reply>;

  std::vector<std::unique_ptr<submit_q>> submits;
  std::vector<std::vector<std::unique_ptr<reply_q>>> replies(kRequesters);
  for (int r = 0; r < kRequesters; ++r) {
    submits.push_back(std::make_unique<submit_q>(1 << 10));
    for (int w = 0; w < kWorkersPerRequester; ++w) {
      replies[r].push_back(std::make_unique<reply_q>(1 << 10));
    }
  }

  std::vector<std::thread> threads;
  // Workers.
  for (int r = 0; r < kRequesters; ++r) {
    for (int w = 0; w < kWorkersPerRequester; ++w) {
      threads.emplace_back([&, r, w] {
        request req;
        while (submits[r]->dequeue(req)) {
          replies[r][w]->enqueue(reply{req.id, req.id * 2 + 1});
        }
        replies[r][w]->close();  // propagate end-of-stream downstream
      });
    }
  }
  // Requesters.
  std::atomic<std::uint64_t> total_replies{0};
  std::atomic<bool> ok{true};
  for (int r = 0; r < kRequesters; ++r) {
    threads.emplace_back([&, r] {
      // Submit everything (flow control via queue capacity >> in-flight
      // is guaranteed by the per-queue window below).
      std::uint64_t submitted = 0, received = 0;
      std::size_t rr = 0;
      reply rep;
      while (received < kRequests) {
        while (submitted < kRequests && submitted - received < 256) {
          submits[r]->enqueue(request{submitted + 1});
          ++submitted;
        }
        if (replies[r][rr]->try_dequeue(rep)) {
          if (rep.result != rep.id * 2 + 1) ok.store(false);
          ++received;
        } else {
          rr = (rr + 1) % replies[r].size();
        }
      }
      submits[r]->close();
      total_replies.fetch_add(received);
      // Workers close the reply queues; drain any stragglers (there are
      // none, but the protocol must terminate regardless).
      for (auto& q : replies[r]) {
        while (q->dequeue(rep)) ok.store(false);  // nothing may remain
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_TRUE(ok.load());
  EXPECT_EQ(total_replies.load(), kRequesters * kRequests);
}

// ---------------------------------------------------------------------------
// Every harness adapter drives its queue through the pairwise benchmark
// (the Fig. 8 machinery) without loss: the adapters are part of the
// public surface and must agree on semantics.
// ---------------------------------------------------------------------------
template <typename Adapter>
void adapter_roundtrip() {
  ffq::harness::pairwise_config cfg;
  cfg.threads = 2;
  cfg.total_pairs = 4000;
  cfg.think_min_ns = 0;
  cfg.params.capacity = 1 << 8;
  cfg.params.ring_size = 1 << 6;
  const double ops = ffq::harness::run_pairwise_once<Adapter>(cfg);
  EXPECT_GT(ops, 0.0);
}

TEST(Integration, AdapterFfqMpmc) { adapter_roundtrip<ffq::harness::ffq_mpmc_adapter<>>(); }
TEST(Integration, AdapterFfqMpmcCompact) {
  adapter_roundtrip<ffq::harness::ffq_mpmc_adapter<ffq::core::layout_compact>>();
}
TEST(Integration, AdapterMs) { adapter_roundtrip<ffq::harness::ms_adapter>(); }
TEST(Integration, AdapterCc) { adapter_roundtrip<ffq::harness::cc_adapter>(); }
TEST(Integration, AdapterLcrq) { adapter_roundtrip<ffq::harness::lcrq_adapter>(); }
TEST(Integration, AdapterWf) { adapter_roundtrip<ffq::harness::wf_adapter>(); }
TEST(Integration, AdapterVyukov) { adapter_roundtrip<ffq::harness::vyukov_adapter>(); }
TEST(Integration, AdapterHtm) { adapter_roundtrip<ffq::harness::htm_adapter>(); }

// ---------------------------------------------------------------------------
// Affinity plans applied to real queue traffic: pin a producer/consumer
// pair per the plan and verify the stream still conserves everything.
// ---------------------------------------------------------------------------
TEST(Integration, PinnedStreamsUnderEveryPolicy) {
  using ffq::runtime::placement_policy;
  const auto topo = ffq::runtime::cpu_topology::discover();
  for (auto policy : {placement_policy::same_ht, placement_policy::sibling_ht,
                      placement_policy::other_core, placement_policy::none}) {
    const auto plan = ffq::runtime::plan_placement(topo, policy, 1);
    ffq::core::spmc_queue<std::uint64_t> q(1 << 8);
    std::uint64_t sum = 0;
    std::thread consumer([&] {
      if (!plan[0].consumer_cpus.empty()) {
        ffq::runtime::pin_self_to(plan[0].consumer_cpus);
      }
      std::uint64_t v;
      while (q.dequeue(v)) sum += v;
    });
    if (!plan[0].producer_cpus.empty()) {
      ffq::runtime::pin_self_to(plan[0].producer_cpus);
    }
    constexpr std::uint64_t kItems = 20000;
    for (std::uint64_t i = 1; i <= kItems; ++i) q.enqueue(i);
    q.close();
    consumer.join();
    ffq::runtime::unpin_self();
    EXPECT_EQ(sum, kItems * (kItems + 1) / 2)
        << ffq::runtime::to_string(policy);
  }
}
