// Tests for the cache simulator: single-cache behaviour, hierarchy
// coherence, and the queue-trace replay's qualitative properties (the
// ones Figs. 4–5 rely on).
#include <gtest/gtest.h>

#include "ffq/cachesim/cache.hpp"
#include "ffq/cachesim/hierarchy.hpp"
#include "ffq/cachesim/queue_trace.hpp"

using namespace ffq::cachesim;

// ---------------------------------------------------------------------------
// set_assoc_cache
// ---------------------------------------------------------------------------

TEST(Cache, GeometryValidation) {
  const cache_geometry l1{32 * 1024, 8, 64};
  EXPECT_TRUE(l1.valid());
  EXPECT_EQ(l1.num_sets(), 64u);
  const cache_geometry bad{1000, 3, 64};
  EXPECT_FALSE(bad.valid());
}

TEST(Cache, MissThenHit) {
  set_assoc_cache c({1024, 2, 64});  // 8 sets × 2 ways
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63)) << "same line";
  EXPECT_FALSE(c.access(64)) << "next line";
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  set_assoc_cache c({1024, 2, 64});  // 8 sets; lines map to set (line % 8)
  // Three lines in set 0: lines 0, 8, 16 (addresses 0, 512, 1024).
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(512));
  EXPECT_TRUE(c.access(0));  // line 0 now MRU
  std::uint64_t evicted = 0;
  EXPECT_FALSE(c.access(1024, &evicted));
  EXPECT_EQ(evicted, 8u) << "line 8 (addr 512) was LRU";
  EXPECT_TRUE(c.access(0)) << "line 0 must have survived";
  EXPECT_FALSE(c.access(512)) << "line 8 was evicted";
}

TEST(Cache, InvalidateRemovesLine) {
  set_assoc_cache c({1024, 2, 64});
  c.access(128);
  ASSERT_TRUE(c.contains(128));
  EXPECT_TRUE(c.invalidate_line(128 / 64));
  EXPECT_FALSE(c.contains(128));
  EXPECT_FALSE(c.invalidate_line(128 / 64)) << "already gone";
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, CapacityIsRespected) {
  set_assoc_cache c({4096, 4, 64});  // 64 lines total
  for (std::uint64_t i = 0; i < 64; ++i) c.access(i * 64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(c.access(i * 64)) << "fits exactly";
  }
  // One more distinct line forces an eviction somewhere.
  c.access(64 * 64);
  EXPECT_EQ(c.stats().evictions, 1u);
}

// ---------------------------------------------------------------------------
// cache_hierarchy
// ---------------------------------------------------------------------------

namespace {
hierarchy_config small_hw() {
  hierarchy_config cfg;
  cfg.domains = 2;
  cfg.l1 = {1024, 2, 64};
  cfg.l2 = {4096, 4, 64};
  cfg.l3 = {16384, 8, 64};
  return cfg;
}
}  // namespace

TEST(Hierarchy, MissFillsAllLevels) {
  cache_hierarchy hw(small_hw());
  EXPECT_EQ(hw.read(0, 0), hit_level::memory);
  EXPECT_EQ(hw.read(0, 0), hit_level::l1);
  EXPECT_EQ(hw.memory_lines(), 1u);
}

TEST(Hierarchy, SecondDomainHitsSharedL3) {
  cache_hierarchy hw(small_hw());
  hw.read(0, 0);                            // fills L1(0), L2(0), L3
  EXPECT_EQ(hw.read(1, 0), hit_level::l3);  // private miss, shared hit
  EXPECT_EQ(hw.memory_lines(), 1u);
}

TEST(Hierarchy, WriteInvalidatesOtherDomains) {
  cache_hierarchy hw(small_hw());
  hw.read(0, 0);
  hw.read(1, 0);
  ASSERT_EQ(hw.coherence_invalidations(), 0u);
  hw.write(1, 0);  // invalidates domain 0's copies
  EXPECT_GE(hw.coherence_invalidations(), 1u);
  EXPECT_EQ(hw.read(0, 0), hit_level::l3) << "domain 0 lost its private copy";
}

TEST(Hierarchy, SameDomainWriteDoesNotSelfInvalidate) {
  cache_hierarchy hw(small_hw());
  hw.read(0, 0);
  hw.write(0, 0);
  EXPECT_EQ(hw.coherence_invalidations(), 0u);
  EXPECT_EQ(hw.read(0, 0), hit_level::l1);
}

TEST(Hierarchy, ResetClearsCounters) {
  cache_hierarchy hw(small_hw());
  hw.read(0, 0);
  hw.reset_stats();
  EXPECT_EQ(hw.l1_total().misses, 0u);
  EXPECT_EQ(hw.memory_lines(), 0u);
  EXPECT_EQ(hw.read(0, 0), hit_level::l1) << "contents survive a stats reset";
}

// ---------------------------------------------------------------------------
// queue_trace — the qualitative shapes Figs. 4–5 depend on.
// ---------------------------------------------------------------------------

namespace {
queue_trace_config base_cfg(std::size_t entries) {
  queue_trace_config cfg;
  cfg.queue_entries = entries;
  cfg.items = 200000;
  cfg.cell_bytes = 64;
  return cfg;
}
}  // namespace

TEST(QueueTrace, SharedDomainHasHigherPrivateHitRatioThanSplit) {
  // Producer and consumer on one core (same/sibling HT): no coherence
  // invalidations, cells bounce within one L1/L2. Ring sized to fit L1
  // (2^8 cells × 64 B = 16 KB) so the locality difference shows at L1;
  // larger rings shift the same effect to L2 (covered below).
  auto shared_cfg = base_cfg(1 << 8);
  shared_cfg.shared_domain = true;
  const auto shared_res = simulate_queue_trace(shared_cfg);

  auto split_cfg = base_cfg(1 << 8);
  split_cfg.shared_domain = false;
  const auto split_res = simulate_queue_trace(split_cfg);

  EXPECT_EQ(shared_res.coherence_invalidations, 0u);
  EXPECT_GT(split_res.coherence_invalidations, 0u);
  EXPECT_GT(shared_res.l1_hit_ratio, split_res.l1_hit_ratio);
  EXPECT_GT(shared_res.ipc_proxy, split_res.ipc_proxy);

  // Same comparison one level up: a ring that spills L1 but fits L2
  // (2^10 cells × 64 B = 64 KB) gives the shared domain its advantage in
  // the private L2 instead.
  auto shared_l2 = base_cfg(1 << 10);
  shared_l2.shared_domain = true;
  auto split_l2 = base_cfg(1 << 10);
  split_l2.shared_domain = false;
  EXPECT_GT(simulate_queue_trace(shared_l2).l2_hit_ratio,
            simulate_queue_trace(split_l2).l2_hit_ratio);
}

TEST(QueueTrace, L3HitRatioCollapsesWhenQueueExceedsL3) {
  // Paper Fig. 5: "if the queue size does not fit in L3 cache anymore,
  // the L3 hit ratio drops and cache misses increase".
  auto fits = base_cfg(1 << 10);  // 64 KB of cells — fits 8 MB L3 easily
  const auto small_res = simulate_queue_trace(fits);

  auto spills = base_cfg(1 << 19);  // 32 MB of cells — 4× the L3
  spills.items = 1 << 20;           // enough traffic to cycle the ring
  const auto big_res = simulate_queue_trace(spills);

  EXPECT_GT(small_res.l3_hit_ratio + 1e-9, big_res.l3_hit_ratio);
  EXPECT_GT(big_res.memory_bytes, small_res.memory_bytes);
  EXPECT_GT(big_res.cycles_per_pair, small_res.cycles_per_pair);
}

TEST(QueueTrace, MemoryTrafficGrowsWithQueueSize) {
  std::uint64_t prev = 0;
  for (std::size_t entries : {1u << 12, 1u << 16, 1u << 19}) {
    auto cfg = base_cfg(entries);
    cfg.items = 1 << 19;
    const auto r = simulate_queue_trace(cfg);
    EXPECT_GE(r.memory_bytes + (1 << 12), prev)
        << "bandwidth must not shrink as the working set grows";
    prev = r.memory_bytes;
  }
}

TEST(QueueTrace, CompactCellsUseLessMemoryTrafficWhenSpilling) {
  // 24-byte cells pack ~2.6 cells per line: when the ring spills past
  // the caches, compact layout moves fewer bytes (the §V-B observation
  // that "we need less space in the cache for the cells without
  // alignment").
  auto aligned = base_cfg(1 << 19);
  aligned.items = 1 << 20;
  auto compact = aligned;
  compact.cell_bytes = 24;
  const auto ra = simulate_queue_trace(aligned);
  const auto rc = simulate_queue_trace(compact);
  EXPECT_LT(rc.memory_bytes, ra.memory_bytes);
}

TEST(QueueTrace, RandomizedIndexingIsAPermutationOfTraffic) {
  // Randomization must not change the number of accesses, only their
  // placement; with one thread per side and large cells it behaves
  // nearly identically in the model.
  auto plain = base_cfg(1 << 12);
  auto rnd = base_cfg(1 << 12);
  rnd.randomized_index = true;
  const auto rp = simulate_queue_trace(plain);
  const auto rr = simulate_queue_trace(rnd);
  EXPECT_NEAR(rp.l2_hit_ratio, rr.l2_hit_ratio, 0.1);
}

TEST(QueueTrace, LagCapsAtQueueSize) {
  auto cfg = base_cfg(1 << 4);
  cfg.lag = 1 << 20;  // absurd request: must clamp, not crash
  cfg.items = 10000;
  const auto r = simulate_queue_trace(cfg);
  EXPECT_GT(r.l1_hit_ratio, 0.0);
}
