// Unit, property, and stress tests for ffq::core::spsc_queue.
#include "ffq/core/spsc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using ffq::core::spsc_queue;

TEST(SpscQueue, EmptyTryDequeueFails) {
  spsc_queue<int> q(8);
  int out = -1;
  EXPECT_FALSE(q.try_dequeue(out));
  EXPECT_EQ(out, -1);
  EXPECT_EQ(q.approx_size(), 0);
}

TEST(SpscQueue, SingleThreadFifoOrder) {
  spsc_queue<int> q(16);
  for (int i = 0; i < 10; ++i) q.enqueue(i);
  EXPECT_EQ(q.approx_size(), 10);
  int out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_dequeue(out));
}

TEST(SpscQueue, WrapAroundManyTimes) {
  spsc_queue<std::uint64_t> q(4);
  std::uint64_t out;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.enqueue(i);
    ASSERT_TRUE(q.try_dequeue(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_EQ(q.gaps_created(), 0u) << "in-order SPSC use never skips";
}

TEST(SpscQueue, InterleavedBatchesKeepOrder) {
  // Net growth is +1 item per round; capacity must cover rounds + burst
  // (a single-threaded producer blocks forever on a full ring).
  spsc_queue<int> q(256);
  int expect = 0, out;
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) q.enqueue(next++);
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(q.try_dequeue(out));
      ASSERT_EQ(out, expect++);
    }
  }
  while (q.try_dequeue(out)) ASSERT_EQ(out, expect++);
  EXPECT_EQ(expect, next);
}

TEST(SpscQueue, MoveOnlyPayload) {
  spsc_queue<std::unique_ptr<int>> q(8);
  q.enqueue(std::make_unique<int>(7));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_dequeue(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

TEST(SpscQueue, DestructorReleasesUnconsumedItems) {
  auto counter = std::make_shared<int>(0);
  struct probe {
    std::shared_ptr<int> c;
    probe() = default;
    explicit probe(std::shared_ptr<int> s) : c(std::move(s)) { ++*c; }
    probe(probe&& o) noexcept : c(std::move(o.c)) {}
    probe& operator=(probe&& o) noexcept {
      c = std::move(o.c);
      return *this;
    }
    ~probe() {
      if (c) --*c;
    }
  };
  {
    spsc_queue<probe> q(8);
    for (int i = 0; i < 5; ++i) q.enqueue(probe(counter));
    EXPECT_EQ(*counter, 5);
  }
  EXPECT_EQ(*counter, 0);
}

TEST(SpscQueue, CloseDrainsThenReportsEmpty) {
  spsc_queue<int> q(8);
  q.enqueue(1);
  q.enqueue(2);
  q.close();
  EXPECT_TRUE(q.closed());
  int out;
  EXPECT_TRUE(q.dequeue(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.dequeue(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.dequeue(out)) << "closed and drained";
  EXPECT_FALSE(q.dequeue(out)) << "stays drained";
}

TEST(SpscQueue, CloseUnblocksWaitingConsumer) {
  spsc_queue<int> q(8);
  std::atomic<int> result{-1};
  std::thread consumer([&] {
    int out;
    result.store(q.dequeue(out) ? 1 : 0);
  });
  // Give the consumer time to park in the back-off loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(result.load(), -1);
  q.close();
  consumer.join();
  EXPECT_EQ(result.load(), 0);
}

// ---------------------------------------------------------------------------
// Property sweep: capacity × item count, all four layouts, concurrent
// producer/consumer. Invariants: exactly-once delivery, FIFO order,
// conservation.
// ---------------------------------------------------------------------------

template <typename Layout>
void run_spsc_stream(std::size_t capacity, std::uint64_t items) {
  spsc_queue<std::uint64_t, Layout> q(capacity);
  std::vector<std::uint64_t> got;
  got.reserve(items);

  std::thread consumer([&] {
    std::uint64_t out;
    while (q.dequeue(out)) got.push_back(out);
  });
  for (std::uint64_t i = 0; i < items; ++i) q.enqueue(i);
  q.close();
  consumer.join();

  ASSERT_EQ(got.size(), items);
  for (std::uint64_t i = 0; i < items; ++i) {
    ASSERT_EQ(got[i], i) << "FIFO violation at position " << i;
  }
}

class SpscSweep : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(SpscSweep, LayoutCompact) {
  run_spsc_stream<ffq::core::layout_compact>(std::get<0>(GetParam()),
                                             std::get<1>(GetParam()));
}
TEST_P(SpscSweep, LayoutAligned) {
  run_spsc_stream<ffq::core::layout_aligned>(std::get<0>(GetParam()),
                                             std::get<1>(GetParam()));
}
TEST_P(SpscSweep, LayoutRandomized) {
  run_spsc_stream<ffq::core::layout_randomized>(std::get<0>(GetParam()),
                                                std::get<1>(GetParam()));
}
TEST_P(SpscSweep, LayoutAlignedRandomized) {
  run_spsc_stream<ffq::core::layout_aligned_randomized>(std::get<0>(GetParam()),
                                                        std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    CapacityByItems, SpscSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 64, 1024),
                       ::testing::Values<std::uint64_t>(1000, 50000)),
    [](const auto& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_items" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Bulk operations (DESIGN.md §5.8): single tail publication per batch on
// the producer side, non-committal multi-item scan on the consumer side.
// ---------------------------------------------------------------------------

TEST(SpscQueueBulk, BulkRoundTripKeepsFifo) {
  spsc_queue<int> q(16);
  const int vals[] = {10, 11, 12, 13, 14};
  q.enqueue_bulk(vals, 5);
  EXPECT_EQ(q.approx_size(), 5) << "tail published once for the batch";
  int out[8] = {};
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 5u) << "partial batch: count taken";
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], 10 + i);
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 0u);
}

TEST(SpscQueueBulk, BulkAndScalarInterleaveOnSameQueue) {
  spsc_queue<int> q(64);
  int next = 0, expect = 0, out;
  int buf[4];
  for (int round = 0; round < 20; ++round) {
    q.enqueue(next++);
    buf[0] = next++;
    buf[1] = next++;
    buf[2] = next++;
    q.enqueue_bulk(buf, 3);
    ASSERT_TRUE(q.try_dequeue(out));
    ASSERT_EQ(out, expect++);
    ASSERT_EQ(q.try_dequeue_bulk(buf, 3), 3u);
    for (int i = 0; i < 3; ++i) ASSERT_EQ(buf[i], expect++);
  }
  EXPECT_EQ(expect, next);
}

TEST(SpscQueueBulk, DequeueBulkReturnsPartialBatchAtClose) {
  spsc_queue<int> q(16);
  const int vals[] = {1, 2, 3};
  q.enqueue_bulk(vals, 3);
  q.close();
  int out[8] = {};
  EXPECT_EQ(q.dequeue_bulk(out, 8), 3u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(q.dequeue_bulk(out, 8), 0u) << "closed and drained";
}

TEST(SpscQueueBulk, TryDequeueBulkStopsAtUnpublishedRank) {
  spsc_queue<std::uint64_t> q(4);
  std::uint64_t out[8];
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(i);       // ranks 0-3
  ASSERT_EQ(q.try_dequeue_bulk(out, 2), 2u);                // frees cells 0,1
  const std::uint64_t more[] = {4, 5};
  q.enqueue_bulk(more, 2);  // wraps into the freed cells, no gap needed
  ASSERT_EQ(q.gaps_created(), 0u);
  ASSERT_EQ(q.try_dequeue_bulk(out, 8), 4u)
      << "scan takes everything published, then stops without blocking";
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i + 2);
  ASSERT_EQ(q.try_dequeue_bulk(out, 8), 0u);
}

TEST(SpscQueueBulk, StressTinyCapacityBulkConserves) {
  // Capacity 2 with batch 8 maximizes wrap-arounds and near-full gap
  // announcements; the bulk scan must follow every gap (conservation
  // proves it — a missed gap would stall or lose items).
  spsc_queue<std::uint64_t> q(2);
  constexpr std::uint64_t kItems = 100000;
  std::uint64_t sum = 0, count = 0;
  std::thread consumer([&] {
    std::uint64_t buf[8];
    std::size_t n;
    while ((n = q.dequeue_bulk(buf, 8)) > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        sum += buf[i];
        ++count;
      }
    }
  });
  std::uint64_t buf[8];
  std::uint64_t next = 1;
  while (next <= kItems) {
    const std::uint64_t chunk = std::min<std::uint64_t>(8, kItems - next + 1);
    for (std::uint64_t i = 0; i < chunk; ++i) buf[i] = next + i;
    q.enqueue_bulk(buf, chunk);
    next += chunk;
  }
  q.close();
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

TEST(SpscQueueBulk, ConcurrentBulkStreamConserves) {
  spsc_queue<std::uint64_t> q(256);
  constexpr std::uint64_t kItems = 100000;
  constexpr std::size_t kBatch = 16;
  std::uint64_t sum = 0, count = 0;
  std::thread consumer([&] {
    std::uint64_t buf[kBatch];
    std::size_t n;
    std::uint64_t prev = 0;
    while ((n = q.dequeue_bulk(buf, kBatch)) > 0) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_LT(prev, buf[i]) << "FIFO across and within batches";
        prev = buf[i];
        sum += buf[i];
        ++count;
      }
    }
  });
  std::uint64_t buf[kBatch];
  std::uint64_t next = 1;
  while (next <= kItems) {
    const std::uint64_t chunk = std::min<std::uint64_t>(kBatch, kItems - next + 1);
    for (std::uint64_t i = 0; i < chunk; ++i) buf[i] = next + i;
    q.enqueue_bulk(buf, chunk);
    next += chunk;
  }
  q.close();
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

// Tiny capacity forces the full-queue path (producer sweeps, announces
// gaps while the consumer is mid-dequeue); correctness must hold and the
// consumer must follow every gap.
TEST(SpscQueue, StressTinyCapacityChecksConservation) {
  spsc_queue<std::uint64_t> q(2);
  constexpr std::uint64_t kItems = 200000;
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::thread consumer([&] {
    std::uint64_t out;
    std::uint64_t prev = 0;
    bool first = true;
    while (q.dequeue(out)) {
      if (!first) {
        ASSERT_LT(prev, out);
      }
      prev = out;
      first = false;
      sum += out;
      ++count;
    }
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) q.enqueue(i);
  q.close();
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}
