// Tests for ffq::trace — the zero-cost claim (sizeof parity of the
// disabled policy vs the untraced layouts), the per-thread ring
// (wrap-around, seqlock snapshots), the registry, timestamp merging,
// tracer hooks on real queues, the offline validator, the Chrome trace
// export (golden file + RFC 8259 round-trip through the strict JSON
// reader), and the progress watchdog (synthetic verdicts plus a live
// stuck-consumer demo). Everything instantiates the trace policy
// explicitly, so the suite is meaningful in both FFQ_TRACE build modes.
#include "ffq/trace/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ffq/core/mpmc.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/core/spsc.hpp"
#include "ffq/core/waitable.hpp"
#include "ffq/runtime/eventcount.hpp"
#include "ffq/telemetry/telemetry.hpp"

namespace trc = ffq::trace;
namespace tel = ffq::telemetry;
using ffq::core::layout_aligned;

// ---------------------------------------------------------------------------
// Zero-cost OFF: the disabled tracer is empty and [[no_unique_address]]
// keeps every queue's size and alignment byte-identical to the untraced
// layout. The mirrors replicate the pre-trace member sequences verbatim
// (same structs test_telemetry.cpp pins for the telemetry policy).
// ---------------------------------------------------------------------------

namespace {

using u64 = std::uint64_t;
template <typename Trace>
using spsc_q =
    ffq::core::spsc_queue<u64, layout_aligned, tel::disabled, Trace>;
template <typename Trace>
using spmc_q =
    ffq::core::spmc_queue<u64, layout_aligned, tel::disabled, Trace>;
template <typename Trace>
using mpmc_q =
    ffq::core::mpmc_queue<u64, layout_aligned, tel::disabled, Trace>;
template <typename Trace>
using waitable_q =
    ffq::core::waitable_spsc_queue<u64, layout_aligned, tel::disabled, Trace>;

using spmc_cell = ffq::core::detail::spmc_cell<u64, true>;
using mpmc_cell = ffq::core::detail::mpmc_cell<u64, true>;

struct spsc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<spmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::int64_t> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::uint64_t gaps_created_;
};

struct spmc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<spmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::atomic<std::int64_t>> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::uint64_t gaps_created_;
  std::atomic<std::uint64_t> skips_;
};

struct mpmc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<mpmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::atomic<std::int64_t>> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::atomic<std::uint64_t> gaps_;
  std::atomic<std::uint64_t> skips_;
};

struct waitable_mirror {
  spsc_q<trc::disabled> q_;
  ffq::runtime::eventcount ec_;
};

static_assert(std::is_empty_v<trc::queue_tracer<trc::disabled>>,
              "the disabled tracer must be an empty class");

static_assert(sizeof(spsc_q<trc::disabled>) == sizeof(spsc_mirror),
              "disabled trace must not grow spsc_queue");
static_assert(sizeof(spmc_q<trc::disabled>) == sizeof(spmc_mirror),
              "disabled trace must not grow spmc_queue");
static_assert(sizeof(mpmc_q<trc::disabled>) == sizeof(mpmc_mirror),
              "disabled trace must not grow mpmc_queue");
static_assert(sizeof(waitable_q<trc::disabled>) == sizeof(waitable_mirror),
              "disabled trace must not grow waitable_spsc_queue");

static_assert(alignof(spsc_q<trc::disabled>) == alignof(spsc_mirror));
static_assert(alignof(spmc_q<trc::disabled>) == alignof(spmc_mirror));
static_assert(alignof(mpmc_q<trc::disabled>) == alignof(mpmc_mirror));
static_assert(alignof(waitable_q<trc::disabled>) == alignof(waitable_mirror));

trc::event_record make_rec(std::uint64_t seq, std::uint64_t tsc,
                           trc::event_type type, std::int64_t arg,
                           std::uint16_t queue = 0, std::uint32_t dur = 0) {
  trc::event_record r;
  r.seq = seq;
  r.tsc = tsc;
  r.arg = arg;
  r.type = type;
  r.queue = queue;
  r.dur = dur;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

TEST(TraceZeroCost, PolicyTagsAreCoherent) {
  EXPECT_TRUE(trc::enabled::kEnabled);
  EXPECT_FALSE(trc::disabled::kEnabled);
#if defined(FFQ_TRACE) && FFQ_TRACE
  EXPECT_TRUE(trc::default_policy::kEnabled);
#else
  EXPECT_FALSE(trc::default_policy::kEnabled);
#endif
}

// ---------------------------------------------------------------------------
// Event record packing.
// ---------------------------------------------------------------------------

TEST(TraceEvent, PackUnpackRoundTrip) {
  const std::uint64_t w3 = trc::event_record::pack_word3(
      trc::event_type::dwcas_retry, 0xBEEF, 0xDEADBEEF);
  EXPECT_EQ(trc::event_record::unpack_type(w3), trc::event_type::dwcas_retry);
  EXPECT_EQ(trc::event_record::unpack_queue(w3), 0xBEEF);
  EXPECT_EQ(trc::event_record::unpack_dur(w3), 0xDEADBEEFu);
}

TEST(TraceEvent, DurationSaturates) {
  EXPECT_EQ(trc::saturate_dur(0), 0u);
  EXPECT_EQ(trc::saturate_dur(0xffffffffULL), 0xffffffffu);
  EXPECT_EQ(trc::saturate_dur(0x1'0000'0000ULL), 0xffffffffu);
}

TEST(TraceEvent, NamesAndDurationClassification) {
  EXPECT_STREQ(trc::to_string(trc::event_type::enqueue), "enqueue");
  EXPECT_STREQ(trc::to_string(trc::event_type::gap_created), "gap");
  EXPECT_STREQ(trc::to_string(trc::event_type::consumer_skip), "skip");
  EXPECT_TRUE(trc::is_duration(trc::event_type::enqueue));
  EXPECT_TRUE(trc::is_duration(trc::event_type::dequeue));
  EXPECT_FALSE(trc::is_duration(trc::event_type::park));
  EXPECT_FALSE(trc::is_duration(trc::event_type::full_stall));
}

// ---------------------------------------------------------------------------
// The per-thread ring: snapshots, wrap-around, progress epoch.
// ---------------------------------------------------------------------------

TEST(TraceRing, SnapshotReturnsPushedRecordsOldestFirst) {
  trc::trace_ring ring(7, "t7", 16);
  ring.push(trc::event_type::enqueue, 3, 41, 1000, 12);
  ring.push(trc::event_type::dequeue, 3, 41, 2000, 7);
  ring.push(trc::event_type::gap_created, 3, 42, 3000, 0);

  const auto snap = ring.snapshot();
  EXPECT_EQ(snap.tid, 7u);
  EXPECT_EQ(snap.name, "t7");
  EXPECT_EQ(snap.written, 3u);
  ASSERT_EQ(snap.records.size(), 3u);
  EXPECT_EQ(snap.records[0].seq, 1u);
  EXPECT_EQ(snap.records[0].type, trc::event_type::enqueue);
  EXPECT_EQ(snap.records[0].tsc, 1000u);
  EXPECT_EQ(snap.records[0].arg, 41);
  EXPECT_EQ(snap.records[0].queue, 3u);
  EXPECT_EQ(snap.records[0].dur, 12u);
  EXPECT_EQ(snap.records[2].seq, 3u);
  EXPECT_EQ(snap.records[2].type, trc::event_type::gap_created);
}

// Satellite: wrap-around must overwrite the oldest records, keep the
// newest capacity-many, and keep seq numbers monotonic across the wrap
// so the loss is observable downstream.
TEST(TraceRing, WrapAroundKeepsNewestWithMonotonicSeqs) {
  constexpr std::size_t kCap = 8;
  trc::trace_ring ring(0, "wrap", kCap);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.push(trc::event_type::enqueue, 1, static_cast<std::int64_t>(i),
              100 + i, 1);
  }
  EXPECT_EQ(ring.written(), 20u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.records.size(), kCap);
  // Newest 8 of 20: seqs 13..20 (1-based), args 12..19, oldest first.
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(snap.records[i].seq, 13 + i);
    EXPECT_EQ(snap.records[i].arg, static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(snap.records[i].tsc, 112 + i);
  }
}

TEST(TraceRing, ProgressEpochCountsDequeues) {
  trc::trace_ring ring(0, "p", 8);
  EXPECT_EQ(ring.progress(), 0u);
  ring.mark_progress();
  ring.mark_progress();
  EXPECT_EQ(ring.progress(), 2u);
}

// A snapshot taken while another thread hammers the ring must only ever
// contain internally-consistent records (the seqlock contract): seq
// strictly increasing, payloads matching the generator's pattern.
TEST(TraceRing, ConcurrentSnapshotSeesOnlyConsistentRecords) {
  trc::trace_ring ring(0, "hot", 64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Payload pattern: arg == tsc == i, dur == i & 0xffff.
      ring.push(trc::event_type::enqueue, 9, static_cast<std::int64_t>(i), i,
                static_cast<std::uint32_t>(i & 0xffff));
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    const auto snap = ring.snapshot();
    std::uint64_t prev_seq = 0;
    for (const auto& r : snap.records) {
      EXPECT_GT(r.seq, prev_seq);
      prev_seq = r.seq;
      // seq is 1-based over the same counter that generates the payload.
      EXPECT_EQ(r.tsc, r.seq - 1);
      EXPECT_EQ(r.arg, static_cast<std::int64_t>(r.seq - 1));
      EXPECT_EQ(r.dur, static_cast<std::uint32_t>((r.seq - 1) & 0xffff));
      EXPECT_EQ(r.queue, 9u);
    }
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------------------
// Registry: queue ids, thread rings, reset.
// ---------------------------------------------------------------------------

TEST(TraceRegistry, QueueIdsCountPerKind) {
  auto& reg = trc::registry::instance();
  reg.reset();
  const auto a = reg.register_queue("ffq-mpmc");
  const auto b = reg.register_queue("ffq-mpmc");
  const auto c = reg.register_queue("ffq-spsc");
  EXPECT_EQ(reg.queue_name(a), "ffq-mpmc#0");
  EXPECT_EQ(reg.queue_name(b), "ffq-mpmc#1");
  EXPECT_EQ(reg.queue_name(c), "ffq-spsc#0");
  EXPECT_EQ(reg.queue_name(999), "?");
}

TEST(TraceRegistry, ThreadRingIsCachedAndNameable) {
  auto& reg = trc::registry::instance();
  reg.reset();
  auto& r1 = reg.ring_for_this_thread();
  auto& r2 = reg.ring_for_this_thread();
  EXPECT_EQ(&r1, &r2);
  trc::set_thread_name("gtest-main");
  const auto snaps = reg.snapshot_all();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "gtest-main");
}

TEST(TraceRegistry, ResetInvalidatesCachedRings) {
  auto& reg = trc::registry::instance();
  reg.reset();
  auto& before = reg.ring_for_this_thread();
  before.push(trc::event_type::park, 0, 0, 1, 0);
  reg.reset();
  auto& after = reg.ring_for_this_thread();
  EXPECT_EQ(after.written(), 0u) << "stale cached ring after reset";
  EXPECT_EQ(reg.snapshot_all().size(), 1u);
}

// ---------------------------------------------------------------------------
// Merging: total order by (tsc, tid, seq) even with skewed cross-thread
// timestamps (satellite: the merge test with skewed clocks).
// ---------------------------------------------------------------------------

TEST(TraceMerge, OrdersByTscThenTidThenSeq) {
  trc::thread_snapshot a;
  a.tid = 0;
  a.records = {make_rec(1, 100, trc::event_type::enqueue, 0),
               make_rec(2, 300, trc::event_type::enqueue, 1)};
  trc::thread_snapshot b;
  b.tid = 1;
  // Skewed: this thread's clock runs "backwards" relative to its seq
  // order — the merge must still produce a deterministic total order.
  b.records = {make_rec(1, 200, trc::event_type::dequeue, 0),
               make_rec(2, 100, trc::event_type::dequeue, 1)};

  const auto merged = trc::merge_snapshots({a, b});
  ASSERT_EQ(merged.size(), 4u);
  // tsc 100 ties between (tid 0, seq 1) and (tid 1, seq 2): tid breaks it.
  EXPECT_EQ(merged[0].tid, 0u);
  EXPECT_EQ(merged[0].rec.seq, 1u);
  EXPECT_EQ(merged[1].tid, 1u);
  EXPECT_EQ(merged[1].rec.seq, 2u);
  EXPECT_EQ(merged[2].tid, 1u);
  EXPECT_EQ(merged[2].rec.seq, 1u);
  EXPECT_EQ(merged[3].tid, 0u);
  EXPECT_EQ(merged[3].rec.seq, 2u);
}

TEST(TraceMerge, SameTscSameTidOrdersBySeq) {
  trc::thread_snapshot a;
  a.tid = 3;
  a.records = {make_rec(5, 42, trc::event_type::enqueue, 0),
               make_rec(6, 42, trc::event_type::enqueue, 1)};
  const auto merged = trc::merge_snapshots({a});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].rec.seq, 5u);
  EXPECT_EQ(merged[1].rec.seq, 6u);
}

// ---------------------------------------------------------------------------
// The validator as a unit: each contract violation and the drop
// downgrade, on synthetic op streams.
// ---------------------------------------------------------------------------

namespace {

trc::trace_op op(std::uint32_t tid, std::uint64_t seq, const char* type,
                 const char* queue, std::int64_t rank) {
  trc::trace_op o;
  o.tid = tid;
  o.seq = seq;
  o.type = type;
  o.queue = queue;
  o.rank = rank;
  return o;
}

}  // namespace

TEST(TraceValidate, CleanDrainedTracePasses) {
  const std::vector<trc::trace_op> ops = {
      op(0, 1, "enqueue", "q#0", 0), op(0, 2, "enqueue", "q#0", 1),
      op(1, 1, "dequeue", "q#0", 0), op(1, 2, "dequeue", "q#0", 1),
      op(1, 3, "skip", "q#0", 2),
  };
  const auto rep = trc::validate_trace(ops, /*expect_drained=*/true);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.enqueues, 2u);
  EXPECT_EQ(rep.dequeues, 2u);
  EXPECT_EQ(rep.instants, 1u);
  EXPECT_EQ(rep.dropped, 0u);
  EXPECT_EQ(rep.lost, 0u);
}

TEST(TraceValidate, ProducerFifoViolation) {
  const std::vector<trc::trace_op> ops = {
      op(0, 1, "enqueue", "q#0", 5),
      op(0, 2, "enqueue", "q#0", 3),  // rank went backwards
  };
  const auto rep = trc::validate_trace(ops, false);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("FIFO"), std::string::npos);
}

TEST(TraceValidate, DuplicatePublishAndConsume) {
  const std::vector<trc::trace_op> ops = {
      op(0, 1, "enqueue", "q#0", 0), op(1, 1, "enqueue", "q#0", 0),
      op(2, 1, "dequeue", "q#0", 0), op(3, 1, "dequeue", "q#0", 0),
  };
  const auto rep = trc::validate_trace(ops, false);
  ASSERT_EQ(rep.errors.size(), 2u);
  EXPECT_NE(rep.errors[0].find("published twice"), std::string::npos);
  EXPECT_NE(rep.errors[1].find("consumed twice"), std::string::npos);
}

TEST(TraceValidate, FabricationDetectedOnlyWithoutDrops) {
  const std::vector<trc::trace_op> with_fabrication = {
      op(1, 1, "dequeue", "q#0", 7),
  };
  auto rep = trc::validate_trace(with_fabrication, false);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("never published"), std::string::npos);

  // Same stream but the producer thread visibly dropped records (seq gap):
  // the fabrication check must stay quiet.
  const std::vector<trc::trace_op> with_drops = {
      op(0, 1, "enqueue", "q#0", 0),
      op(0, 5, "enqueue", "q#0", 1),  // seqs 2..4 lost to overwrite
      op(1, 1, "dequeue", "q#0", 0),
      op(1, 2, "dequeue", "q#0", 7),
  };
  rep = trc::validate_trace(with_drops, false);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.dropped, 3u);
}

// Overwrite-oldest keeps each thread's *newest* contiguous window, so a
// wrapped ring shows up as a leading seq gap (first seq > 1), never an
// interior one. That must count as drops — found live when a long bench
// run wrapped the producer's ring and the validator, seeing "0 dropped",
// flagged every surviving dequeue of an overwritten enqueue as
// fabrication.
TEST(TraceValidate, LeadingSeqGapCountsAsDropsAndMutesFabrication) {
  const std::vector<trc::trace_op> ops = {
      op(0, 101, "enqueue", "q#0", 100),  // seqs 1..100 lost to overwrite
      op(0, 102, "enqueue", "q#0", 101),
      op(1, 1, "dequeue", "q#0", 7),  // published record was overwritten
      op(1, 2, "dequeue", "q#0", 100),
  };
  const auto rep = trc::validate_trace(ops, /*expect_drained=*/true);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.dropped, 100u);
}

TEST(TraceValidate, LossFailsOnlyWhenDrainedAndComplete) {
  const std::vector<trc::trace_op> ops = {
      op(0, 1, "enqueue", "q#0", 0),
      op(0, 2, "enqueue", "q#0", 1),
      op(1, 1, "dequeue", "q#0", 0),
  };
  auto rep = trc::validate_trace(ops, /*expect_drained=*/false);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.lost, 1u);

  rep = trc::validate_trace(ops, /*expect_drained=*/true);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("never consumed"), std::string::npos);
}

TEST(TraceValidate, DuplicateSeqIsAnError) {
  const std::vector<trc::trace_op> ops = {
      op(0, 2, "enqueue", "q#0", 0),
      op(0, 2, "enqueue", "q#0", 1),
  };
  const auto rep = trc::validate_trace(ops, false);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("duplicate seq"), std::string::npos);
}

// Program order is seq order, not timeline order: an instant emitted
// mid-operation carries a later tsc than the operation's start-stamped
// record, so a tsc-sorted merge can interleave them — that must not read
// as a seq violation or as drops.
TEST(TraceValidate, TimelineOrderWithinAThreadIsNotAViolation) {
  const std::vector<trc::trace_op> ops = {
      op(0, 2, "enqueue", "q#0", 0),          // start-stamped, sorts later
      op(0, 1, "dwcas_retry", "q#0", 0),      // mid-op instant, earlier seq
      op(1, 1, "dequeue", "q#0", 0),
  };
  const auto rep = trc::validate_trace(ops, /*expect_drained=*/true);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.dropped, 0u);
}

// ---------------------------------------------------------------------------
// Tracer hooks on real queues (single-threaded determinism first).
// ---------------------------------------------------------------------------

TEST(TraceQueues, SpscEmitsOneRecordPerOperation) {
  auto& reg = trc::registry::instance();
  reg.reset();
  spsc_q<trc::enabled> q(64);
  for (u64 i = 1; i <= 10; ++i) q.enqueue(i);
  u64 v = 0;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.try_dequeue(v));
  EXPECT_FALSE(q.try_dequeue(v));

  const auto merged = trc::merge_snapshots(reg.snapshot_all());
  const auto ops = trc::to_trace_ops(
      merged, [&](std::uint16_t id) { return reg.queue_name(id); });
  const auto rep = trc::validate_trace(ops, /*expect_drained=*/true);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.enqueues, 10u);
  EXPECT_EQ(rep.dequeues, 10u);
  // Ranks are the queue protocol's: 0..9 published in order on this one
  // queue by this one thread.
  EXPECT_EQ(ops.front().queue, "ffq-spsc#0");
}

TEST(TraceQueues, BulkOperationsEmitPerItemRecords) {
  auto& reg = trc::registry::instance();
  reg.reset();
  spmc_q<trc::enabled> q(64);
  const u64 in[5] = {1, 2, 3, 4, 5};
  q.enqueue_bulk(in, 5);
  u64 out[5] = {};
  ASSERT_EQ(q.dequeue_bulk(out, 5), 5u);

  const auto merged = trc::merge_snapshots(reg.snapshot_all());
  std::size_t enq = 0, deq = 0;
  for (const auto& e : merged) {
    enq += e.rec.type == trc::event_type::enqueue ? 1 : 0;
    deq += e.rec.type == trc::event_type::dequeue ? 1 : 0;
  }
  EXPECT_EQ(enq, 5u);
  EXPECT_EQ(deq, 5u);
}

TEST(TraceQueues, DequeueBumpsProgressEpoch) {
  auto& reg = trc::registry::instance();
  reg.reset();
  mpmc_q<trc::enabled> q(64);
  q.enqueue(11);
  q.enqueue(22);
  u64 v = 0;
  ASSERT_TRUE(q.try_dequeue(v));
  ASSERT_TRUE(q.try_dequeue(v));
  const auto snaps = reg.snapshot_all();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].progress, 2u);
}

TEST(TraceQueues, WaitableEmitsParkAndWake) {
  auto& reg = trc::registry::instance();
  reg.reset();
  waitable_q<trc::enabled> q(64);
  std::thread consumer([&] {
    trc::set_thread_name("consumer");
    u64 v = 0;
    while (q.dequeue(v)) {
    }
  });
  // Give the consumer time to spin out and park on the eventcount, so
  // the enqueue takes the traced wake path.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  q.enqueue(1);
  q.close();
  consumer.join();

  std::size_t parks = 0, wakes = 0;
  for (const auto& s : reg.snapshot_all()) {
    for (const auto& r : s.records) {
      parks += r.type == trc::event_type::park ? 1 : 0;
      wakes += r.type == trc::event_type::wake ? 1 : 0;
    }
  }
  EXPECT_GE(parks, 1u);
  EXPECT_GE(wakes, 1u);
}

// The acceptance scenario, in-process: an MPMC stress run whose merged
// trace the validator certifies (per-producer FIFO, no loss, no dup).
TEST(TraceQueues, MpmcStressTraceValidates) {
  auto& reg = trc::registry::instance();
  reg.reset();
  reg.set_ring_capacity(1 << 15);  // ample: no drops, so "no loss" is hard
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr u64 kItems = 2000;  // per producer
  mpmc_q<trc::enabled> q(256);

  std::vector<std::thread> threads;
  std::atomic<u64> consumed{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      trc::set_thread_name("consumer-" + std::to_string(c));
      u64 v = 0;
      while (q.dequeue(v)) consumed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      trc::set_thread_name("producer-" + std::to_string(p));
      for (u64 i = 0; i < kItems; ++i) {
        q.enqueue((static_cast<u64>(p) << 32) | i);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();
  ASSERT_EQ(consumed.load(), kProducers * kItems);

  const auto merged = trc::merge_snapshots(reg.snapshot_all());
  const auto ops = trc::to_trace_ops(
      merged, [&](std::uint16_t id) { return reg.queue_name(id); });
  const auto rep = trc::validate_trace(ops, /*expect_drained=*/true);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.dropped, 0u) << "ring too small for a loss-checked run";
  EXPECT_EQ(rep.enqueues, kProducers * kItems);
  EXPECT_EQ(rep.dequeues, kProducers * kItems);
  reg.set_ring_capacity(trc::trace_ring::kDefaultCapacity);
}

// ---------------------------------------------------------------------------
// Export: golden file (byte-stable contract) and RFC 8259 round-trip.
// ---------------------------------------------------------------------------

namespace {

/// Deterministic fixture for the export tests: two threads over one
/// registered queue, with an escaping-hostile thread name, a cross-thread
/// tsc tie, every event class (X, i), and a counter overlay.
std::vector<trc::thread_snapshot> golden_snapshots() {
  trc::thread_snapshot p;
  p.tid = 0;
  p.name = "producer-0";
  p.written = 4;
  p.records = {
      make_rec(1, 1000, trc::event_type::enqueue, 0, 0, 250),
      make_rec(2, 2000, trc::event_type::enqueue, 1, 0, 125),
      make_rec(3, 2500, trc::event_type::gap_created, 2, 0),
      make_rec(4, 3500, trc::event_type::full_stall, 3, 0),
  };
  trc::thread_snapshot c;
  c.tid = 1;
  c.name = "consumer \"0\"\\path\n";  // exercises the JSON escaper
  c.written = 4;
  c.progress = 2;
  c.records = {
      make_rec(1, 1500, trc::event_type::dequeue, 0, 0, 500),
      make_rec(2, 2000, trc::event_type::consumer_skip, 2, 0),  // tsc tie
      make_rec(3, 2600, trc::event_type::dequeue, 1, 0, 100),
      make_rec(4, 2700, trc::event_type::park, 0, 0),
  };
  return {p, c};
}

tel::metrics_snapshot golden_metrics() {
  tel::metrics_snapshot snap;
  snap.counters["queue.ffq-mpmc/consumer_skips"] = 1;
  snap.counters["queue.ffq-mpmc/gaps_created"] = 1;
  return snap;
}

}  // namespace

TEST(TraceExport, JsonMatchesGoldenFile) {
  auto& reg = trc::registry::instance();
  reg.reset();
  ASSERT_EQ(reg.register_queue("ffq-mpmc"), 0u);

  const auto metrics = golden_metrics();
  trc::export_options opts;
  opts.ticks_per_us = 1000.0;  // pinned: 1000 ticks = 1 µs, byte-stable
  opts.metrics = &metrics;
  const std::string produced = trc::chrome_trace_json(golden_snapshots(), opts);

  // Keep the produced text inspectable (and regeneratable) on mismatch.
  {
    std::ofstream f("/tmp/ffq_trace_v1_produced.json", std::ios::binary);
    f << produced;
  }
  const std::string golden =
      slurp(std::string(FFQ_GOLDEN_DIR) + "/trace_v1.json");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(produced, golden)
      << "trace JSON drifted from tests/golden/trace_v1.json; if the schema "
         "changed intentionally, bump kTraceSchema and regenerate from "
         "/tmp/ffq_trace_v1_produced.json";
}

TEST(TraceExport, RoundTripsThroughStrictJsonReader) {
  auto& reg = trc::registry::instance();
  reg.reset();
  ASSERT_EQ(reg.register_queue("ffq-mpmc"), 0u);
  const auto metrics = golden_metrics();
  trc::export_options opts;
  opts.ticks_per_us = 1000.0;
  opts.metrics = &metrics;
  const std::string text = trc::chrome_trace_json(golden_snapshots(), opts);

  const auto doc = trc::json::parse(text);
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.root["schema"].as_string(), trc::kTraceSchema);
  EXPECT_EQ(doc.root["displayTimeUnit"].as_string(), "ns");
  ASSERT_TRUE(doc.root["traceEvents"].is_array());
  const auto& events = doc.root["traceEvents"].as_array();

  // 1 process + 2 thread metadata, 8 queue events, 2 counters.
  ASSERT_EQ(events.size(), 13u);

  // The hostile thread name must round-trip exactly.
  bool found_name = false;
  std::size_t queue_events = 0;
  std::vector<trc::trace_op> ops;
  for (const auto& ev : events) {
    if (ev["ph"].as_string() == "M" &&
        ev["name"].as_string() == "thread_name" && ev["tid"].as_int() == 1) {
      EXPECT_EQ(ev["args"]["name"].as_string(), "consumer \"0\"\\path\n");
      found_name = true;
    }
    if (ev["cat"].as_string() == "queue") {
      ++queue_events;
      trc::trace_op o;
      o.tid = static_cast<std::uint32_t>(ev["tid"].as_int());
      o.seq = static_cast<std::uint64_t>(ev["args"]["seq"].as_int());
      o.type = ev["name"].as_string();
      o.queue = ev["args"]["queue"].as_string();
      o.rank = ev["args"]["rank"].as_int();
      EXPECT_TRUE(ev["args"]["seq"].int_exact());
      EXPECT_TRUE(ev["ts"].is_number());
      ops.push_back(std::move(o));
    }
  }
  EXPECT_TRUE(found_name);
  EXPECT_EQ(queue_events, 8u);
  EXPECT_EQ(ops.front().queue, "ffq-mpmc#0");

  // The parsed-back ops satisfy the queue contract (what trace_check
  // runs against real files).
  const auto rep = trc::validate_trace(ops, /*expect_drained=*/false);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.enqueues, 2u);
  EXPECT_EQ(rep.dequeues, 2u);
}

TEST(TraceExport, TimestampsAreRebasedAndScaled) {
  auto& reg = trc::registry::instance();
  reg.reset();
  reg.register_queue("ffq-mpmc");
  trc::export_options opts;
  opts.ticks_per_us = 1000.0;
  const std::string text = trc::chrome_trace_json(golden_snapshots(), opts);
  // min tsc (1000) maps to ts 0.000; the 250-tick dur maps to 0.250 µs.
  EXPECT_NE(text.find("\"ts\":0.000,\"dur\":0.250"), std::string::npos);
  // tsc 2000 -> 1.000 µs after rebasing.
  EXPECT_NE(text.find("\"ts\":1.000"), std::string::npos);
}

TEST(TraceExport, WriteChromeTraceProducesParseableFile) {
  auto& reg = trc::registry::instance();
  reg.reset();
  spmc_q<trc::enabled> q(64);
  trc::set_thread_name("exporter-test");
  for (u64 i = 1; i <= 4; ++i) q.enqueue(i);
  u64 v = 0;
  while (q.try_dequeue(v)) {
  }
  const std::string path = "/tmp/ffq_test_trace_export.json";
  ASSERT_TRUE(trc::write_chrome_trace(path));
  const auto doc = trc::json::parse(slurp(path));
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.root["schema"].as_string(), trc::kTraceSchema);
  EXPECT_GE(doc.root["traceEvents"].as_array().size(), 9u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The strict JSON reader itself.
// ---------------------------------------------------------------------------

TEST(TraceJsonReader, ParsesEscapesAndSurrogatePairs) {
  const auto doc = trc::json::parse(
      R"({"s":"a\"b\\c\nd\u0041\ud83d\ude00","n":-12.5e1,"i":7,)"
      R"("b":true,"z":null,"a":[1,2]})");
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.root["s"].as_string(), "a\"b\\c\nd" "A" "\xF0\x9F\x98\x80");
  EXPECT_EQ(doc.root["n"].as_double(), -125.0);
  EXPECT_FALSE(doc.root["n"].int_exact());
  EXPECT_EQ(doc.root["i"].as_int(), 7);
  EXPECT_TRUE(doc.root["i"].int_exact());
  EXPECT_TRUE(doc.root["b"].as_bool());
  EXPECT_TRUE(doc.root["z"].is_null());
  EXPECT_EQ(doc.root["a"].as_array().size(), 2u);
  // Missing-key chains resolve to null, no throw.
  EXPECT_TRUE(doc.root["missing"]["deeper"].is_null());
}

TEST(TraceJsonReader, RejectsNonRfc8259Documents) {
  EXPECT_FALSE(trc::json::parse("{\"a\":1,}").ok);     // trailing comma
  EXPECT_FALSE(trc::json::parse("{\"a\":01}").ok);     // leading zero
  EXPECT_FALSE(trc::json::parse("{\"a\":NaN}").ok);    // NaN literal
  EXPECT_FALSE(trc::json::parse("{'a':1}").ok);        // single quotes
  EXPECT_FALSE(trc::json::parse("{\"a\":1} x").ok);    // trailing junk
  EXPECT_FALSE(trc::json::parse("{\"a\":\"\\ud800\"}").ok);  // lone surrogate
  EXPECT_FALSE(trc::json::parse("{\"a\":\"\x01\"}").ok);  // raw control char
  EXPECT_FALSE(trc::json::parse("").ok);
}

// ---------------------------------------------------------------------------
// Watchdog: verdict classification on synthetic probes, then the live
// stuck-consumer demo on a real traced queue.
// ---------------------------------------------------------------------------

namespace {

/// A fabricated probe describing an arbitrary queue state — classify()
/// and the dump renderer are deterministic functions of this view.
trc::queue_probe fake_probe(std::string name, std::int64_t head,
                            std::int64_t tail, std::size_t capacity,
                            trc::cell_view head_cell) {
  trc::queue_probe p;
  p.name = std::move(name);
  p.head = [head] { return head; };
  p.tail = [tail] { return tail; };
  p.closed = [] { return false; };
  p.capacity = [capacity] { return capacity; };
  p.cell = [head, head_cell](std::int64_t rank) {
    return rank == head ? head_cell : trc::cell_view{};
  };
  return p;
}

}  // namespace

TEST(TraceWatchdog, ClassifiesStuckProducer) {
  trc::registry::instance().reset();
  trc::watchdog wd;
  wd.add_probe(fake_probe("fake", 5, 10, 16, trc::cell_view{-2, -1}));
  const std::string dump = wd.dump_now();
  EXPECT_NE(dump.find("stuck_producer"), std::string::npos);
  EXPECT_NE(dump.find("-2 reservation"), std::string::npos);
}

TEST(TraceWatchdog, ClassifiesLostRank) {
  trc::registry::instance().reset();
  trc::watchdog wd;
  // Cell for rank 5 holds rank 9 and its gap (3) does not cover 5.
  wd.add_probe(fake_probe("fake", 5, 10, 16, trc::cell_view{9, 3}));
  const std::string dump = wd.dump_now();
  EXPECT_NE(dump.find("lost_rank"), std::string::npos);
  EXPECT_NE(dump.find("protocol"), std::string::npos);
}

TEST(TraceWatchdog, ClassifiesFullRingLivelock) {
  trc::registry::instance().reset();
  trc::watchdog wd;
  wd.add_probe(fake_probe("fake", 4, 20, 16, trc::cell_view{4, -1}));
  const std::string dump = wd.dump_now();
  EXPECT_NE(dump.find("full_ring_livelock"), std::string::npos);
}

TEST(TraceWatchdog, DumpContainsQueueAndCellState) {
  trc::registry::instance().reset();
  trc::watchdog wd;
  wd.add_probe(fake_probe("my-queue", 5, 10, 16, trc::cell_view{5, -1}));
  const std::string dump = wd.dump_now();
  EXPECT_NE(dump.find("queue my-queue: head=5 tail=10 pending=5 capacity=16"),
            std::string::npos);
  EXPECT_NE(dump.find("<- head"), std::string::npos);
  EXPECT_NE(dump.find("<- tail"), std::string::npos);
  EXPECT_NE(dump.find("=== end dump ==="), std::string::npos);
}

TEST(TraceWatchdog, NoProbesDumpIsOk) {
  trc::registry::instance().reset();
  trc::watchdog wd;
  const std::string dump = wd.dump_now();
  EXPECT_NE(dump.find("=== ffq watchdog: ok ==="), std::string::npos);
}

// Deterministic verdict tests: the test owns time through an injected
// clock and is the only sampler (sample_once(), no sampler thread), so
// every assertion below is a pure state-machine check — no sleeps, no
// deadline polling, no dependence on machine load.

namespace {

/// Hand-cranked time source for watchdog::config::clock.
struct fake_clock {
  // Start well past the epoch so "age since baseline" arithmetic never
  // underflows a default-constructed time_point.
  std::chrono::steady_clock::time_point t{
      std::chrono::steady_clock::time_point{} + std::chrono::hours(1)};
  void advance(std::chrono::milliseconds d) { t += d; }
  std::function<std::chrono::steady_clock::time_point()> fn() {
    return [this] { return t; };
  }
};

}  // namespace

// The acceptance demo: a consumer that consumed, then silently stopped
// with work pending. The watchdog must trigger, say stuck_consumer, and
// name the frozen thread.
TEST(TraceWatchdog, StuckConsumerIsDetectedAndNamedDeterministically) {
  auto& reg = trc::registry::instance();
  reg.reset();
  spmc_q<trc::enabled> q(64);
  for (u64 i = 1; i <= 10; ++i) q.enqueue(i);

  std::thread consumer([&] {
    trc::set_thread_name("lazy-consumer");
    u64 v = 0;
    // Consume a little, then "hang" (exit without draining): progress
    // epoch > 0 and frozen, with pending work behind the head.
    ASSERT_TRUE(q.try_dequeue(v));
    ASSERT_TRUE(q.try_dequeue(v));
  });
  consumer.join();

  fake_clock clock;
  std::vector<std::string> dumps;
  trc::watchdog::config cfg;
  cfg.stall_threshold = std::chrono::milliseconds(40);
  cfg.clock = clock.fn();
  cfg.sink = [&](trc::verdict, const std::string& d) { dumps.push_back(d); };
  trc::watchdog wd(std::move(cfg));
  wd.add_probe(trc::make_queue_probe(q, "ffq-spmc#0"));

  wd.sample_once();  // below threshold: arms ring-progress history only
  EXPECT_EQ(wd.triggers(), 0u);

  clock.advance(std::chrono::milliseconds(41));
  wd.sample_once();  // head frozen past threshold with work pending
  ASSERT_EQ(wd.triggers(), 1u);
  EXPECT_EQ(wd.last_verdict(), trc::verdict::stuck_consumer);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("stuck_consumer"), std::string::npos);
  EXPECT_NE(dumps[0].find("ffq-spmc#0"), std::string::npos);

  // The post-mortem names the frozen consumer: its progress epoch is > 0
  // and has not moved across the (fake) stall window.
  const std::string post_mortem = wd.dump_now();
  EXPECT_NE(post_mortem.find("lazy-consumer"), std::string::npos);
  EXPECT_NE(post_mortem.find("STALLED CONSUMER"), std::string::npos);
}

TEST(TraceWatchdog, RecoversAndStaysQuietOncePerIncident) {
  auto& reg = trc::registry::instance();
  reg.reset();
  spmc_q<trc::enabled> q(64);
  q.enqueue(1);
  q.enqueue(2);

  fake_clock clock;
  int fired = 0;
  trc::watchdog::config cfg;
  cfg.stall_threshold = std::chrono::milliseconds(30);
  cfg.clock = clock.fn();
  cfg.sink = [&](trc::verdict, const std::string&) { ++fired; };
  trc::watchdog wd(std::move(cfg));
  wd.add_probe(trc::make_queue_probe(q, "q"));

  clock.advance(std::chrono::milliseconds(31));
  wd.sample_once();
  ASSERT_EQ(fired, 1);

  // Same incident, more samples: once_per_incident keeps it at one dump.
  for (int i = 0; i < 5; ++i) {
    clock.advance(std::chrono::milliseconds(31));
    wd.sample_once();
  }
  EXPECT_EQ(fired, 1);

  // Head moves (incident clears), then freezes again with work pending:
  // a second incident, a second dump.
  u64 v = 0;
  ASSERT_TRUE(q.try_dequeue(v));
  wd.sample_once();  // observes the moved head, closes the incident
  EXPECT_EQ(fired, 1);
  clock.advance(std::chrono::milliseconds(31));
  wd.sample_once();
  EXPECT_EQ(fired, 2);
}

TEST(TraceWatchdog, FullRingLivelockVerdictDeterministically) {
  trc::registry::instance().reset();
  spmc_q<trc::enabled> q(4);
  for (u64 i = 1; i <= 4; ++i) q.enqueue(i);  // ring full, nobody consumes

  fake_clock clock;
  trc::watchdog::config cfg;
  cfg.stall_threshold = std::chrono::milliseconds(30);
  cfg.clock = clock.fn();
  cfg.sink = [](trc::verdict, const std::string&) {};
  trc::watchdog wd(std::move(cfg));
  wd.add_probe(trc::make_queue_probe(q, "full"));

  clock.advance(std::chrono::milliseconds(31));
  wd.sample_once();
  EXPECT_EQ(wd.triggers(), 1u);
  EXPECT_EQ(wd.last_verdict(), trc::verdict::full_ring_livelock);
}

TEST(TraceWatchdog, IdleQueueNeverTriggers) {
  trc::registry::instance().reset();
  spmc_q<trc::enabled> q(64);  // empty: tail == head
  fake_clock clock;
  trc::watchdog::config cfg;
  cfg.stall_threshold = std::chrono::milliseconds(10);
  cfg.clock = clock.fn();
  cfg.sink = [](trc::verdict, const std::string&) {};
  trc::watchdog wd(std::move(cfg));
  wd.add_probe(trc::make_queue_probe(q, "idle"));
  for (int i = 0; i < 10; ++i) {
    clock.advance(std::chrono::milliseconds(100));
    wd.sample_once();
  }
  EXPECT_EQ(wd.triggers(), 0u);
  EXPECT_EQ(wd.last_verdict(), trc::verdict::ok);
}

// ---------------------------------------------------------------------------
// Queue introspection feeding the probes.
// ---------------------------------------------------------------------------

TEST(TraceIntrospection, RanksAndCellsReflectQueueState) {
  trc::registry::instance().reset();
  mpmc_q<trc::enabled> q(8);
  EXPECT_EQ(q.head_rank(), 0);
  EXPECT_EQ(q.tail_rank(), 0);
  q.enqueue(10);
  q.enqueue(20);
  EXPECT_EQ(q.head_rank(), 0);
  EXPECT_EQ(q.tail_rank(), 2);
  // Rank 0's cell holds rank 0 (published, unconsumed).
  EXPECT_EQ(q.inspect_rank(0).rank, 0);
  u64 v = 0;
  ASSERT_TRUE(q.try_dequeue(v));
  EXPECT_EQ(q.head_rank(), 1);
}
