// Differential checking across the FFQ family: the same seeded program,
// run to completion over every queue that supports its shape, must hand
// out the same dequeue multiset (exactly what went in) and the same
// per-producer orders. Any divergence localizes a bug to one variant —
// the queues implement one contract, so they must agree item-for-item.
//
// The programs run under the cooperative scheduler with live
// FFQ_CHECK_YIELD() points (defined before any include), so every run is
// a deterministic function of (queue type, seed): failures reproduce
// from the printed schedule via `check_explore --queue <q> --replay`.
#ifndef FFQ_CHECK
#define FFQ_CHECK 1
#endif

#include "ffq/check/check.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ffq/core/mpmc.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/core/spsc.hpp"
#include "ffq/core/waitable.hpp"
#include "ffq/shard/shard.hpp"

namespace chk = ffq::check;

namespace {

using q_spsc = ffq::core::spsc_queue<long long>;
using q_spmc = ffq::core::spmc_queue<long long>;
using q_mpmc = ffq::core::mpmc_queue<long long>;
using q_wait = ffq::core::waitable_spsc_queue<long long>;
using q_shard = ffq::shard::fabric<long long, false>;
using q_shard_ord = ffq::shard::fabric<long long, true>;

/// One run of the fixed program over Queue under the given seed; the run
/// must already satisfy the oracles on its own (the harness checks them)
/// — the differential layer then compares runs *across* queues.
template <typename Queue>
chk::run_result run_seeded(const chk::program_config& cfg,
                           std::uint64_t seed) {
  chk::random_driver d(seed);
  chk::run_result r = chk::run_program<Queue>(cfg, d);
  EXPECT_TRUE(r.ok) << r.violation
                    << "\nschedule: " << chk::format_schedule(r.sched);
  return r;
}

chk::program_config shape(int producers, int consumers, int items) {
  chk::program_config cfg;
  cfg.capacity = 4;  // smaller than the item count: wraps and full-ring
  cfg.producers = producers;
  cfg.consumers = consumers;
  cfg.items_per_producer = items;
  return cfg;
}

}  // namespace

// Single-producer / single-consumer program: every queue in the family
// supports it, and with one consumer the per-producer-FIFO guarantee
// collapses to *exact stream equality* — all four queues must emit the
// identical sequence, not just the identical multiset.
TEST(Differential, SpscShapeAgreesAcrossAllFourQueues) {
  const auto cfg = shape(1, 1, 10);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto a = run_seeded<q_spsc>(cfg, seed);
    const auto b = run_seeded<q_spmc>(cfg, seed);
    const auto c = run_seeded<q_mpmc>(cfg, seed);
    const auto d = run_seeded<q_wait>(cfg, seed);
    ASSERT_EQ(a.dequeued_sorted, b.dequeued_sorted) << "seed " << seed;
    ASSERT_EQ(a.dequeued_sorted, c.dequeued_sorted) << "seed " << seed;
    ASSERT_EQ(a.dequeued_sorted, d.dequeued_sorted) << "seed " << seed;
    ASSERT_EQ(a.streams, b.streams) << "seed " << seed;
    ASSERT_EQ(a.streams, c.streams) << "seed " << seed;
    ASSERT_EQ(a.streams, d.streams) << "seed " << seed;
  }
}

// Single-producer / two-consumer program over the multi-consumer queues:
// streams may split differently between consumers (schedules differ per
// queue type), but the multiset and each stream's per-producer order are
// pinned by the oracles, and the multisets must agree across queues.
TEST(Differential, SpmcShapeAgreesBetweenSpmcAndMpmc) {
  const auto cfg = shape(1, 2, 10);
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto a = run_seeded<q_spmc>(cfg, seed);
    const auto b = run_seeded<q_mpmc>(cfg, seed);
    ASSERT_EQ(a.dequeued_sorted.size(), 10u) << "seed " << seed;
    ASSERT_EQ(a.dequeued_sorted, b.dequeued_sorted) << "seed " << seed;
  }
}

// Two-producer / two-consumer program (MPMC only in the family, but the
// bulk and scalar paths of the same queue must also agree with each
// other): scalar vs batched enqueue/dequeue is a program-level detail
// the queue contract must not observe.
TEST(Differential, ScalarAndBulkPathsAgreeOnMpmc) {
  auto scalar = shape(2, 2, 8);
  auto bulk = scalar;
  bulk.enqueue_batch = 3;
  bulk.dequeue_batch = 2;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto a = run_seeded<q_mpmc>(scalar, seed);
    const auto b = run_seeded<q_mpmc>(bulk, seed);
    ASSERT_EQ(a.dequeued_sorted, b.dequeued_sorted) << "seed " << seed;
  }
}

// The shard fabric against the scalar queues: same two-producer program,
// same multiset out. The fabric is a composition (one FFQ^s per producer
// + a consumer-side scheduler), not a single queue, so it is not
// linearizable to one FIFO — linearizability checking is off for its
// runs and agreement is on the multiset plus the per-stream oracles the
// harness already enforced. Both fabric modes must agree with FFQ^m and
// with each other, scalar and bulk paths alike.
TEST(Differential, ShardFabricAgreesWithMpmcOnMultiset) {
  auto cfg = shape(2, 2, 8);
  cfg.check_linearizability = false;  // sharded: not one FIFO by design
  auto bulk = cfg;
  bulk.enqueue_batch = 3;
  bulk.dequeue_batch = 2;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto m = run_seeded<q_mpmc>(cfg, seed);
    const auto f = run_seeded<q_shard>(cfg, seed);
    const auto o = run_seeded<q_shard_ord>(cfg, seed);
    const auto fb = run_seeded<q_shard>(bulk, seed);
    const auto ob = run_seeded<q_shard_ord>(bulk, seed);
    ASSERT_EQ(m.dequeued_sorted, f.dequeued_sorted) << "seed " << seed;
    ASSERT_EQ(m.dequeued_sorted, o.dequeued_sorted) << "seed " << seed;
    ASSERT_EQ(m.dequeued_sorted, fb.dequeued_sorted) << "seed " << seed;
    ASSERT_EQ(m.dequeued_sorted, ob.dequeued_sorted) << "seed " << seed;
  }
}

// With one producer the fabric degenerates to a single FFQ^s shard and
// both fabric modes become strict FIFOs: a single consumer must see the
// exact SPSC stream, and the ordered merge must not perturb it.
TEST(Differential, SingleProducerFabricIsExactlyFifo) {
  auto cfg = shape(1, 1, 10);
  cfg.check_linearizability = false;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto a = run_seeded<q_spsc>(cfg, seed);
    const auto f = run_seeded<q_shard>(cfg, seed);
    const auto o = run_seeded<q_shard_ord>(cfg, seed);
    ASSERT_EQ(a.streams, f.streams) << "seed " << seed;
    ASSERT_EQ(a.streams, o.streams) << "seed " << seed;
  }
}

// The waitable wrapper must be transparent: same program, same seed,
// same stream as the raw SPSC queue underneath (its wake-signal windows
// add yield points, so the schedules differ — the output must not).
TEST(Differential, WaitableWrapperIsTransparentOverSpsc) {
  auto cfg = shape(1, 1, 10);
  cfg.enqueue_batch = 2;
  cfg.dequeue_batch = 3;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto a = run_seeded<q_spsc>(cfg, seed);
    const auto b = run_seeded<q_wait>(cfg, seed);
    ASSERT_EQ(a.streams, b.streams) << "seed " << seed;
  }
}
