// Common battery for the MPMC baseline queues: MS-queue, CC-Queue, LCRQ,
// WFQueue, Vyukov, HTM-queue. Each queue exposes a slightly different
// API (per-thread handles, try- vs blocking ops, bounded vs unbounded);
// a small driver shim per queue normalizes that for the shared checks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ffq/baselines/baselines.hpp"

using namespace ffq::baselines;

// ---------------------------------------------------------------------------
// Driver shims.
// ---------------------------------------------------------------------------

struct ms_driver {
  using queue = ms_queue<std::uint64_t>;
  static constexpr bool kBounded = false;
  struct ctx {};
  static queue* make() { return new queue(); }
  static ctx make_ctx(queue&, int) { return {}; }
  static void enqueue(queue& q, ctx&, std::uint64_t v) { q.enqueue(v); }
  static bool try_dequeue(queue& q, ctx&, std::uint64_t& out) {
    return q.try_dequeue(out);
  }
};

struct cc_driver {
  using queue = cc_queue<std::uint64_t>;
  static constexpr bool kBounded = false;
  using ctx = cc_queue<std::uint64_t>::handle;
  static queue* make() { return new queue(); }
  static ctx make_ctx(queue& q, int) { return ctx(q); }
  static void enqueue(queue& q, ctx& c, std::uint64_t v) { q.enqueue(c, v); }
  static bool try_dequeue(queue& q, ctx& c, std::uint64_t& out) {
    return q.try_dequeue(c, out);
  }
};

struct lcrq_driver {
  using queue = lcrq_queue;
  static constexpr bool kBounded = false;
  struct ctx {};
  static queue* make() { return new queue(/*ring_size=*/64); }
  static ctx make_ctx(queue&, int) { return {}; }
  static void enqueue(queue& q, ctx&, std::uint64_t v) { q.enqueue(v); }
  static bool try_dequeue(queue& q, ctx&, std::uint64_t& out) {
    return q.try_dequeue(out);
  }
};

struct wf_driver {
  using queue = wf_queue;
  static constexpr bool kBounded = false;
  using ctx = wf_queue::handle;
  static queue* make() { return new queue(); }
  static ctx make_ctx(queue& q, int) { return ctx(q); }
  static void enqueue(queue& q, ctx& c, std::uint64_t v) { q.enqueue(c, v); }
  static bool try_dequeue(queue& q, ctx& c, std::uint64_t& out) {
    return q.try_dequeue(c, out);
  }
};

struct vyukov_driver {
  using queue = vyukov_mpmc_queue<std::uint64_t>;
  static constexpr bool kBounded = true;
  struct ctx {};
  static queue* make() { return new queue(1024); }
  static ctx make_ctx(queue&, int) { return {}; }
  static void enqueue(queue& q, ctx&, std::uint64_t v) { q.enqueue(v); }
  static bool try_dequeue(queue& q, ctx&, std::uint64_t& out) {
    return q.try_dequeue(out);
  }
};

struct htm_driver {
  using queue = htm_queue<std::uint64_t>;
  static constexpr bool kBounded = true;
  using ctx = htm_queue<std::uint64_t>::handle;
  static queue* make() { return new queue(1024); }
  static ctx make_ctx(queue& q, int id) {
    return q.make_handle(static_cast<std::uint64_t>(id) + 1);
  }
  static void enqueue(queue& q, ctx& c, std::uint64_t v) {
    while (!q.try_enqueue(c, v)) std::this_thread::yield();
  }
  static bool try_dequeue(queue& q, ctx& c, std::uint64_t& out) {
    return q.try_dequeue(c, out);
  }
};

// ---------------------------------------------------------------------------
// Battery.
// ---------------------------------------------------------------------------

template <typename D>
class MpmcBaseline : public ::testing::Test {};

using Drivers = ::testing::Types<ms_driver, cc_driver, lcrq_driver, wf_driver,
                                 vyukov_driver, htm_driver>;
TYPED_TEST_SUITE(MpmcBaseline, Drivers);

TYPED_TEST(MpmcBaseline, EmptyDequeueFails) {
  std::unique_ptr<typename TypeParam::queue> q(TypeParam::make());
  auto c = TypeParam::make_ctx(*q, 0);
  std::uint64_t out;
  EXPECT_FALSE(TypeParam::try_dequeue(*q, c, out));
  EXPECT_FALSE(TypeParam::try_dequeue(*q, c, out));
}

TYPED_TEST(MpmcBaseline, SingleThreadFifo) {
  std::unique_ptr<typename TypeParam::queue> q(TypeParam::make());
  auto c = TypeParam::make_ctx(*q, 0);
  for (std::uint64_t i = 1; i <= 100; ++i) TypeParam::enqueue(*q, c, i);
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(TypeParam::try_dequeue(*q, c, out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(TypeParam::try_dequeue(*q, c, out));
}

TYPED_TEST(MpmcBaseline, AlternatingEnqueueDequeueWrapsBuffers) {
  std::unique_ptr<typename TypeParam::queue> q(TypeParam::make());
  auto c = TypeParam::make_ctx(*q, 0);
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 5000; ++i) {
    TypeParam::enqueue(*q, c, i);
    ASSERT_TRUE(TypeParam::try_dequeue(*q, c, out));
    ASSERT_EQ(out, i);
  }
}

namespace {
constexpr std::uint64_t tag(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 48) | (seq + 1);  // +1 keeps 0 out (HTM default T{})
}
constexpr std::uint64_t tag_prod(std::uint64_t t) { return t >> 48; }
constexpr std::uint64_t tag_seq(std::uint64_t t) {
  return (t & ((1ULL << 48) - 1)) - 1;
}
}  // namespace

TYPED_TEST(MpmcBaseline, ConcurrentConservationAndPerProducerFifo) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 20000;

  std::unique_ptr<typename TypeParam::queue> q(TypeParam::make());
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<int> producers_done{0};
  std::atomic<bool> order_ok{true};
  std::vector<std::atomic<std::uint8_t>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto c = TypeParam::make_ctx(*q, p);
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        TypeParam::enqueue(*q, c, tag(static_cast<std::uint64_t>(p), s));
      }
      producers_done.fetch_add(1);
    });
  }
  for (int cid = 0; cid < kConsumers; ++cid) {
    threads.emplace_back([&, cid] {
      auto c = TypeParam::make_ctx(*q, kProducers + cid);
      std::int64_t last[kProducers];
      for (auto& l : last) l = -1;
      std::uint64_t out;
      for (;;) {
        if (TypeParam::try_dequeue(*q, c, out)) {
          const auto p = tag_prod(out);
          const auto s = tag_seq(out);
          if (static_cast<std::int64_t>(s) <= last[p]) order_ok.store(false);
          last[p] = static_cast<std::int64_t>(s);
          if (seen[p * kPerProducer + s].fetch_add(1) != 0) order_ok.store(false);
          consumed.fetch_add(1);
        } else if (producers_done.load() == kProducers) {
          if (!TypeParam::try_dequeue(*q, c, out)) return;
          const auto p = tag_prod(out);
          const auto s = tag_seq(out);
          if (static_cast<std::int64_t>(s) <= last[p]) order_ok.store(false);
          last[p] = static_cast<std::int64_t>(s);
          if (seen[p * kPerProducer + s].fetch_add(1) != 0) order_ok.store(false);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // A consumer may exit while a sibling consumer still holds items? No —
  // items only leave via try_dequeue, and every dequeued item is counted
  // before the next loop iteration. But consumers can exit while other
  // consumers are mid-count, so re-drain here to be safe.
  {
    auto c = TypeParam::make_ctx(*q, 99);
    std::uint64_t out;
    while (TypeParam::try_dequeue(*q, c, out)) {
      const auto p = tag_prod(out);
      const auto s = tag_seq(out);
      if (seen[p * kPerProducer + s].fetch_add(1) != 0) order_ok.store(false);
      consumed.fetch_add(1);
    }
  }

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_TRUE(order_ok.load());
  for (auto& s : seen) {
    ASSERT_EQ(s.load(), 1u) << "lost or duplicated item";
  }
}

// LCRQ-specific: ring closing and linking (tiny rings force it).
TEST(Lcrq, ClosesAndLinksRings) {
  lcrq_queue q(/*ring_size=*/2);
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 100; ++i) q.enqueue(i);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(q.try_dequeue(out));
    ASSERT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_dequeue(out));
}

// WFQueue-specific: segment allocation and reclamation over a long stream.
TEST(WfQueue, SegmentsAreRecycled) {
  wf_queue q;
  auto h = q.make_handle();
  std::uint64_t out;
  constexpr std::uint64_t kItems = wf_queue::kSegmentCells * 20;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    q.enqueue(h, i);
    ASSERT_TRUE(q.try_dequeue(h, out));
    ASSERT_EQ(out, i);
  }
  EXPECT_GE(q.segments_allocated(), 20u);
  EXPECT_GT(q.segments_freed(), 0u) << "reclamation must keep memory bounded";
  EXPECT_LT(q.segments_allocated() - q.segments_freed(), 5u);
}

// HTM-specific: per-handle transaction statistics accumulate.
TEST(HtmQueueBaseline, TracksTransactionStats) {
  htm_queue<std::uint64_t> q(64);
  auto h = q.make_handle(7);
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(q.try_enqueue(h, i));
    ASSERT_TRUE(q.try_dequeue(h, out));
  }
  EXPECT_EQ(h.stats().attempts, 100u);
  EXPECT_EQ(h.stats().commits + h.stats().fallbacks, 100u);
}

// Vyukov-specific: full ring reports full, frees after dequeue.
TEST(VyukovQueue, BoundedSemantics) {
  vyukov_mpmc_queue<std::uint64_t> q(4);
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(5));
  std::uint64_t out;
  EXPECT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(q.try_enqueue(5));
}
