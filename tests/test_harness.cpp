// Tests for the benchmark harness: stats, tables, CLI parsing, the
// pairwise driver, and the §V-A SPMC micro-benchmark (integration-level:
// these spin up real queues and threads and validate that the harness
// terminates and reports sane numbers).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ffq/harness/driver.hpp"
#include "ffq/harness/pairwise.hpp"
#include "ffq/harness/report.hpp"
#include "ffq/harness/spmc_bench.hpp"
#include "ffq/harness/stats.hpp"

using namespace ffq::harness;

TEST(Stats, SummarizeBasics) {
  auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(s.runs, 4u);
}

TEST(Stats, SummarizeSingleAndEmpty) {
  auto one = summarize({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  auto none = summarize({});
  EXPECT_EQ(none.runs, 0u);
}

TEST(Stats, HumanRate) {
  EXPECT_EQ(human_rate(1.25e9), "1.25G");
  EXPECT_EQ(human_rate(3.5e6), "3.50M");
  EXPECT_EQ(human_rate(9.0e3), "9.00k");
  EXPECT_EQ(human_rate(12.0), "12.00");
}

TEST(Report, TableAlignsAndCountsRows) {
  table t({"queue", "threads", "Mops"});
  t.add_row({"ffq", "1", "120.5"});
  t.add_row({"msqueue", "8", "3.2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("ffq"), std::string::npos);
  EXPECT_NE(s.find("msqueue"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, CsvRoundTrip) {
  table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = "/tmp/ffq_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

// Golden-file test for the "ffq.report.v1" JSON export: byte-for-byte
// stable output is the contract that makes downstream tooling (and this
// repo's committed BENCH_*.json artifacts) diffable. The fixture covers
// the sharp edges: numeric-vs-string cell detection, full RFC 8259
// escaping (quotes, backslashes, \n, \t), and an embedded
// "ffq.metrics.v1" snapshot whose std::map backing guarantees sorted,
// deterministic key order.
TEST(Report, JsonMatchesGoldenFile) {
  table t({"queue", "ops", "note"});
  t.add_row({"ffq-spsc", "1.68", "plain"});
  t.add_row({"weird \"name\"\\path", "nan", "line1\nline2\ttab"});

  ffq::telemetry::metrics_snapshot snap;
  // Inserted out of order on purpose: the export must sort.
  snap.counters["queue.ffq-spsc/gaps_created"] = 4;
  snap.counters["queue.ffq-spsc/consumer_skips"] = 4;
  snap.histograms["syscall.native.e2e_ns"] =
      ffq::telemetry::histogram_summary{1000, 2500, 310, 290, 420, 1100, 2500};
  snap.perf["cycles"] = 123456789;

  const std::string path = "/tmp/ffq_test_report_golden.json";
  ASSERT_TRUE(t.write_json(path, "telemetry golden", &snap));
  const std::string produced = slurp(path);
  const std::string golden = slurp(std::string(FFQ_GOLDEN_DIR) +
                                   "/report_v1.json");
  ASSERT_FALSE(golden.empty()) << "golden file missing";
  EXPECT_EQ(produced, golden)
      << "report JSON drifted from tests/golden/report_v1.json; if the "
         "schema changed intentionally, bump kReportSchema and regenerate";
  std::filesystem::remove(path);
}

TEST(Report, JsonEscapesControlCharactersInCells) {
  table t({"k"});
  t.add_row({std::string{'a', '\x01', 'b', '\x1f'} + "\b\f\r"});
  const std::string path = "/tmp/ffq_test_report_esc.json";
  ASSERT_TRUE(t.write_json(path, "esc"));
  const std::string s = slurp(path);
  EXPECT_NE(s.find("\\u0001"), std::string::npos);
  EXPECT_NE(s.find("\\u001f"), std::string::npos);
  EXPECT_NE(s.find("\\b\\f\\r"), std::string::npos);
  // No raw control bytes may survive into the file.
  for (char c : s) EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);
  std::filesystem::remove(path);
}

TEST(Report, JsonWithoutMetricsOmitsTheKey) {
  table t({"a"});
  t.add_row({"1"});
  const std::string path = "/tmp/ffq_test_report_nometrics.json";
  ASSERT_TRUE(t.write_json(path, "none"));
  const std::string s = slurp(path);
  EXPECT_NE(s.find("\"schema\": \"ffq.report.v1\""), std::string::npos);
  EXPECT_EQ(s.find("\"metrics\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Report, CliParsing) {
  const char* argv[] = {"bench", "--csv", "/tmp/x.csv", "--runs", "5",
                        "--scale", "0.5", "--metrics", "/tmp/m.json"};
  auto cli = bench_cli::parse(9, const_cast<char**>(argv));
  EXPECT_EQ(cli.csv_path, "/tmp/x.csv");
  EXPECT_EQ(cli.metrics_path, "/tmp/m.json");
  EXPECT_EQ(cli.runs, 5);
  EXPECT_DOUBLE_EQ(cli.scale, 0.5);
  const char* argv2[] = {"bench", "--quick"};
  auto quick = bench_cli::parse(2, const_cast<char**>(argv2));
  EXPECT_LE(quick.runs, 3);
  EXPECT_LT(quick.scale, 1.0);
}

TEST(Driver, ThinkOverheadIsNearTheRequestedMean) {
  const double ns = measure_think_overhead_ns(50, 150, 5000);
  // Mean request is 100 ns; allow generous slack for draw overhead and
  // container noise, but it must be the right order of magnitude.
  EXPECT_GT(ns, 60.0);
  EXPECT_LT(ns, 2000.0);
}

// --- pairwise driver over a few representative adapters --------------------

template <typename Adapter>
void smoke_pairwise(int threads) {
  pairwise_config cfg;
  cfg.threads = threads;
  cfg.total_pairs = 20000;
  cfg.think_min_ns = 0;  // fast test
  cfg.params.capacity = 1 << 10;
  const double ops = run_pairwise_once<Adapter>(cfg);
  EXPECT_GT(ops, 1000.0) << "implausibly slow — likely a stall";
}

TEST(Pairwise, FfqMpmcSingleThread) { smoke_pairwise<ffq_mpmc_adapter<>>(1); }
TEST(Pairwise, FfqMpmcFourThreads) { smoke_pairwise<ffq_mpmc_adapter<>>(4); }
TEST(Pairwise, FfqSpscSingleThread) { smoke_pairwise<ffq_spsc_adapter<>>(1); }
TEST(Pairwise, MsQueueTwoThreads) { smoke_pairwise<ms_adapter>(2); }
TEST(Pairwise, CcQueueTwoThreads) { smoke_pairwise<cc_adapter>(2); }
TEST(Pairwise, LcrqTwoThreads) { smoke_pairwise<lcrq_adapter>(2); }
TEST(Pairwise, WfQueueTwoThreads) { smoke_pairwise<wf_adapter>(2); }
TEST(Pairwise, VyukovTwoThreads) { smoke_pairwise<vyukov_adapter>(2); }
TEST(Pairwise, HtmTwoThreads) { smoke_pairwise<htm_adapter>(2); }

TEST(Pairwise, WithThinkTimeStillTerminates) {
  pairwise_config cfg;
  cfg.threads = 2;
  cfg.total_pairs = 5000;
  cfg.think_min_ns = 50;
  cfg.think_max_ns = 150;
  const double ops = run_pairwise_once<ffq_mpmc_adapter<>>(cfg);
  EXPECT_GT(ops, 100.0);
}

TEST(Pairwise, MultiRunSummary) {
  pairwise_config cfg;
  cfg.threads = 2;
  cfg.total_pairs = 10000;
  cfg.think_min_ns = 0;
  auto stats = run_pairwise<ffq_mpmc_adapter<>>(cfg, 3);
  EXPECT_EQ(stats.runs, 3u);
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_GE(stats.max, stats.min);
}

// --- §V-A SPMC micro-benchmark ---------------------------------------------

TEST(SpmcBench, SingleGroupSingleConsumer) {
  spmc_bench_config cfg;
  cfg.items_per_producer = 20000;
  cfg.submission_capacity = 1 << 10;
  cfg.response_capacity = 1 << 10;
  const double rt = run_spmc_bench_once<
      ffq::core::spmc_queue<std::uint64_t, ffq::core::layout_aligned>,
      ffq::core::layout_aligned>(cfg);
  EXPECT_GT(rt, 1000.0);
}

TEST(SpmcBench, FanOutFourConsumers) {
  spmc_bench_config cfg;
  cfg.consumers_per_group = 4;
  cfg.items_per_producer = 10000;
  const double rt = run_spmc_bench_once<
      ffq::core::spmc_queue<std::uint64_t, ffq::core::layout_aligned>,
      ffq::core::layout_aligned>(cfg);
  EXPECT_GT(rt, 100.0);
}

TEST(SpmcBench, MpmcVariantAndTwoGroups) {
  spmc_bench_config cfg;
  cfg.groups = 2;
  cfg.consumers_per_group = 2;
  cfg.items_per_producer = 10000;
  const double rt = run_spmc_bench_once<
      ffq::core::mpmc_queue<std::uint64_t, ffq::core::layout_compact>,
      ffq::core::layout_compact>(cfg);
  EXPECT_GT(rt, 100.0);
}

TEST(SpmcBench, AffinityPoliciesAllTerminate) {
  using ffq::runtime::placement_policy;
  for (auto policy : {placement_policy::same_ht, placement_policy::sibling_ht,
                      placement_policy::other_core, placement_policy::none}) {
    spmc_bench_config cfg;
    cfg.items_per_producer = 5000;
    cfg.policy = policy;
    const double rt = run_spmc_bench_once<
        ffq::core::spmc_queue<std::uint64_t, ffq::core::layout_aligned>,
        ffq::core::layout_aligned>(cfg);
    EXPECT_GT(rt, 100.0) << ffq::runtime::to_string(policy);
  }
}

TEST(SpmcBench, TinyQueuesExerciseFlowControl) {
  spmc_bench_config cfg;
  cfg.submission_capacity = 4;
  cfg.response_capacity = 4;
  cfg.consumers_per_group = 2;
  cfg.items_per_producer = 5000;
  const double rt = run_spmc_bench_once<
      ffq::core::spmc_queue<std::uint64_t, ffq::core::layout_aligned>,
      ffq::core::layout_aligned>(cfg);
  EXPECT_GT(rt, 10.0);
}
