#include "ffq/core/layout.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ffq/runtime/cacheline.hpp"

using namespace ffq::core;

TEST(Layout, RotateIndexIsAPermutation) {
  for (unsigned bits : {5u, 10u, 16u}) {
    const std::size_t n = std::size_t{1} << bits;
    std::set<std::size_t> seen;
    for (std::size_t i = 0; i < n; ++i) {
      const auto m = rotate_index(i, bits, 4);
      ASSERT_LT(m, n);
      seen.insert(m);
    }
    EXPECT_EQ(seen.size(), n) << "bits=" << bits;
  }
}

TEST(Layout, RotateIdentityWhenTooFewBits) {
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(rotate_index(i, 4, 4), i);
    EXPECT_EQ(rotate_index(i, 3, 4), i);
  }
}

TEST(Layout, RandomizedPlacesConsecutiveSlotsSixteenApart) {
  // Paper §IV-A: "we rotate the bits of the index by 4, effectively
  // placing two consecutive cells 16 positions apart in memory".
  constexpr unsigned bits = 10;
  for (std::size_t i = 0; i + 1 < (1u << (bits - 4)); ++i) {
    const auto a = layout_randomized::map(i, bits);
    const auto b = layout_randomized::map(i + 1, bits);
    EXPECT_EQ(b - a, 16u) << "i=" << i;
  }
}

TEST(Layout, PoliciesDeclareAlignment) {
  EXPECT_FALSE(layout_compact::kCacheAligned);
  EXPECT_TRUE(layout_aligned::kCacheAligned);
  EXPECT_FALSE(layout_randomized::kCacheAligned);
  EXPECT_TRUE(layout_aligned_randomized::kCacheAligned);
}

TEST(Layout, IdentityPoliciesMapToSelf) {
  for (std::size_t i : {0u, 1u, 17u, 1023u}) {
    EXPECT_EQ(layout_compact::map(i, 10), i);
    EXPECT_EQ(layout_aligned::map(i, 10), i);
  }
}

TEST(CapacityInfo, ValidatesPowersOfTwo) {
  EXPECT_TRUE(capacity_info::valid(2));
  EXPECT_TRUE(capacity_info::valid(64));
  EXPECT_TRUE(capacity_info::valid(1 << 20));
  EXPECT_FALSE(capacity_info::valid(0));
  EXPECT_FALSE(capacity_info::valid(1));
  EXPECT_FALSE(capacity_info::valid(3));
  EXPECT_FALSE(capacity_info::valid(100));
}

TEST(CapacityInfo, SlotWrapsModuloCapacity) {
  capacity_info cap(64);
  EXPECT_EQ(cap.size(), 64u);
  EXPECT_EQ(cap.mask(), 63u);
  EXPECT_EQ(cap.log2(), 6u);
  EXPECT_EQ(cap.slot<layout_compact>(0), 0u);
  EXPECT_EQ(cap.slot<layout_compact>(64), 0u);
  EXPECT_EQ(cap.slot<layout_compact>(65), 1u);
  EXPECT_EQ(cap.slot<layout_compact>(130), 2u);
}

TEST(CapacityInfo, RandomizedSlotStaysInRangeAndIsBijective) {
  capacity_info cap(256);
  std::set<std::size_t> seen;
  for (std::int64_t r = 0; r < 256; ++r) {
    const auto s = cap.slot<layout_randomized>(r);
    ASSERT_LT(s, 256u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 256u);
  // Wrap-around hits the same physical slots again.
  EXPECT_EQ(cap.slot<layout_randomized>(256), cap.slot<layout_randomized>(0));
}

TEST(CapacityInfo, RandomizedNeighborsInDistinctCacheLines) {
  // With 24-byte compact cells, slots 16 apart are >= 384 bytes apart —
  // always distinct lines. Verify the distance claim at the slot level.
  capacity_info cap(1024);
  const auto s0 = cap.slot<layout_randomized>(100);
  const auto s1 = cap.slot<layout_randomized>(101);
  constexpr std::size_t kCellBytes = 24;
  EXPECT_GE((s1 > s0 ? s1 - s0 : s0 - s1) * kCellBytes,
            ffq::runtime::kCacheLineSize);
}
