#include "ffq/runtime/cacheline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace rt = ffq::runtime;

TEST(Cacheline, RoundUpToLine) {
  EXPECT_EQ(rt::round_up_to_line(0), 0u);
  EXPECT_EQ(rt::round_up_to_line(1), rt::kCacheLineSize);
  EXPECT_EQ(rt::round_up_to_line(rt::kCacheLineSize), rt::kCacheLineSize);
  EXPECT_EQ(rt::round_up_to_line(rt::kCacheLineSize + 1), 2 * rt::kCacheLineSize);
}

TEST(Cacheline, SameCacheLinePredicate) {
  EXPECT_TRUE(rt::same_cache_line(0, rt::kCacheLineSize - 1));
  EXPECT_FALSE(rt::same_cache_line(rt::kCacheLineSize - 1, rt::kCacheLineSize));
  EXPECT_TRUE(rt::same_cache_line(2 * rt::kCacheLineSize, 2 * rt::kCacheLineSize + 8));
}

TEST(Cacheline, PaddedOccupiesWholeLines) {
  EXPECT_EQ(sizeof(rt::padded<std::uint8_t>) % rt::kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(rt::padded<std::uint64_t>), rt::kCacheLineSize);
  EXPECT_EQ(alignof(rt::padded<std::uint64_t>), rt::kCacheLineSize);
  struct big {
    char b[100];
  };
  EXPECT_EQ(sizeof(rt::padded<big>) % rt::kCacheLineSize, 0u);
  EXPECT_GE(sizeof(rt::padded<big>), sizeof(big));
}

TEST(Cacheline, PaddedNeighborsDoNotShareALine) {
  rt::padded<std::uint64_t> arr[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
  EXPECT_FALSE(rt::same_cache_line(a, b));
}

TEST(Cacheline, PaddedAccessors) {
  rt::padded<int> p{41};
  EXPECT_EQ(*p, 41);
  *p = 7;
  EXPECT_EQ(p.value, 7);
  const rt::padded<int>& cp = p;
  EXPECT_EQ(*cp, 7);
}

TEST(Cacheline, PaddedInPlaceConstructsAtomics) {
  rt::padded<std::atomic<int>> a{5};
  EXPECT_EQ(a->load(), 5);
  a->store(9);
  EXPECT_EQ(a->load(), 9);
}
