// Tests for the SGX-enclave simulation and the asynchronous syscall
// service (the Fig. 7 substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <thread>

#include "ffq/runtime/timing.hpp"
#include "ffq/sgxsim/enclave.hpp"
#include "ffq/sgxsim/syscall_service.hpp"

using namespace ffq::sgxsim;

TEST(Enclave, TransitionsAreChargedAndCounted) {
  enclave_cost_model cost;
  cost.transition_cycles = 50000;  // big enough to measure reliably
  cost.inside_op_cycles = 0;
  std::atomic<std::uint64_t> counter{0};
  enclave_thread e(cost, &counter);

  const auto t0 = ffq::runtime::rdtsc();
  e.eenter();
  e.eexit();
  const auto dt = ffq::runtime::rdtsc() - t0;
  EXPECT_GE(dt, 2 * cost.transition_cycles);
  EXPECT_EQ(e.transitions(), 2u);
  EXPECT_EQ(counter.load(), 2u);
  EXPECT_FALSE(e.inside());
}

TEST(Enclave, OcallRoundTripsAndReturnsValue) {
  enclave_cost_model cost;
  cost.transition_cycles = 1000;
  enclave_thread e(cost);
  e.eenter();
  ASSERT_TRUE(e.inside());
  const int v = e.ocall([] { return 42; });
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(e.inside()) << "ocall must re-enter";
  EXPECT_EQ(e.transitions(), 3u);  // enter + (exit+enter)
}

TEST(Enclave, InsideOpChargeOnlyApplliesInside) {
  enclave_cost_model cost;
  cost.transition_cycles = 0;
  cost.inside_op_cycles = 20000;
  enclave_thread e(cost);
  const auto t0 = ffq::runtime::rdtsc();
  e.charge_inside_op();  // outside: free
  const auto outside = ffq::runtime::rdtsc() - t0;
  e.eenter();
  const auto t1 = ffq::runtime::rdtsc();
  e.charge_inside_op();
  const auto inside = ffq::runtime::rdtsc() - t1;
  EXPECT_GE(inside, cost.inside_op_cycles);
  EXPECT_LT(outside, cost.inside_op_cycles);
}

namespace {
service_config small_cfg(service_variant v, int apps = 1, int oss = 1) {
  service_config cfg;
  cfg.variant = v;
  cfg.app_threads = apps;
  cfg.os_threads = oss;
  cfg.calls_per_thread = 1000;
  cfg.queue_capacity = 1 << 8;
  // Cheap transitions so the test exercises structure, not spin time.
  cfg.cost.transition_cycles = 500;
  cfg.cost.inside_op_cycles = 50;
  return cfg;
}
}  // namespace

TEST(SyscallService, NativeVariantRuns) {
  const auto r = run_syscall_service(small_cfg(service_variant::native, 2));
  EXPECT_EQ(r.total_calls, 2000u);
  EXPECT_GT(r.calls_per_sec, 1000.0);
  EXPECT_GT(r.avg_latency_cycles, 0.0);
  EXPECT_EQ(r.enclave_transitions, 0u);
}

TEST(SyscallService, SyncVariantPaysTwoTransitionsPerCall) {
  const auto r = run_syscall_service(small_cfg(service_variant::sgx_sync, 1));
  EXPECT_EQ(r.total_calls, 1000u);
  // enter + per-call (exit+enter) + final exit = 2 + 2*calls.
  EXPECT_EQ(r.enclave_transitions, 2u + 2u * 1000u);
}

TEST(SyscallService, FfqVariantCompletesAllCalls) {
  const auto r = run_syscall_service(small_cfg(service_variant::sgx_ffq, 2, 2));
  EXPECT_EQ(r.total_calls, 2000u);
  EXPECT_GT(r.calls_per_sec, 100.0);
  // Async design: only thread start/stop transitions (2 per app thread).
  EXPECT_EQ(r.enclave_transitions, 4u);
}

TEST(SyscallService, FfqVariantWithConsumerFanOut) {
  // More OS threads than app threads: multiple consumers per SPMC queue.
  const auto r = run_syscall_service(small_cfg(service_variant::sgx_ffq, 1, 3));
  EXPECT_EQ(r.total_calls, 1000u);
}

TEST(SyscallService, FfqVariantClampsMissingExecutors) {
  // os_threads < app_threads would strand a submission queue; the service
  // must clamp up rather than deadlock.
  const auto r = run_syscall_service(small_cfg(service_variant::sgx_ffq, 3, 1));
  EXPECT_EQ(r.total_calls, 3000u);
}

TEST(SyscallService, MpmcVariantCompletesAllCalls) {
  const auto r = run_syscall_service(small_cfg(service_variant::sgx_mpmc, 2, 2));
  EXPECT_EQ(r.total_calls, 2000u);
  EXPECT_GT(r.calls_per_sec, 100.0);
}

TEST(SyscallService, AsyncBeatsSyncOnThroughput) {
  // The architectural claim behind the whole framework: with realistic
  // transition costs, queue-based async syscalls beat exit/re-enter.
  // Kept at 1 app + 1 executor so the comparison is not confounded by
  // oversubscription on a 2-core CI box (the paper's machines give each
  // thread its own hardware thread).
  // Transition cost at the paper's upper quote (50k cycles, §II on Lynx):
  // in sandboxed CI environments the raw syscall itself costs ~10 us,
  // which would otherwise drown the 6k-cycle typical EENTER/EEXIT cost.
  // The async design's premise is that the app thread and the executor
  // run in parallel (the paper gives each thread its own hardware
  // thread). With a single hardware thread every queue round trip
  // crosses a scheduler context switch while the sync variant just burns
  // its simulated transition cost in-thread, so the comparison is
  // meaningless — skip rather than assert an architectural falsehood.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "async-vs-sync throughput needs >= 2 hardware threads, "
                    "have " << std::thread::hardware_concurrency();
  }
  auto sync_cfg = small_cfg(service_variant::sgx_sync, 1);
  sync_cfg.cost.transition_cycles = 50000;
  sync_cfg.calls_per_thread = 3000;
  auto ffq_cfg = small_cfg(service_variant::sgx_ffq, 1, 1);
  ffq_cfg.cost.transition_cycles = 50000;
  ffq_cfg.calls_per_thread = 3000;
  // Wall-clock throughput on a shared CI box is noisy even with the test
  // marked RUN_SERIAL (see tests/CMakeLists.txt): compare medians of three
  // interleaved runs per variant, and demand only that async is not
  // slower beyond the tolerance — the architectural gap at 50k-cycle
  // transitions is ~2x, so a genuine regression still trips this.
  constexpr double kTolerance = 0.9;
  auto median3 = [](std::array<double, 3> s) {
    std::sort(s.begin(), s.end());
    return s[1];
  };
  std::array<double, 3> sync_runs, ffq_runs;
  for (int attempt = 0; attempt < 3; ++attempt) {
    sync_runs[attempt] = run_syscall_service(sync_cfg).calls_per_sec;
    ffq_runs[attempt] = run_syscall_service(ffq_cfg).calls_per_sec;
  }
  const double sync_med = median3(sync_runs);
  const double ffq_med = median3(ffq_runs);
  EXPECT_GT(ffq_med, kTolerance * sync_med)
      << "ffq median " << ffq_med << " vs sync median " << sync_med;
}

TEST(SyscallService, VariantNames) {
  EXPECT_STREQ(to_string(service_variant::native), "native");
  EXPECT_STREQ(to_string(service_variant::sgx_sync), "sgx-sync");
  EXPECT_STREQ(to_string(service_variant::sgx_ffq), "sgx-ffq");
  EXPECT_STREQ(to_string(service_variant::sgx_mpmc), "sgx-mpmc");
}
