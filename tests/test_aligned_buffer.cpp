#include "ffq/runtime/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace rt = ffq::runtime;

TEST(AlignedBuffer, StorageAlignmentHonored) {
  rt::aligned_storage_buffer buf(1000, 4096);
  ASSERT_TRUE(static_cast<bool>(buf));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.size_bytes(), 1000u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  rt::aligned_storage_buffer a(64, 64);
  void* p = a.data();
  rt::aligned_storage_buffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(static_cast<bool>(a));
  rt::aligned_storage_buffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(AlignedArray, ConstructsAndIndexes) {
  rt::aligned_array<int> arr(17);
  EXPECT_EQ(arr.size(), 17u);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr[i], 0);  // value-initialized
    arr[i] = static_cast<int>(i);
  }
  EXPECT_EQ(arr[16], 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr.data()) % rt::kCacheLineSize, 0u);
}

TEST(AlignedArray, HoldsNonMovableTypes) {
  rt::aligned_array<std::atomic<std::int64_t>> arr(8);
  arr[3].store(42);
  EXPECT_EQ(arr[3].load(), 42);
}

namespace {
struct counted {
  static int live;
  counted() { ++live; }
  ~counted() { --live; }
};
int counted::live = 0;
}  // namespace

TEST(AlignedArray, DestroysAllElements) {
  {
    rt::aligned_array<counted> arr(25);
    EXPECT_EQ(counted::live, 25);
  }
  EXPECT_EQ(counted::live, 0);
}

TEST(AlignedArray, MoveAssignDestroysOldContents) {
  rt::aligned_array<counted> a(5);
  {
    rt::aligned_array<counted> b(3);
    EXPECT_EQ(counted::live, 8);
    a = std::move(b);
    EXPECT_EQ(counted::live, 3);
  }
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(counted::live, 3);
}
