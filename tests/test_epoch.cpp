// Tests for epoch-based reclamation.
#include "ffq/runtime/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rt = ffq::runtime;

namespace {
struct tracked {
  static std::atomic<int> live;
  int v = 0;
  explicit tracked(int x = 0) : v(x) { live.fetch_add(1); }
  ~tracked() { live.fetch_sub(1); }
};
std::atomic<int> tracked::live{0};
}  // namespace

TEST(Epoch, AdvancesWhenAllQuiescent) {
  rt::epoch_domain dom;
  const auto e0 = dom.current_epoch();
  EXPECT_TRUE(dom.try_advance());
  EXPECT_EQ(dom.current_epoch(), e0 + 1);
}

TEST(Epoch, PinnedStragglerBlocksAdvance) {
  rt::epoch_domain dom;
  auto& rec = dom.attach();
  EXPECT_TRUE(dom.try_advance());  // rec not pinned yet
  rec.pin();
  // rec pinned at the current epoch: one advance is allowed (nobody is
  // *behind*), but after it rec is a straggler.
  EXPECT_TRUE(dom.try_advance());
  EXPECT_FALSE(dom.try_advance()) << "pinned thread one epoch behind must block";
  rec.unpin();
  EXPECT_TRUE(dom.try_advance());
  dom.release(rec);
}

TEST(Epoch, RetiredObjectsFreeAfterTwoEpochs) {
  rt::epoch_domain dom;
  auto& rec = dom.attach();
  rec.pin();
  auto* p = new tracked(1);
  rec.retire(p);
  rec.unpin();
  EXPECT_EQ(tracked::live.load(), 1);
  // Advance twice, then reclaim.
  EXPECT_TRUE(dom.try_advance());
  EXPECT_TRUE(dom.try_advance());
  rec.reclaim_old();
  EXPECT_EQ(tracked::live.load(), 0);
  dom.release(rec);
}

TEST(Epoch, ObjectsNotFreedWhileEpochTooClose) {
  rt::epoch_domain dom;
  auto& rec = dom.attach();
  rec.pin();
  rec.retire(new tracked(2));
  rec.unpin();
  EXPECT_TRUE(dom.try_advance());  // only +1: too close
  rec.reclaim_old();
  EXPECT_EQ(tracked::live.load(), 1);
  EXPECT_TRUE(dom.try_advance());
  rec.reclaim_old();
  EXPECT_EQ(tracked::live.load(), 0);
  dom.release(rec);
}

TEST(Epoch, DomainDestructorDrains) {
  {
    rt::epoch_domain dom;
    auto& rec = dom.attach();
    rec.pin();
    rec.retire(new tracked(3));
    rec.unpin();
    dom.release(rec);
  }
  EXPECT_EQ(tracked::live.load(), 0);
}

TEST(Epoch, ConcurrentReadersNeverSeeFreedMemory) {
  rt::epoch_domain dom;
  std::atomic<tracked*> shared{new tracked(1)};
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto& rec = dom.attach();
      while (!stop.load(std::memory_order_acquire)) {
        rec.pin();
        tracked* p = shared.load(std::memory_order_acquire);
        if (p->v <= 0) bad.fetch_add(1);  // would be UAF garbage
        rec.unpin();
      }
      dom.release(rec);
    });
  }
  {
    auto& rec = dom.attach();
    for (int i = 2; i <= 2000; ++i) {
      auto* fresh = new tracked(i);
      tracked* old = shared.exchange(fresh);
      rec.pin();
      rec.retire(old);
      rec.unpin();
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    rec.retire(shared.load());
    dom.release(rec);
  }
  EXPECT_EQ(bad.load(), 0);
}
