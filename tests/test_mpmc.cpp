// Unit, property, and stress tests for ffq::core::mpmc_queue (Algorithm 2).
#include "ffq/core/mpmc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using ffq::core::mpmc_queue;

TEST(MpmcQueue, SingleThreadFifo) {
  mpmc_queue<int> q(16);
  for (int i = 0; i < 12; ++i) q.enqueue(i);
  int out;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(q.dequeue(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpmcQueue, WrapAroundKeepsFifo) {
  mpmc_queue<int> q(4);
  int out;
  for (int round = 0; round < 300; ++round) {
    q.enqueue(2 * round);
    q.enqueue(2 * round + 1);
    ASSERT_TRUE(q.dequeue(out));
    ASSERT_EQ(out, 2 * round);
    ASSERT_TRUE(q.dequeue(out));
    ASSERT_EQ(out, 2 * round + 1);
  }
}

TEST(MpmcQueue, CloseUnblocksConsumers) {
  mpmc_queue<int> q(16);
  std::atomic<int> drained{0};
  std::vector<std::thread> cs;
  for (int i = 0; i < 3; ++i) {
    cs.emplace_back([&] {
      int out;
      while (q.dequeue(out)) {
      }
      drained.fetch_add(1);
    });
  }
  q.enqueue(1);
  q.enqueue(2);
  q.close();
  for (auto& t : cs) t.join();
  EXPECT_EQ(drained.load(), 3);
}

TEST(MpmcQueue, DestructorReleasesUnconsumedItems) {
  auto counter = std::make_shared<int>(0);
  struct probe {
    std::shared_ptr<int> c;
    probe() = default;
    explicit probe(std::shared_ptr<int> s) : c(std::move(s)) { ++*c; }
    probe(probe&& o) noexcept = default;
    probe& operator=(probe&& o) noexcept = default;
    ~probe() {
      if (c) --*c;
    }
  };
  {
    mpmc_queue<probe> q(16);
    for (int i = 0; i < 7; ++i) q.enqueue(probe(counter));
    EXPECT_EQ(*counter, 7);
  }
  EXPECT_EQ(*counter, 0);
}

// ---------------------------------------------------------------------------
// Property sweep: P producers × C consumers. Invariants:
//  * conservation (count and checksum of all items),
//  * exactly-once (each tagged item seen exactly once),
//  * per-producer FIFO: for any consumer, items from one producer arrive
//    in that producer's enqueue order... NOTE: with multiple consumers
//    this only holds per consumer; the check below tracks, per consumer,
//    the last sequence number seen from each producer.
// ---------------------------------------------------------------------------

namespace {

/// Item tag: high bits producer id, low bits per-producer sequence.
constexpr std::uint64_t make_tag(std::uint64_t producer, std::uint64_t seq) {
  return (producer << 48) | seq;
}
constexpr std::uint64_t tag_producer(std::uint64_t t) { return t >> 48; }
constexpr std::uint64_t tag_seq(std::uint64_t t) { return t & ((1ULL << 48) - 1); }

}  // namespace

template <typename Layout>
void run_mpmc(std::size_t capacity, int producers, int consumers,
              std::uint64_t items_per_producer) {
  mpmc_queue<std::uint64_t, Layout> q(capacity);
  std::atomic<std::uint64_t> total_count{0};
  std::atomic<bool> order_ok{true};
  std::vector<std::atomic<std::uint8_t>> seen(
      static_cast<std::size_t>(producers) * items_per_producer);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);

  std::vector<std::thread> cs;
  for (int c = 0; c < consumers; ++c) {
    cs.emplace_back([&] {
      std::vector<std::int64_t> last_seq(producers, -1);
      std::uint64_t out;
      std::uint64_t count = 0;
      while (q.dequeue(out)) {
        const auto p = tag_producer(out);
        const auto s = tag_seq(out);
        if (static_cast<std::int64_t>(s) <= last_seq[p]) order_ok.store(false);
        last_seq[p] = static_cast<std::int64_t>(s);
        const std::size_t idx = p * items_per_producer + s;
        if (seen[idx].fetch_add(1, std::memory_order_relaxed) != 0) {
          order_ok.store(false);  // duplicate delivery
        }
        ++count;
      }
      total_count.fetch_add(count);
    });
  }

  std::vector<std::thread> ps;
  for (int p = 0; p < producers; ++p) {
    ps.emplace_back([&, p] {
      for (std::uint64_t s = 0; s < items_per_producer; ++s) {
        q.enqueue(make_tag(static_cast<std::uint64_t>(p), s));
      }
    });
  }
  for (auto& t : ps) t.join();
  q.close();
  for (auto& t : cs) t.join();

  EXPECT_EQ(total_count.load(), producers * items_per_producer);
  EXPECT_TRUE(order_ok.load());
  for (const auto& s : seen) {
    ASSERT_EQ(s.load(std::memory_order_relaxed), 1u) << "lost or duplicated item";
  }
}

class MpmcSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(MpmcSweep, Aligned) {
  auto [cap, producers, consumers] = GetParam();
  run_mpmc<ffq::core::layout_aligned>(cap, producers, consumers, 8000);
}
TEST_P(MpmcSweep, Compact) {
  auto [cap, producers, consumers] = GetParam();
  run_mpmc<ffq::core::layout_compact>(cap, producers, consumers, 8000);
}
TEST_P(MpmcSweep, Randomized) {
  auto [cap, producers, consumers] = GetParam();
  run_mpmc<ffq::core::layout_randomized>(cap, producers, consumers, 8000);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MpmcSweep,
    ::testing::Values(std::make_tuple<std::size_t>(64, 1, 1),
                      std::make_tuple<std::size_t>(64, 2, 2),
                      std::make_tuple<std::size_t>(64, 4, 4),
                      std::make_tuple<std::size_t>(4, 2, 2),
                      std::make_tuple<std::size_t>(1024, 4, 1),
                      std::make_tuple<std::size_t>(1024, 1, 4)),
    [](const auto& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

// The "enqueue in the past" regression (paper §III-B): with a tiny ring
// and many producers, a producer that acquired an old rank must never
// publish an item consumers have already skipped (it would be lost).
// Conservation over a long run is the observable invariant.
TEST(MpmcQueue, StressTinyRingManyProducers) {
  run_mpmc<ffq::core::layout_aligned>(2, 4, 4, 5000);
}

TEST(MpmcQueue, GapStatisticsExposed) {
  mpmc_queue<int> q(4);
  // Ordinary traffic: no gaps.
  int out;
  for (int i = 0; i < 16; ++i) {
    q.enqueue(i);
    ASSERT_TRUE(q.dequeue(out));
  }
  EXPECT_EQ(q.gaps_created(), 0u);
  EXPECT_EQ(q.consumer_skips(), 0u);
}

// ---------------------------------------------------------------------------
// Batched operations (DESIGN.md §5.8). enqueue_bulk draws rank blocks with
// one fetch-and-add per redraw and keeps per-producer FIFO; dequeue_bulk
// claims a run of ranks in one step. The tagged-item invariants from the
// sweep above carry over unchanged.
// ---------------------------------------------------------------------------

TEST(MpmcQueueBulk, TryDequeueIsNonBlocking) {
  mpmc_queue<int> q(16);
  int out = -1;
  EXPECT_FALSE(q.try_dequeue(out)) << "empty queue must not block";
  q.enqueue(3);
  ASSERT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.try_dequeue(out));
  q.close();
  EXPECT_FALSE(q.try_dequeue(out));
}

TEST(MpmcQueueBulk, TryDequeueBulkIsNonCommittal) {
  mpmc_queue<std::uint64_t> q(16);
  std::uint64_t out[8];
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 0u) << "empty queue must not block";
  std::uint64_t in[6] = {1, 2, 3, 4, 5, 6};
  q.enqueue_bulk(in, 6);
  ASSERT_EQ(q.try_dequeue_bulk(out, 4), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i + 1);
  ASSERT_EQ(q.try_dequeue_bulk(out, 8), 2u)
      << "returns what is published, never waits for more";
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 6u);
  q.close();
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 0u);
}

TEST(MpmcQueueBulk, BulkRoundTripAndPartialAtClose) {
  mpmc_queue<std::uint64_t> q(32);
  std::uint64_t in[10];
  for (std::uint64_t i = 0; i < 10; ++i) in[i] = i;
  q.enqueue_bulk(in, 10);
  std::uint64_t out[8];
  ASSERT_EQ(q.dequeue_bulk(out, 8), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  q.close();
  ASSERT_EQ(q.dequeue_bulk(out, 8), 2u)
      << "close() surfaces the partial batch";
  EXPECT_EQ(out[0], 8u);
  EXPECT_EQ(out[1], 9u);
  EXPECT_EQ(q.dequeue_bulk(out, 8), 0u);
}

TEST(MpmcQueueBulk, BulkAndScalarInterleaveOnSameQueue) {
  mpmc_queue<int> q(16);
  const int head[2] = {0, 1};
  q.enqueue_bulk(head, 2);
  q.enqueue(2);
  const int tail[2] = {3, 4};
  q.enqueue_bulk(tail, 2);
  int out;
  int bulk_out[3];
  ASSERT_EQ(q.dequeue_bulk(bulk_out, 3), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(bulk_out[i], i);
  ASSERT_TRUE(q.dequeue(out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 4);
}

// Multi-producer bulk stress on a tiny ring: rank blocks from different
// producers interleave, forcing the block dispenser through the gap /
// "enqueue in the past" machinery. Tagged items prove exactly-once and
// per-producer FIFO across bulk batches.
TEST(MpmcQueueBulk, StressBulkProducersAndConsumersConserve) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kItemsPerProducer = 12000;
  constexpr std::size_t kBatch = 8;
  mpmc_queue<std::uint64_t> q(8);
  std::atomic<std::uint64_t> total_count{0};
  std::atomic<bool> order_ok{true};
  std::vector<std::atomic<std::uint8_t>> seen(kProducers * kItemsPerProducer);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);

  std::vector<std::thread> cs;
  for (int c = 0; c < kConsumers; ++c) {
    cs.emplace_back([&] {
      std::vector<std::int64_t> last_seq(kProducers, -1);
      std::uint64_t buf[kBatch];
      std::uint64_t count = 0;
      std::size_t n;
      while ((n = q.dequeue_bulk(buf, kBatch)) > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          const auto p = tag_producer(buf[i]);
          const auto s = tag_seq(buf[i]);
          if (static_cast<std::int64_t>(s) <= last_seq[p]) order_ok.store(false);
          last_seq[p] = static_cast<std::int64_t>(s);
          const std::size_t idx = p * kItemsPerProducer + s;
          if (seen[idx].fetch_add(1, std::memory_order_relaxed) != 0) {
            order_ok.store(false);
          }
          ++count;
        }
      }
      total_count.fetch_add(count);
    });
  }
  std::vector<std::thread> ps;
  for (int p = 0; p < kProducers; ++p) {
    ps.emplace_back([&, p] {
      std::uint64_t buf[kBatch];
      for (std::uint64_t s = 0; s < kItemsPerProducer; s += kBatch) {
        for (std::uint64_t i = 0; i < kBatch; ++i) {
          buf[i] = make_tag(static_cast<std::uint64_t>(p), s + i);
        }
        q.enqueue_bulk(buf, kBatch);
      }
    });
  }
  for (auto& t : ps) t.join();
  q.close();
  for (auto& t : cs) t.join();

  EXPECT_EQ(total_count.load(), kProducers * kItemsPerProducer);
  EXPECT_TRUE(order_ok.load());
  for (const auto& s : seen) {
    ASSERT_EQ(s.load(std::memory_order_relaxed), 1u) << "lost or duplicated item";
  }
}
