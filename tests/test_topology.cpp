#include "ffq/runtime/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rt = ffq::runtime;

TEST(Topology, DiscoverReturnsAtLeastOneCpu) {
  const auto topo = rt::cpu_topology::discover();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_cores(), 1u);
  EXPECT_GE(topo.num_packages(), 1u);
  EXPECT_LE(topo.num_cores(), topo.num_cpus());
  EXPECT_FALSE(topo.summary().empty());
}

TEST(Topology, DiscoverCoreIdsAreDense) {
  const auto topo = rt::cpu_topology::discover();
  std::set<int> cores;
  for (const auto& c : topo.cpus()) cores.insert(c.core_id);
  EXPECT_EQ(cores.size(), topo.num_cores());
  EXPECT_EQ(*cores.begin(), 0);
  EXPECT_EQ(*cores.rbegin(), static_cast<int>(topo.num_cores()) - 1);
}

TEST(Topology, SyntheticSkylakeShape) {
  // The paper's Skylake: 1 package, 4 cores, 2 HT/core = 8 logical CPUs.
  const auto topo = rt::cpu_topology::synthetic(1, 4, 2);
  EXPECT_EQ(topo.num_cpus(), 8u);
  EXPECT_EQ(topo.num_cores(), 4u);
  EXPECT_EQ(topo.num_packages(), 1u);
  EXPECT_EQ(topo.threads_per_core(), 2u);
  // Linux-style enumeration: cpu0..3 primary threads, cpu4..7 siblings.
  EXPECT_EQ(topo.primary_threads(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.sibling_of(0), 4);
  EXPECT_EQ(topo.sibling_of(4), 0);
  EXPECT_EQ(topo.core_of(5), 1);
  EXPECT_EQ(topo.core_members(2), (std::vector<int>{2, 6}));
}

TEST(Topology, SyntheticHaswellShape) {
  // The paper's Haswell: 2 packages × 14 cores × 2 HT = 56 CPUs.
  const auto topo = rt::cpu_topology::synthetic(2, 14, 2);
  EXPECT_EQ(topo.num_cpus(), 56u);
  EXPECT_EQ(topo.num_cores(), 28u);
  EXPECT_EQ(topo.num_packages(), 2u);
}

TEST(Topology, SyntheticPower8Shape) {
  // The paper's P8: 10 cores × 8 HT = 80 logical CPUs.
  const auto topo = rt::cpu_topology::synthetic(1, 10, 8);
  EXPECT_EQ(topo.num_cpus(), 80u);
  EXPECT_EQ(topo.threads_per_core(), 8u);
  const auto members = topo.core_members(0);
  EXPECT_EQ(members.size(), 8u);
}

TEST(Topology, SingleThreadPerCoreHasNoSibling) {
  const auto topo = rt::cpu_topology::synthetic(1, 2, 1);
  EXPECT_EQ(topo.sibling_of(0), -1);
  EXPECT_EQ(topo.core_of(99), -1);
}
