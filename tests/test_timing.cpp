#include "ffq/runtime/timing.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace rt = ffq::runtime;

// The spin/stopwatch tests bound wall-clock spans; on a single hardware
// thread any background work stretches them arbitrarily. The binary also
// runs RUN_SERIAL so parallel ctest jobs don't steal the core mid-spin.
#define FFQ_REQUIRE_PARALLEL_HW()                    \
  if (std::thread::hardware_concurrency() < 2)       \
  GTEST_SKIP() << "needs >= 2 hardware threads"

TEST(Timing, TscMonotonic) {
  const auto a = rt::rdtsc();
  const auto b = rt::rdtsc();
  EXPECT_LE(a, b);
}

TEST(Timing, CalibrationIsPlausible) {
  const double ghz = rt::tsc_ghz();
  EXPECT_GT(ghz, 0.1);
  EXPECT_LT(ghz, 10.0);
  // Calibration result is cached.
  EXPECT_DOUBLE_EQ(ghz, rt::tsc_ghz());
}

TEST(Timing, ConversionRoundTrips) {
  const double ns = 1234.5;
  const auto cyc = rt::ns_to_tsc(ns);
  EXPECT_NEAR(rt::tsc_to_ns(cyc), ns, 2.0);
}

TEST(Timing, SpinNsWaitsRoughlyTheRequestedTime) {
  FFQ_REQUIRE_PARALLEL_HW();
  // Generous bounds: CI containers dilate sleeps, never compress spins.
  const auto t0 = rt::rdtsc();
  rt::spin_ns(100000);  // 100 us
  const auto t1 = rt::rdtsc();
  const double ns = rt::tsc_to_ns(t1 - t0);
  EXPECT_GE(ns, 95000.0);
  EXPECT_LT(ns, 100e6);  // generous: preemption can stretch a 100 us spin
}

TEST(Timing, StopwatchMeasuresElapsed) {
  FFQ_REQUIRE_PARALLEL_HW();
  rt::stopwatch sw;
  rt::spin_ns(2e6);  // 2 ms
  EXPECT_GE(sw.millis(), 1.5);
  sw.reset();
  EXPECT_LT(sw.millis(), 1.5);
}
