// Tests for the waitable (futex-parking) SPSC queue wrapper.
#include "ffq/core/waitable.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using ffq::core::waitable_spsc_queue;

// The park/wake tests sleep to let a peer thread spin out and park; that
// scheduling assumption (not the correctness claim) needs a second
// hardware thread. The binary also runs RUN_SERIAL so parallel ctest
// jobs don't dilate the sleeps.
#define FFQ_REQUIRE_PARALLEL_HW()                    \
  if (std::thread::hardware_concurrency() < 2)       \
  GTEST_SKIP() << "needs >= 2 hardware threads"

TEST(WaitableSpsc, BasicFifo) {
  waitable_spsc_queue<int> q(64);
  for (int i = 0; i < 10; ++i) q.enqueue(i);
  int out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_dequeue(out));
}

TEST(WaitableSpsc, DequeueParksAndWakes) {
  FFQ_REQUIRE_PARALLEL_HW();
  waitable_spsc_queue<int> q(64);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out;
    if (q.dequeue(out)) got.store(out);
  });
  // Let the consumer spin out and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(got.load(), -1);
  q.enqueue(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(WaitableSpsc, CloseWakesParkedConsumer) {
  FFQ_REQUIRE_PARALLEL_HW();
  waitable_spsc_queue<int> q(64);
  std::atomic<int> result{-1};
  std::thread consumer([&] {
    int out;
    result.store(q.dequeue(out) ? 1 : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(result.load(), -1);
  q.close();
  consumer.join();
  EXPECT_EQ(result.load(), 0);
}

TEST(WaitableSpsc, DrainsItemsBeforeReportingClosed) {
  waitable_spsc_queue<int> q(64);
  q.enqueue(1);
  q.enqueue(2);
  q.close();
  int out;
  EXPECT_TRUE(q.dequeue(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.dequeue(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.dequeue(out));
}

TEST(WaitableSpsc, StreamWithSlowProducerConservesAll) {
  // The consumer parks repeatedly (producer enqueues in bursts with
  // pauses); nothing may be lost and order must hold.
  waitable_spsc_queue<std::uint64_t> q(256);
  constexpr std::uint64_t kItems = 5000;
  std::uint64_t sum = 0, count = 0;
  std::thread consumer([&] {
    std::uint64_t out, prev = 0;
    while (q.dequeue(out)) {
      ASSERT_GT(out, prev);
      prev = out;
      sum += out;
      ++count;
    }
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    q.enqueue(i);
    if (i % 500 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  q.close();
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

TEST(WaitableSpsc, HighRateStreamIsCorrect) {
  waitable_spsc_queue<std::uint64_t> q(1024);
  constexpr std::uint64_t kItems = 300000;
  std::uint64_t count = 0;
  std::thread consumer([&] {
    std::uint64_t out;
    while (q.dequeue(out)) ++count;
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) q.enqueue(i);
  q.close();
  consumer.join();
  EXPECT_EQ(count, kItems);
}

TEST(WaitableSpsc, BulkPassThroughRoundTrips) {
  waitable_spsc_queue<std::uint64_t> q(64);
  std::uint64_t in[12];
  for (std::uint64_t i = 0; i < 12; ++i) in[i] = i;
  q.enqueue_bulk(in, 12);
  std::uint64_t out[8];
  ASSERT_EQ(q.try_dequeue_bulk(out, 8), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  ASSERT_EQ(q.dequeue_bulk(out, 8), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i + 8);
  q.close();
  EXPECT_EQ(q.dequeue_bulk(out, 8), 0u);
}

TEST(WaitableSpsc, BulkEnqueueWakesParkedBulkConsumer) {
  FFQ_REQUIRE_PARALLEL_HW();
  waitable_spsc_queue<int> q(64);
  std::atomic<std::size_t> got{0};
  std::thread consumer([&] {
    int out[4];
    got.store(q.dequeue_bulk(out, 4));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(got.load(), 0u);
  const int batch[3] = {1, 2, 3};
  q.enqueue_bulk(batch, 3);
  consumer.join();
  EXPECT_EQ(got.load(), 3u);
}
