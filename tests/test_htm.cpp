#include "ffq/runtime/htm.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rt = ffq::runtime;

TEST(Htm, LockBasics) {
  rt::htm_lock lk;
  EXPECT_FALSE(lk.is_locked());
  lk.lock();
  EXPECT_TRUE(lk.is_locked());
  lk.unlock();
  EXPECT_FALSE(lk.is_locked());
}

TEST(Htm, SingleThreadTransactionCommits) {
  rt::htm_lock lk;
  rt::htm_context ctx(/*seed=*/1);
  int x = 0;
  ctx.run(lk, [&] { x = 42; });
  EXPECT_EQ(x, 42);
  EXPECT_EQ(ctx.stats().attempts, 1u);
  EXPECT_EQ(ctx.stats().commits + ctx.stats().fallbacks, 1u);
  EXPECT_FALSE(lk.is_locked()) << "lock must be released after the region";
}

TEST(Htm, ConcurrentCountersAreExact) {
  rt::htm_lock lk;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  long counter = 0;  // plain! protected only by the transactional region
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      rt::htm_context ctx(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        ctx.run(lk, [&] { ++counter; });
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Htm, StatsAccumulate) {
  rt::htm_lock lk;
  rt::htm_context ctx(3);
  for (int i = 0; i < 100; ++i) ctx.run(lk, [] {});
  EXPECT_EQ(ctx.stats().attempts, 100u);
  EXPECT_EQ(ctx.stats().commits + ctx.stats().fallbacks, 100u);
}

TEST(Htm, HardwareReportAvailableIsStable) {
  const bool a = rt::htm_hardware_available();
  const bool b = rt::htm_hardware_available();
  EXPECT_EQ(a, b);
}
