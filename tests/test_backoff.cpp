#include "ffq/runtime/backoff.hpp"

#include <gtest/gtest.h>

namespace rt = ffq::runtime;

TEST(Backoff, ExponentialDoublesUpToCap) {
  rt::exp_backoff bo;
  EXPECT_EQ(bo.level(), rt::exp_backoff::kMinSpins);
  bo.pause();
  EXPECT_EQ(bo.level(), 2u);
  bo.pause();
  EXPECT_EQ(bo.level(), 4u);
  for (int i = 0; i < 32; ++i) bo.pause();
  EXPECT_EQ(bo.level(), rt::exp_backoff::kMaxSpins);
}

TEST(Backoff, ResetReturnsToMinimum) {
  rt::exp_backoff bo;
  for (int i = 0; i < 5; ++i) bo.pause();
  ASSERT_GT(bo.level(), rt::exp_backoff::kMinSpins);
  bo.reset();
  EXPECT_EQ(bo.level(), rt::exp_backoff::kMinSpins);
}

TEST(Backoff, ConstBackoffAndRelaxDoNotHang) {
  rt::const_backoff cb{8};
  for (int i = 0; i < 100; ++i) cb.pause();
  rt::relax_for(1000);
  rt::cpu_relax();
  SUCCEED();
}
