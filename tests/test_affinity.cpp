#include "ffq/runtime/affinity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace rt = ffq::runtime;

TEST(Affinity, PolicyNamesRoundTrip) {
  using rt::placement_policy;
  for (auto p : {placement_policy::same_ht, placement_policy::sibling_ht,
                 placement_policy::other_core, placement_policy::none}) {
    const auto parsed = rt::placement_from_string(rt::to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(rt::placement_from_string("bogus").has_value());
}

TEST(Affinity, PinAndReadBack) {
  const auto before = rt::current_affinity();
  ASSERT_FALSE(before.empty());
  const int target = before.front();
  ASSERT_TRUE(rt::pin_self_to(target));
  const auto now = rt::current_affinity();
  ASSERT_EQ(now.size(), 1u);
  EXPECT_EQ(now.front(), target);
  ASSERT_TRUE(rt::unpin_self());
  EXPECT_GE(rt::current_affinity().size(), before.size());
}

TEST(Affinity, PlanNonePinsNothing) {
  const auto topo = rt::cpu_topology::synthetic(1, 4, 2);
  const auto plan = rt::plan_placement(topo, rt::placement_policy::none, 3);
  ASSERT_EQ(plan.size(), 3u);
  for (const auto& g : plan) {
    EXPECT_TRUE(g.producer_cpus.empty());
    EXPECT_TRUE(g.consumer_cpus.empty());
  }
}

TEST(Affinity, PlanSameHtPutsGroupOnOneCpu) {
  const auto topo = rt::cpu_topology::synthetic(1, 4, 2);
  const auto plan = rt::plan_placement(topo, rt::placement_policy::same_ht, 4);
  for (const auto& g : plan) {
    ASSERT_EQ(g.producer_cpus.size(), 1u);
    EXPECT_EQ(g.producer_cpus, g.consumer_cpus);
  }
  // Distinct groups use distinct cores.
  EXPECT_NE(plan[0].producer_cpus, plan[1].producer_cpus);
}

TEST(Affinity, PlanSiblingHtUsesBothHtsOfOneCore) {
  const auto topo = rt::cpu_topology::synthetic(1, 4, 2);
  const auto plan = rt::plan_placement(topo, rt::placement_policy::sibling_ht, 2);
  for (const auto& g : plan) {
    ASSERT_EQ(g.producer_cpus.size(), 1u);
    ASSERT_EQ(g.consumer_cpus.size(), 1u);
    EXPECT_NE(g.producer_cpus[0], g.consumer_cpus[0]);
    EXPECT_EQ(topo.core_of(g.producer_cpus[0]), topo.core_of(g.consumer_cpus[0]));
  }
}

TEST(Affinity, PlanSiblingHtDegradesWithoutSmt) {
  const auto topo = rt::cpu_topology::synthetic(1, 4, 1);
  const auto plan = rt::plan_placement(topo, rt::placement_policy::sibling_ht, 1);
  EXPECT_EQ(plan[0].producer_cpus, plan[0].consumer_cpus);
}

TEST(Affinity, PlanOtherCoreSeparatesCoresWhenPossible) {
  const auto topo = rt::cpu_topology::synthetic(1, 4, 2);
  const auto plan = rt::plan_placement(topo, rt::placement_policy::other_core, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NE(topo.core_of(plan[0].producer_cpus[0]),
            topo.core_of(plan[0].consumer_cpus[0]));
}

TEST(Affinity, PlanOversubscribesRoundRobin) {
  const auto topo = rt::cpu_topology::synthetic(1, 2, 2);
  const auto plan = rt::plan_placement(topo, rt::placement_policy::same_ht, 5);
  ASSERT_EQ(plan.size(), 5u);
  // Group 0 and group 2 share core 0 (round robin over 2 cores).
  EXPECT_EQ(plan[0].producer_cpus, plan[2].producer_cpus);
  EXPECT_NE(plan[0].producer_cpus, plan[1].producer_cpus);
}
