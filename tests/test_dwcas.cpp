#include "ffq/runtime/dwcas.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rt = ffq::runtime;

TEST(Dwcas, SizeAndAlignment) {
  static_assert(sizeof(rt::atomic_u64_pair) == 16);
  static_assert(alignof(rt::atomic_u64_pair) == 16);
  static_assert(sizeof(rt::atomic_i64_pair) == 16);
}

TEST(Dwcas, SuccessUpdatesBothWords) {
  rt::atomic_u64_pair p;
  p.lo.store(1);
  p.hi.store(2);
  rt::atomic_u64_pair::value_type expected{1, 2};
  EXPECT_TRUE(p.compare_exchange(expected, {10, 20}));
  EXPECT_EQ(p.lo.load(), 10u);
  EXPECT_EQ(p.hi.load(), 20u);
}

TEST(Dwcas, FailureLoadsObservedValue) {
  rt::atomic_u64_pair p;
  p.lo.store(5);
  p.hi.store(6);
  rt::atomic_u64_pair::value_type expected{1, 2};
  EXPECT_FALSE(p.compare_exchange(expected, {10, 20}));
  EXPECT_EQ(expected.lo, 5u);
  EXPECT_EQ(expected.hi, 6u);
  EXPECT_EQ(p.lo.load(), 5u);
}

TEST(Dwcas, MismatchOnEitherWordFails) {
  rt::atomic_i64_pair p;
  p.first.store(-1);
  p.second.store(7);
  rt::atomic_i64_pair::value_type exp1{-1, 8};  // second wrong
  EXPECT_FALSE(p.compare_exchange(exp1, {-2, 8}));
  rt::atomic_i64_pair::value_type exp2{0, 7};  // first wrong
  EXPECT_FALSE(p.compare_exchange(exp2, {-2, 7}));
  rt::atomic_i64_pair::value_type exp3{-1, 7};  // both right
  EXPECT_TRUE(p.compare_exchange(exp3, {-2, 7}));
  EXPECT_EQ(p.first.load(), -2);
}

TEST(Dwcas, LoadPairIsConsistentSnapshot) {
  rt::atomic_i64_pair p;
  p.first.store(3);
  p.second.store(4);
  const auto v = p.load_pair();
  EXPECT_EQ(v.first, 3);
  EXPECT_EQ(v.second, 4);
}

// Concurrent counter pair: each thread increments (lo, hi) together via
// DWCAS; the invariant hi == lo must never break.
TEST(Dwcas, ConcurrentPairIncrementsStayCoupled) {
  rt::atomic_u64_pair p;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&p] {
      for (int i = 0; i < kIters; ++i) {
        auto cur = p.load_pair();
        while (!p.compare_exchange(cur, {cur.lo + 1, cur.hi + 1})) {
          // cur refreshed by the failed CAS
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto v = p.load_pair();
  EXPECT_EQ(v.lo, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(v.hi, v.lo);
}
