// Unit, property, and stress tests for ffq::core::spmc_queue (Algorithm 1).
#include "ffq/core/spmc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using ffq::core::layout_aligned;
using ffq::core::spmc_queue;

TEST(SpmcQueue, SingleConsumerFifo) {
  spmc_queue<int> q(16);
  for (int i = 0; i < 12; ++i) q.enqueue(i);
  int out;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(q.dequeue(out));
    EXPECT_EQ(out, i);
  }
}

TEST(SpmcQueue, ReportsCapacityAndSize) {
  spmc_queue<int> q(64);
  EXPECT_EQ(q.capacity(), 64u);
  EXPECT_EQ(q.approx_size(), 0);
  q.enqueue(1);
  q.enqueue(2);
  EXPECT_EQ(q.approx_size(), 2);
}

TEST(SpmcQueue, CloseUnblocksAllWaitingConsumers) {
  spmc_queue<int> q(16);
  constexpr int kConsumers = 4;
  std::atomic<int> drained{0};
  std::vector<std::thread> cs;
  for (int i = 0; i < kConsumers; ++i) {
    cs.emplace_back([&] {
      int out;
      while (q.dequeue(out)) {
      }
      drained.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(drained.load(), 0);
  q.close();
  for (auto& t : cs) t.join();
  EXPECT_EQ(drained.load(), kConsumers);
}

TEST(SpmcQueue, ItemsEnqueuedBeforeCloseAreDelivered) {
  spmc_queue<int> q(32);
  for (int i = 0; i < 20; ++i) q.enqueue(i);
  q.close();
  std::atomic<int> received{0};
  std::vector<std::thread> cs;
  for (int i = 0; i < 3; ++i) {
    cs.emplace_back([&] {
      int out;
      while (q.dequeue(out)) received.fetch_add(1);
    });
  }
  for (auto& t : cs) t.join();
  EXPECT_EQ(received.load(), 20);
}

// ---------------------------------------------------------------------------
// Deterministic gap test. A payload whose move-*assignment* blocks lets the
// test freeze a consumer inside the dequeue window (between observing its
// rank and releasing the cell) — exactly the "slow consumer" of §III-A.
// The producer must then skip the held cell, announce a gap, and publish
// in the next free cell; a later consumer must follow the gap.
// ---------------------------------------------------------------------------

namespace {

struct gate {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
};

struct gated_value {
  int v = 0;
  gate* g = nullptr;  // non-null: block in move-assignment until released

  gated_value() = default;
  gated_value(int value, gate* gt) : v(value), g(gt) {}
  gated_value(gated_value&& o) noexcept : v(o.v), g(o.g) {}
  gated_value& operator=(gated_value&& o) noexcept {
    v = o.v;
    g = o.g;
    if (g != nullptr) {
      g->entered.store(true, std::memory_order_release);
      while (!g->release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    return *this;
  }
};

}  // namespace

TEST(SpmcQueue, DeterministicGapCreationAndSkip) {
  // Explicit enabled policy: the gap/skip assertions must hold in every
  // build mode, including default FFQ_TELEMETRY=OFF.
  spmc_queue<gated_value, layout_aligned, ffq::telemetry::enabled> q(4);
  gate gt;

  q.enqueue(gated_value(0, &gt));      // rank 0 -> cell 0
  q.enqueue(gated_value(1, nullptr));  // rank 1 -> cell 1

  gated_value slow_out;
  std::thread slow([&] {
    ASSERT_TRUE(q.dequeue(slow_out));  // rank 0; stalls inside the cell
  });
  while (!gt.entered.load(std::memory_order_acquire)) std::this_thread::yield();

  gated_value out;
  ASSERT_TRUE(q.dequeue(out));  // rank 1 -> frees cell 1
  EXPECT_EQ(out.v, 1);

  q.enqueue(gated_value(2, nullptr));  // rank 2 -> cell 2
  q.enqueue(gated_value(3, nullptr));  // rank 3 -> cell 3
  ASSERT_EQ(q.gaps_created(), 0u);

  // Free cells: only cell 1. Cell 0 is held by the stalled consumer, so
  // the producer must announce a gap for rank 4 and publish at rank 5.
  q.enqueue(gated_value(4, nullptr));
  EXPECT_EQ(q.gaps_created(), 1u);

  gt.release.store(true, std::memory_order_release);
  slow.join();
  EXPECT_EQ(slow_out.v, 0);

  // Drain: ranks 2, 3 are items; rank 4 is a gap the consumer must skip;
  // rank 5 carries item 4.
  ASSERT_TRUE(q.dequeue(out));
  EXPECT_EQ(out.v, 2);
  ASSERT_TRUE(q.dequeue(out));
  EXPECT_EQ(out.v, 3);
  ASSERT_TRUE(q.dequeue(out));
  EXPECT_EQ(out.v, 4) << "consumer must skip the gap rank and find item 4";
  EXPECT_GE(q.consumer_skips(), 1u);

  q.close();
  EXPECT_FALSE(q.dequeue(out));
}

// ---------------------------------------------------------------------------
// Property sweep: 1 producer × C consumers, exactly-once + conservation +
// per-consumer monotone sequence (rank order implies each consumer sees
// strictly increasing payloads from the single producer).
// ---------------------------------------------------------------------------

template <typename Layout>
void run_spmc_fanout(std::size_t capacity, int consumers, std::uint64_t items) {
  spmc_queue<std::uint64_t, Layout> q(capacity);
  std::atomic<std::uint64_t> total_count{0};
  std::atomic<std::uint64_t> total_sum{0};
  std::atomic<bool> order_ok{true};

  std::vector<std::thread> cs;
  for (int c = 0; c < consumers; ++c) {
    cs.emplace_back([&] {
      std::uint64_t out;
      std::uint64_t prev = 0;
      bool first = true;
      std::uint64_t count = 0, sum = 0;
      while (q.dequeue(out)) {
        if (!first && out <= prev) order_ok.store(false);
        prev = out;
        first = false;
        ++count;
        sum += out;
      }
      total_count.fetch_add(count);
      total_sum.fetch_add(sum);
    });
  }
  for (std::uint64_t i = 1; i <= items; ++i) q.enqueue(i);
  q.close();
  for (auto& t : cs) t.join();

  EXPECT_EQ(total_count.load(), items);
  EXPECT_EQ(total_sum.load(), items * (items + 1) / 2);
  EXPECT_TRUE(order_ok.load()) << "per-consumer dequeue order must be FIFO";
}

class SpmcSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, std::uint64_t>> {};

TEST_P(SpmcSweep, Aligned) {
  auto [cap, consumers, items] = GetParam();
  run_spmc_fanout<ffq::core::layout_aligned>(cap, consumers, items);
}
TEST_P(SpmcSweep, Compact) {
  auto [cap, consumers, items] = GetParam();
  run_spmc_fanout<ffq::core::layout_compact>(cap, consumers, items);
}
TEST_P(SpmcSweep, AlignedRandomized) {
  auto [cap, consumers, items] = GetParam();
  run_spmc_fanout<ffq::core::layout_aligned_randomized>(cap, consumers, items);
}

INSTANTIATE_TEST_SUITE_P(
    Fanout, SpmcSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 64, 1024),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values<std::uint64_t>(8000)),
    [](const auto& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_cons" +
             std::to_string(std::get<1>(info.param)) + "_items" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SpmcQueue, StressManyConsumersTinyCapacity) {
  // Heavy oversubscription on a tiny ring: maximizes wrap-arounds, gaps,
  // and skip races. Conservation is the proof of exactly-once delivery.
  // (Sized for a 2-core CI box: a full ring serializes progress through
  // the scheduler, so item count is deliberately modest.)
  run_spmc_fanout<ffq::core::layout_aligned>(2, 4, 10000);
}

TEST(SpmcQueue, MoveOnlyPayloadAcrossThreads) {
  spmc_queue<std::unique_ptr<std::uint64_t>> q(64);
  constexpr std::uint64_t kItems = 5000;
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> cs;
  for (int c = 0; c < 3; ++c) {
    cs.emplace_back([&] {
      std::unique_ptr<std::uint64_t> out;
      while (q.dequeue(out)) sum.fetch_add(*out);
    });
  }
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    q.enqueue(std::make_unique<std::uint64_t>(i));
  }
  q.close();
  for (auto& t : cs) t.join();
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
}

// ---------------------------------------------------------------------------
// Batched operations (DESIGN.md §5.8). dequeue_bulk claims a run of ranks
// with one fetch-and-add; ranks inside the run that turn out to be gaps
// must be dropped in place, and a close() mid-run must surface a partial
// batch rather than blocking.
// ---------------------------------------------------------------------------

TEST(SpmcQueueBulk, TryDequeueIsNonBlocking) {
  spmc_queue<int> q(16);
  int out = -1;
  EXPECT_FALSE(q.try_dequeue(out)) << "empty queue must not block";
  q.enqueue(7);
  q.enqueue(8);
  ASSERT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 7);
  ASSERT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(q.try_dequeue(out));
  q.close();
  EXPECT_FALSE(q.try_dequeue(out));
}

TEST(SpmcQueueBulk, TryDequeueBulkIsNonCommittal) {
  spmc_queue<std::uint64_t> q(16);
  std::uint64_t out[8];
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 0u) << "empty queue must not block";
  std::uint64_t in[5] = {1, 2, 3, 4, 5};
  q.enqueue_bulk(in, 5);
  ASSERT_EQ(q.try_dequeue_bulk(out, 8), 5u)
      << "returns what is published, never waits for more";
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 0u);
  q.enqueue(6);
  EXPECT_EQ(q.try_dequeue_bulk(out, 0), 0u) << "max_n = 0 claims nothing";
  ASSERT_EQ(q.try_dequeue_bulk(out, 3), 1u);
  EXPECT_EQ(out[0], 6u);
  q.close();
  EXPECT_EQ(q.try_dequeue_bulk(out, 8), 0u);
}

TEST(SpmcQueueBulk, BulkRoundTripKeepsFifo) {
  spmc_queue<std::uint64_t> q(64);
  std::uint64_t in[32];
  for (std::uint64_t i = 0; i < 32; ++i) in[i] = i;
  q.enqueue_bulk(in, 32);
  std::uint64_t out[8];
  std::uint64_t expect = 0;
  for (int round = 0; round < 4; ++round) {
    ASSERT_EQ(q.dequeue_bulk(out, 8), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], expect++);
  }
  EXPECT_EQ(q.approx_size(), 0);
}

TEST(SpmcQueueBulk, BulkAndScalarInterleaveOnSameQueue) {
  spmc_queue<std::uint64_t> q(32);
  std::uint64_t buf[4] = {0, 1, 2, 3};
  q.enqueue_bulk(buf, 4);
  q.enqueue(4);
  buf[0] = 5;
  buf[1] = 6;
  q.enqueue_bulk(buf, 2);

  std::uint64_t out;
  ASSERT_TRUE(q.dequeue(out));
  EXPECT_EQ(out, 0u);
  std::uint64_t bulk_out[3];
  ASSERT_EQ(q.dequeue_bulk(bulk_out, 3), 3u);
  EXPECT_EQ(bulk_out[0], 1u);
  EXPECT_EQ(bulk_out[2], 3u);
  ASSERT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 4u);
  ASSERT_EQ(q.dequeue_bulk(bulk_out, 3), 2u) << "partial batch when drained";
  EXPECT_EQ(bulk_out[0], 5u);
  EXPECT_EQ(bulk_out[1], 6u);
}

TEST(SpmcQueueBulk, DequeueBulkReturnsPartialBatchAtClose) {
  spmc_queue<int> q(16);
  for (int i = 0; i < 5; ++i) q.enqueue(i);
  q.close();
  int out[8];
  std::size_t n = q.dequeue_bulk(out, 8);
  ASSERT_EQ(n, 5u) << "close() must surface the partial batch, not block";
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.dequeue_bulk(out, 8), 0u) << "drained + closed returns 0";
}

TEST(SpmcQueueBulk, DequeueBulkDropsGapInsideClaimedRun) {
  // Same freeze-the-consumer setup as DeterministicGapCreationAndSkip,
  // but the drain happens through one dequeue_bulk whose claimed run
  // [2, 6) covers the gap at rank 4. The gap must be dropped in place —
  // no fresh fetch-and-add — so the call returns the 3 real items.
  // Enabled telemetry policy: the gap/skip assertions must hold in every
  // build mode.
  spmc_queue<gated_value, layout_aligned, ffq::telemetry::enabled> q(4);
  gate gt;

  q.enqueue(gated_value(0, &gt));      // rank 0 -> cell 0
  q.enqueue(gated_value(1, nullptr));  // rank 1 -> cell 1

  gated_value slow_out;
  std::thread slow([&] {
    ASSERT_TRUE(q.dequeue(slow_out));  // rank 0; stalls inside the cell
  });
  while (!gt.entered.load(std::memory_order_acquire)) std::this_thread::yield();

  gated_value out;
  ASSERT_TRUE(q.dequeue(out));  // rank 1 -> frees cell 1
  EXPECT_EQ(out.v, 1);

  q.enqueue(gated_value(2, nullptr));  // rank 2 -> cell 2
  q.enqueue(gated_value(3, nullptr));  // rank 3 -> cell 3
  q.enqueue(gated_value(4, nullptr));  // gap at rank 4, item at rank 5
  ASSERT_EQ(q.gaps_created(), 1u);

  gt.release.store(true, std::memory_order_release);
  slow.join();
  EXPECT_EQ(slow_out.v, 0);

  gated_value run[8];
  ASSERT_EQ(q.dequeue_bulk(run, 8), 3u)
      << "run [2,6) holds items 2,3,4 plus one gap rank";
  EXPECT_EQ(run[0].v, 2);
  EXPECT_EQ(run[1].v, 3);
  EXPECT_EQ(run[2].v, 4);
  EXPECT_GE(q.consumer_skips(), 1u);

  q.close();
  EXPECT_EQ(q.dequeue_bulk(run, 8), 0u);
}

TEST(SpmcQueueBulk, StressMixedScalarAndBulkConsumers) {
  // Two scalar and two bulk consumers share the ring while the producer
  // alternates enqueue() and enqueue_bulk(). Conservation + per-consumer
  // monotonicity prove the two claim paths compose.
  spmc_queue<std::uint64_t> q(64);
  constexpr std::uint64_t kItems = 60000;
  std::atomic<std::uint64_t> total_count{0};
  std::atomic<std::uint64_t> total_sum{0};
  std::atomic<bool> order_ok{true};

  auto account = [&](std::uint64_t count, std::uint64_t sum) {
    total_count.fetch_add(count);
    total_sum.fetch_add(sum);
  };
  std::vector<std::thread> cs;
  for (int c = 0; c < 2; ++c) {
    cs.emplace_back([&] {
      std::uint64_t out, prev = 0, count = 0, sum = 0;
      while (q.dequeue(out)) {
        if (out <= prev) order_ok.store(false);
        prev = out;
        ++count;
        sum += out;
      }
      account(count, sum);
    });
  }
  for (int c = 0; c < 2; ++c) {
    cs.emplace_back([&] {
      std::uint64_t buf[8];
      std::uint64_t prev = 0, count = 0, sum = 0;
      std::size_t n;
      while ((n = q.dequeue_bulk(buf, 8)) > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          if (buf[i] <= prev) order_ok.store(false);
          prev = buf[i];
          ++count;
          sum += buf[i];
        }
      }
      account(count, sum);
    });
  }

  std::uint64_t next = 1;
  std::uint64_t buf[8];
  bool scalar_round = true;
  while (next <= kItems) {
    scalar_round = !scalar_round;
    if (scalar_round || kItems - next + 1 < 8) {
      q.enqueue(next);
      ++next;
    } else {
      for (std::uint64_t i = 0; i < 8; ++i) buf[i] = next + i;
      q.enqueue_bulk(buf, 8);
      next += 8;
    }
  }
  q.close();
  for (auto& t : cs) t.join();

  EXPECT_EQ(total_count.load(), kItems);
  EXPECT_EQ(total_sum.load(), kItems * (kItems + 1) / 2);
  EXPECT_TRUE(order_ok.load())
      << "each consumer's values must be increasing across bulk batches";
}
