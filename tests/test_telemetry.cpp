// Tests for ffq::telemetry — the zero-cost claim (sizeof parity of the
// disabled policy vs the uninstrumented pre-telemetry layouts), bucket
// math, deterministic queue event counts, and the registry/snapshot
// export pipeline. Everything here instantiates the telemetry policy
// explicitly, so the suite is meaningful in both FFQ_TELEMETRY build
// modes.
#include "ffq/telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ffq/core/mpmc.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/core/spsc.hpp"
#include "ffq/core/waitable.hpp"
#include "ffq/runtime/eventcount.hpp"

namespace tel = ffq::telemetry;
using ffq::core::layout_aligned;

// ---------------------------------------------------------------------------
// Zero-cost OFF: the disabled counter block is empty and [[no_unique_address]]
// keeps every queue's size and alignment byte-identical to the layouts that
// shipped before telemetry existed. The mirror structs below replicate those
// pre-telemetry member sequences verbatim.
// ---------------------------------------------------------------------------

namespace {

using u64 = std::uint64_t;
// Trace policy pinned to disabled: these mirrors isolate the *telemetry*
// layout claim, and must hold in FFQ_TRACE=ON builds too.
template <typename Policy>
using spsc_q =
    ffq::core::spsc_queue<u64, layout_aligned, Policy, ffq::trace::disabled>;
template <typename Policy>
using spmc_q =
    ffq::core::spmc_queue<u64, layout_aligned, Policy, ffq::trace::disabled>;
template <typename Policy>
using mpmc_q =
    ffq::core::mpmc_queue<u64, layout_aligned, Policy, ffq::trace::disabled>;
template <typename Policy>
using waitable_q =
    ffq::core::waitable_spsc_queue<u64, layout_aligned, Policy,
                                   ffq::trace::disabled>;

using spmc_cell = ffq::core::detail::spmc_cell<u64, true>;
using mpmc_cell = ffq::core::detail::mpmc_cell<u64, true>;

struct spsc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<spmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::int64_t> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::uint64_t gaps_created_;
};

struct spmc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<spmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::atomic<std::int64_t>> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::uint64_t gaps_created_;
  std::atomic<std::uint64_t> skips_;
};

struct mpmc_mirror {
  ffq::core::capacity_info cap_;
  ffq::runtime::aligned_array<mpmc_cell> cells_;
  ffq::runtime::padded<std::atomic<std::int64_t>> tail_;
  ffq::runtime::padded<std::atomic<std::int64_t>> head_;
  std::atomic<std::int64_t> closed_tail_;
  std::atomic<std::uint64_t> gaps_;
  std::atomic<std::uint64_t> skips_;
};

struct waitable_mirror {
  spsc_q<tel::disabled> q_;
  ffq::runtime::eventcount ec_;
};

static_assert(std::is_empty_v<tel::queue_counters<tel::disabled>>);

static_assert(sizeof(spsc_q<tel::disabled>) == sizeof(spsc_mirror),
              "disabled telemetry must not grow spsc_queue");
static_assert(sizeof(spmc_q<tel::disabled>) == sizeof(spmc_mirror),
              "disabled telemetry must not grow spmc_queue");
static_assert(sizeof(mpmc_q<tel::disabled>) == sizeof(mpmc_mirror),
              "disabled telemetry must not grow mpmc_queue");
static_assert(sizeof(waitable_q<tel::disabled>) == sizeof(waitable_mirror),
              "disabled telemetry must not grow waitable_spsc_queue");

static_assert(alignof(spsc_q<tel::disabled>) == alignof(spsc_mirror));
static_assert(alignof(spmc_q<tel::disabled>) == alignof(spmc_mirror));
static_assert(alignof(mpmc_q<tel::disabled>) == alignof(mpmc_mirror));
static_assert(alignof(waitable_q<tel::disabled>) == alignof(waitable_mirror));

}  // namespace

TEST(TelemetryZeroCost, PolicyTagsAreCoherent) {
  EXPECT_TRUE(tel::enabled::kEnabled);
  EXPECT_FALSE(tel::disabled::kEnabled);
  EXPECT_TRUE(tel::queue_counters<tel::enabled>::kEnabled);
  EXPECT_FALSE(tel::queue_counters<tel::disabled>::kEnabled);
}

TEST(TelemetryZeroCost, DisabledBlockReportsZeroAndVisitsNothing) {
  tel::queue_counters<tel::disabled> c;
  c.on_gap_created();
  c.on_bulk(32);
  c.on_park();
  EXPECT_EQ(c.gaps_created(), 0u);
  EXPECT_EQ(c.bulk_calls(), 0u);
  EXPECT_EQ(c.bulk_items(), 0u);
  int visits = 0;
  c.for_each([&](const char*, std::uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

// ---------------------------------------------------------------------------
// Bulk batch-size buckets
// ---------------------------------------------------------------------------

TEST(TelemetryBuckets, BulkBucketIsLog2WithClamp) {
  EXPECT_EQ(tel::bulk_bucket(0), 0u);  // degenerate bulk call of 0 items
  EXPECT_EQ(tel::bulk_bucket(1), 0u);
  EXPECT_EQ(tel::bulk_bucket(2), 1u);
  EXPECT_EQ(tel::bulk_bucket(3), 1u);
  EXPECT_EQ(tel::bulk_bucket(4), 2u);
  EXPECT_EQ(tel::bulk_bucket(7), 2u);
  EXPECT_EQ(tel::bulk_bucket(8), 3u);
  EXPECT_EQ(tel::bulk_bucket(127), 6u);
  EXPECT_EQ(tel::bulk_bucket(128), 7u);
  EXPECT_EQ(tel::bulk_bucket(1u << 20), 7u);  // clamped to the last bucket
}

TEST(TelemetryBuckets, BulkBucketNamesCoverEveryBucket) {
  EXPECT_STREQ(tel::bulk_bucket_name(0), "bulk_batch_1");
  EXPECT_STREQ(tel::bulk_bucket_name(7), "bulk_batch_128_up");
  for (std::size_t b = 0; b < tel::kBulkBucketCount; ++b) {
    EXPECT_NE(tel::bulk_bucket_name(b), nullptr);
  }
}

TEST(TelemetryCounters, EnabledBlockCountsAndVisits) {
  tel::queue_counters<tel::enabled> c;
  c.on_gap_created();
  c.on_gap_created();
  c.on_consumer_skip();
  c.on_dwcas_retry();
  c.on_bulk(1);
  c.on_bulk(6);
  EXPECT_EQ(c.gaps_created(), 2u);
  EXPECT_EQ(c.consumer_skips(), 1u);
  EXPECT_EQ(c.dwcas_retries(), 1u);
  EXPECT_EQ(c.bulk_calls(), 2u);
  EXPECT_EQ(c.bulk_items(), 7u);
  EXPECT_EQ(c.bulk_batches(tel::bulk_bucket(1)), 1u);
  EXPECT_EQ(c.bulk_batches(tel::bulk_bucket(6)), 1u);

  std::map<std::string, std::uint64_t> seen;
  c.for_each([&](const char* name, std::uint64_t v) { seen[name] = v; });
  // 10 scalar counters + one entry per bulk bucket.
  EXPECT_EQ(seen.size(), 10u + tel::kBulkBucketCount);
  EXPECT_EQ(seen["gaps_created"], 2u);
  EXPECT_EQ(seen["bulk_items"], 7u);
  EXPECT_EQ(seen["bulk_batch_4_7"], 1u);
  EXPECT_EQ(seen["parks"], 0u);
}

// ---------------------------------------------------------------------------
// Histogram bucket math and percentiles
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, UnitBucketsAreExactBelowSubBucketCount) {
  using h = tel::log_histogram;
  for (std::uint64_t v = 0; v < h::kSubBuckets; ++v) {
    EXPECT_EQ(h::bucket_index(v), v);
    EXPECT_EQ(h::bucket_lower(v), v);
    EXPECT_EQ(h::bucket_width(v), 1u);
    EXPECT_EQ(h::bucket_mid(v), v);
  }
}

TEST(TelemetryHistogram, BucketLowerIsInverseOfBucketIndex) {
  using h = tel::log_histogram;
  for (std::uint64_t v :
       {std::uint64_t{8}, std::uint64_t{9}, std::uint64_t{100},
        std::uint64_t{1000}, std::uint64_t{1} << 20, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 40) + 12345, ~std::uint64_t{0}}) {
    const std::size_t idx = h::bucket_index(v);
    EXPECT_LT(idx, h::kBucketCount);
    EXPECT_LE(h::bucket_lower(idx), v) << v;
    // Overflow-safe form of lower + width > v (the top bucket's
    // lower + width wraps past UINT64_MAX).
    EXPECT_LT(v - h::bucket_lower(idx), h::bucket_width(idx)) << v;
    EXPECT_EQ(h::bucket_index(h::bucket_lower(idx)), idx) << v;
  }
}

TEST(TelemetryHistogram, RelativeErrorIsBoundedBySubBucketWidth) {
  using h = tel::log_histogram;
  for (std::uint64_t v = h::kSubBuckets; v < (std::uint64_t{1} << 24);
       v = v * 2 + 7) {
    const std::size_t idx = h::bucket_index(v);
    // Bucket width ≤ value / 2^kSubBits → ≤12.5% relative error.
    EXPECT_LE(h::bucket_width(idx), v / h::kSubBuckets + 1) << v;
  }
}

TEST(TelemetryHistogram, RecordTracksCountSumMax) {
  tel::log_histogram h;
  h.record(3);
  h.record(100);
  h.record(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(tel::log_histogram::bucket_index(3)), 1u);
}

TEST(TelemetryHistogram, PercentilesOnUniformDistribution) {
  tel::log_histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  tel::merged_histogram m;
  m.add(h);
  const auto s = m.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_EQ(s.mean, 500u);  // 500500/1000
  // Log-bucketed: each percentile is within one bucket (≤12.5%) of truth.
  EXPECT_NEAR(static_cast<double>(s.p50), 500.0, 500.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(s.p90), 900.0, 900.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(s.p99), 990.0, 990.0 * 0.125);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
}

TEST(TelemetryHistogram, PercentileClampsToObservedMax) {
  tel::log_histogram h;
  h.record(1000000);  // single sample: every percentile is that sample's
  tel::merged_histogram m;  // bucket mid, clamped to the exact max
  m.add(h);
  EXPECT_EQ(m.percentile(0.5), 1000000u);
  EXPECT_EQ(m.percentile(0.999), 1000000u);
  EXPECT_EQ(m.summary().p999, 1000000u);
}

TEST(TelemetryHistogram, MergeAccumulatesAcrossShards) {
  tel::log_histogram a, b;
  for (int i = 0; i < 10; ++i) a.record(10);
  for (int i = 0; i < 10; ++i) b.record(1000);
  tel::merged_histogram m;
  m.add(a);
  m.add(b);
  EXPECT_EQ(m.count(), 20u);
  const auto s = m.summary();
  EXPECT_EQ(s.max, 1000u);
  EXPECT_NEAR(static_cast<double>(s.p50), 10.0, 10.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(s.p99), 1000.0, 1000.0 * 0.125);
}

TEST(TelemetryHistogram, EmptyHistogramSummarizesToZeros) {
  tel::merged_histogram m;
  const auto s = m.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p999, 0u);
  EXPECT_EQ(m.percentile(0.99), 0u);
}

// ---------------------------------------------------------------------------
// Deterministic queue event counts (explicit enabled policy)
// ---------------------------------------------------------------------------

TEST(TelemetryQueues, SpscGapFullStallAndSkipCounts) {
  // Capacity-4 ring; the producer's 5th enqueue wraps onto occupied
  // cells, announces a gap at every slot (4 gaps), and then hits the
  // full-ring stall until the consumer frees a cell. The consumer later
  // walks over those same 4 gap ranks.
  spsc_q<tel::enabled> q(4);
  for (u64 v = 0; v < 4; ++v) q.enqueue(v);

  std::thread producer([&] { q.enqueue(4); });
  while (q.telemetry().full_stalls() == 0) std::this_thread::yield();

  std::vector<u64> got;
  u64 out = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.dequeue(out));
    got.push_back(out);
  }
  producer.join();

  EXPECT_EQ(got, (std::vector<u64>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.gaps_created(), 4u);
  EXPECT_EQ(q.consumer_skips(), 4u);
  EXPECT_GE(q.telemetry().full_stalls(), 1u);
  EXPECT_EQ(q.telemetry().dwcas_retries(), 0u);  // never in SP variants
}

TEST(TelemetryQueues, SpmcBulkCountsBatchesAndBlockFaa) {
  spmc_q<tel::enabled> q(8);
  const u64 in[4] = {1, 2, 3, 4};
  q.enqueue_bulk(in, 4);
  u64 out[4] = {};
  ASSERT_EQ(q.dequeue_bulk(out, 4), 4u);

  const auto& t = q.telemetry();
  EXPECT_EQ(t.bulk_calls(), 2u);  // one enqueue_bulk + one dequeue_bulk
  EXPECT_EQ(t.bulk_items(), 8u);
  EXPECT_EQ(t.bulk_batches(tel::bulk_bucket(4)), 2u);
  EXPECT_GE(t.rank_block_faas(), 1u);  // dequeue claimed a 4-rank block
  EXPECT_EQ(t.gaps_created(), 0u);
  EXPECT_EQ(t.consumer_skips(), 0u);
}

TEST(TelemetryQueues, MpmcBulkCountsAndNoRetriesWithoutContention) {
  mpmc_q<tel::enabled> q(8);
  const u64 in[4] = {1, 2, 3, 4};
  q.enqueue_bulk(in, 4);
  u64 out[4] = {};
  ASSERT_EQ(q.dequeue_bulk(out, 4), 4u);

  const auto& t = q.telemetry();
  EXPECT_EQ(t.bulk_calls(), 2u);
  EXPECT_EQ(t.bulk_items(), 8u);
  EXPECT_GE(t.rank_block_faas(), 2u);  // tail block(s) + head block
  EXPECT_EQ(t.dwcas_retries(), 0u);    // single thread: no lost races
  EXPECT_EQ(t.gaps_created(), 0u);
}

TEST(TelemetryQueues, WaitableCountsParksAndWakes) {
  waitable_q<tel::enabled> q(8);
  std::atomic<u64> got{0};
  std::thread consumer([&] {
    u64 out = 0;
    ASSERT_TRUE(q.dequeue(out));
    got.store(out);
  });
  // Wait until the consumer is actually parked so the enqueue both
  // counts a wake and issues a futex wake.
  while (q.approx_waiters() == 0) std::this_thread::yield();
  q.enqueue(42);
  consumer.join();

  EXPECT_EQ(got.load(), 42u);
  EXPECT_GE(q.telemetry().parks(), 1u);
  EXPECT_GE(q.telemetry().wakes(), 1u);
}

TEST(TelemetryQueues, DisabledPolicyQueueStaysSilent) {
  spsc_q<tel::disabled> q(8);
  q.enqueue(7);
  u64 out = 0;
  ASSERT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(q.gaps_created(), 0u);
  int visits = 0;
  q.telemetry().for_each([&](const char*, std::uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

// ---------------------------------------------------------------------------
// Registry + snapshot export pipeline
// ---------------------------------------------------------------------------

TEST(TelemetryRegistry, AccumulateFoldsIntoDomainSlashName) {
  auto& reg = tel::registry::instance();
  reg.reset();
  reg.accumulate("queue.test", "gaps_created", 3);
  reg.accumulate("queue.test", "gaps_created", 2);
  reg.accumulate("queue.other", "parks", 1);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("queue.test/gaps_created"), 5u);
  EXPECT_EQ(snap.counters.at("queue.other/parks"), 1u);
  EXPECT_EQ(snap.counters.size(), 2u);
}

TEST(TelemetryRegistry, AccumulateQueueSkipsZeroCounters) {
  auto& reg = tel::registry::instance();
  reg.reset();
  tel::queue_counters<tel::enabled> c;
  c.on_gap_created();
  c.on_bulk(4);
  reg.accumulate_queue("queue.unit", c);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("queue.unit/gaps_created"), 1u);
  EXPECT_EQ(snap.counters.at("queue.unit/bulk_calls"), 1u);
  EXPECT_EQ(snap.counters.at("queue.unit/bulk_items"), 4u);
  EXPECT_EQ(snap.counters.at("queue.unit/bulk_batch_4_7"), 1u);
  // Zero-valued counters (skips, retries, parks, ...) must not pollute
  // the export.
  EXPECT_EQ(snap.counters.count("queue.unit/consumer_skips"), 0u);
  EXPECT_EQ(snap.counters.size(), 4u);
}

TEST(TelemetryRegistry, DisabledBlockAccumulatesNothing) {
  auto& reg = tel::registry::instance();
  reg.reset();
  tel::queue_counters<tel::disabled> c;
  reg.accumulate_queue("queue.unit", c);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(TelemetryRegistry, RecorderMergesShardsFromManyThreads) {
  auto& reg = tel::registry::instance();
  reg.reset();
  auto& rec = reg.recorder("unit.latency_ns");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      tel::log_histogram* shard = rec.new_shard();
      for (int i = 0; i < kPerThread; ++i) {
        shard->record(static_cast<std::uint64_t>(100 * (t + 1)));
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto m = rec.merge();
  EXPECT_EQ(m.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.count("unit.latency_ns"), 1u);
  EXPECT_EQ(snap.histograms.at("unit.latency_ns").count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.histograms.at("unit.latency_ns").max, 400u);
}

TEST(TelemetryRegistry, SameNameReturnsSameRecorder) {
  auto& reg = tel::registry::instance();
  reg.reset();
  EXPECT_EQ(&reg.recorder("a"), &reg.recorder("a"));
  EXPECT_NE(&reg.recorder("a"), &reg.recorder("b"));
}

TEST(TelemetryRegistry, PerfSamplesLastWriteWins) {
  auto& reg = tel::registry::instance();
  reg.reset();
  reg.set_perf_sample("cycles", 100);
  reg.set_perf_sample("cycles", 200);
  reg.set_perf_sample("instructions", 50);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.perf.at("cycles"), 200u);
  EXPECT_EQ(snap.perf.at("instructions"), 50u);
}

TEST(TelemetryRegistry, ResetClearsEverything) {
  auto& reg = tel::registry::instance();
  reg.reset();
  reg.accumulate("d", "n", 1);
  reg.recorder("r").new_shard()->record(5);
  reg.set_perf_sample("cycles", 1);
  EXPECT_FALSE(reg.snapshot().empty());
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(TelemetryJson, EscapeHandlesControlCharsQuotesAndBackslashes) {
  EXPECT_EQ(tel::json_escape("plain"), "plain");
  EXPECT_EQ(tel::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(tel::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(tel::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(tel::json_escape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(tel::json_escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

TEST(TelemetryJson, SnapshotSerializesDeterministically) {
  tel::metrics_snapshot snap;
  snap.counters["b/y"] = 2;
  snap.counters["a/x"] = 1;
  snap.histograms["lat"] = tel::histogram_summary{4, 40, 20, 10, 30, 39, 40};
  snap.perf["cycles"] = 123;

  const std::string expected =
      "{\n"
      "  \"schema\": \"ffq.metrics.v1\",\n"
      "  \"counters\": {\n"
      "    \"a/x\": 1,\n"
      "    \"b/y\": 2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"lat\": {\n"
      "      \"count\": 4,\n"
      "      \"max\": 40,\n"
      "      \"mean\": 20,\n"
      "      \"p50\": 10,\n"
      "      \"p90\": 30,\n"
      "      \"p99\": 39,\n"
      "      \"p999\": 40\n"
      "    }\n"
      "  },\n"
      "  \"perf\": {\n"
      "    \"cycles\": 123\n"
      "  }\n"
      "}";
  EXPECT_EQ(snap.to_json(0), expected);
}

TEST(TelemetryJson, EmptySnapshotStillCarriesSchema) {
  tel::metrics_snapshot snap;
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.to_json(0),
            "{\n"
            "  \"schema\": \"ffq.metrics.v1\",\n"
            "  \"counters\": {},\n"
            "  \"histograms\": {},\n"
            "  \"perf\": {}\n"
            "}");
}

TEST(TelemetryJson, IndentShiftsEveryLineForEmbedding) {
  tel::metrics_snapshot snap;
  snap.counters["a"] = 1;
  const std::string j = snap.to_json(2);
  EXPECT_NE(j.find("\n    \"schema\""), std::string::npos);
  EXPECT_NE(j.find("\n      \"a\": 1"), std::string::npos);
  EXPECT_EQ(j.back(), '}');
}

// End-to-end: a real instrumented queue drained by the harness pattern —
// fold counters into the registry right before the queue dies, snapshot
// after, and the totals survive the queue's destruction.
TEST(TelemetryPipeline, CountersOutliveTheQueue) {
  auto& reg = tel::registry::instance();
  reg.reset();
  {
    spsc_q<tel::enabled> q(4);
    for (u64 v = 0; v < 4; ++v) q.enqueue(v);
    std::thread producer([&] { q.enqueue(4); });
    while (q.telemetry().full_stalls() == 0) std::this_thread::yield();
    u64 out = 0;
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.dequeue(out));
    producer.join();
    reg.accumulate_queue("queue.ffq-spsc", q.telemetry());
  }
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("queue.ffq-spsc/gaps_created"), 4u);
  EXPECT_EQ(snap.counters.at("queue.ffq-spsc/consumer_skips"), 4u);
  EXPECT_GE(snap.counters.at("queue.ffq-spsc/full_stalls"), 1u);
  reg.reset();
}
