// Tests for the related-work SPSC queues (§II): Lamport, FastForward,
// MCRingBuffer, B-Queue, BatchQueue. A shared template drives the common
// checks; queue-specific quirks (flush, sentinels, batching) get their
// own tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ffq/baselines/spsc/batchqueue.hpp"
#include "ffq/baselines/spsc/bqueue.hpp"
#include "ffq/baselines/spsc/fastforward.hpp"
#include "ffq/baselines/spsc/lamport.hpp"
#include "ffq/baselines/spsc/mcringbuffer.hpp"

using namespace ffq::baselines;

// ---------------------------------------------------------------------------
// Typed battery: FIFO order, full/empty signalling, wrap-around, and a
// concurrent stream with conservation. Payloads are 1-based so the zero
// sentinel of FastForward/B-Queue never collides.
// ---------------------------------------------------------------------------

template <typename Q>
struct spsc_driver;  // per-queue glue: construction + flush semantics

template <>
struct spsc_driver<lamport_queue<std::uint64_t>> {
  static lamport_queue<std::uint64_t> make(std::size_t cap) {
    return lamport_queue<std::uint64_t>(cap);
  }
  static void flush(lamport_queue<std::uint64_t>&) {}
};

template <>
struct spsc_driver<fastforward_queue<std::uint64_t>> {
  static fastforward_queue<std::uint64_t> make(std::size_t cap) {
    return fastforward_queue<std::uint64_t>(cap);
  }
  static void flush(fastforward_queue<std::uint64_t>&) {}
};

template <>
struct spsc_driver<mcring_queue<std::uint64_t>> {
  static mcring_queue<std::uint64_t> make(std::size_t cap) {
    return mcring_queue<std::uint64_t>(cap, /*batch=*/4);
  }
  static void flush(mcring_queue<std::uint64_t>& q) { q.flush_producer(); }
};

template <>
struct spsc_driver<bqueue<std::uint64_t>> {
  static bqueue<std::uint64_t> make(std::size_t cap) {
    return bqueue<std::uint64_t>(cap, /*batch=*/4);
  }
  static void flush(bqueue<std::uint64_t>&) {}
};

template <>
struct spsc_driver<batchqueue<std::uint64_t>> {
  static batchqueue<std::uint64_t> make(std::size_t cap) {
    return batchqueue<std::uint64_t>(cap);
  }
  static void flush(batchqueue<std::uint64_t>& q) {
    while (!q.flush_producer()) std::this_thread::yield();
  }
};

template <typename Q>
class SpscFamily : public ::testing::Test {};

using SpscTypes =
    ::testing::Types<lamport_queue<std::uint64_t>,
                     fastforward_queue<std::uint64_t>,
                     mcring_queue<std::uint64_t>, bqueue<std::uint64_t>,
                     batchqueue<std::uint64_t>>;
TYPED_TEST_SUITE(SpscFamily, SpscTypes);

TYPED_TEST(SpscFamily, EmptyDequeueFails) {
  auto q = spsc_driver<TypeParam>::make(64);
  std::uint64_t out = 0;
  EXPECT_FALSE(q.try_dequeue(out));
}

TYPED_TEST(SpscFamily, FifoOrderWithFlush) {
  auto q = spsc_driver<TypeParam>::make(64);
  for (std::uint64_t i = 1; i <= 20; ++i) ASSERT_TRUE(q.try_enqueue(i));
  spsc_driver<TypeParam>::flush(q);
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(q.try_dequeue(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_dequeue(out));
}

TYPED_TEST(SpscFamily, ReportsFullEventually) {
  auto q = spsc_driver<TypeParam>::make(16);
  std::uint64_t pushed = 0;
  while (q.try_enqueue(pushed + 1)) {
    ++pushed;
    ASSERT_LE(pushed, 16u) << "accepted more items than capacity";
  }
  // Batching designs may report full before the ring is exactly full,
  // but at least half the capacity must be usable.
  EXPECT_GE(pushed, 8u);
}

TYPED_TEST(SpscFamily, ConcurrentStreamConservesEverything) {
  auto q = spsc_driver<TypeParam>::make(256);
  constexpr std::uint64_t kItems = 200000;
  std::uint64_t sum = 0, count = 0;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    std::uint64_t out, prev = 0;
    for (;;) {
      if (q.try_dequeue(out)) {
        ASSERT_GT(out, prev) << "FIFO violation";
        prev = out;
        sum += out;
        ++count;
        if (count == kItems) return;
      } else if (done.load(std::memory_order_acquire) && count < kItems) {
        // Producer finished; drain what remains, then re-check.
        if (!q.try_dequeue(out)) {
          std::this_thread::yield();
        } else {
          ASSERT_GT(out, prev);
          prev = out;
          sum += out;
          ++count;
          if (count == kItems) return;
        }
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::uint64_t i = 1; i <= kItems; ++i) {
    while (!q.try_enqueue(i)) std::this_thread::yield();
  }
  spsc_driver<TypeParam>::flush(q);
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

// ---------------------------------------------------------------------------
// Queue-specific behaviour.
// ---------------------------------------------------------------------------

TEST(Lamport, UsesWholeCapacity) {
  lamport_queue<std::uint64_t> q(8);
  for (std::uint64_t i = 1; i <= 8; ++i) EXPECT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(9));
  std::uint64_t out;
  EXPECT_TRUE(q.try_dequeue(out));
  EXPECT_TRUE(q.try_enqueue(9));
}

TEST(FastForward, InBandSentinelDetectsFullAndEmpty) {
  fastforward_queue<std::uint64_t> q(4);
  std::uint64_t out;
  EXPECT_FALSE(q.try_dequeue(out));
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_enqueue(5)) << "cell still occupied -> full";
  EXPECT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(q.try_enqueue(5));
}

TEST(McRingBuffer, ItemsInvisibleUntilBatchBoundaryOrFlush) {
  mcring_queue<std::uint64_t> q(64, /*batch=*/8);
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 3; ++i) ASSERT_TRUE(q.try_enqueue(i));
  EXPECT_FALSE(q.try_dequeue(out)) << "3 < batch: nothing published yet";
  q.flush_producer();
  EXPECT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 1u);
  // Crossing the batch boundary publishes automatically.
  for (std::uint64_t i = 4; i <= 12; ++i) ASSERT_TRUE(q.try_enqueue(i));
  EXPECT_TRUE(q.try_dequeue(out));
}

TEST(McRingBuffer, ConsumerBatchingDelaysSlotReuse) {
  mcring_queue<std::uint64_t> q(8, /*batch=*/8);
  for (std::uint64_t i = 1; i <= 8; ++i) ASSERT_TRUE(q.try_enqueue(i));
  q.flush_producer();
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(q.try_dequeue(out));
  // Consumer freed 4 slots locally but hasn't published; producer must
  // still see the ring as full.
  EXPECT_FALSE(q.try_enqueue(9));
  q.flush_consumer();
  EXPECT_TRUE(q.try_enqueue(9));
}

TEST(BQueue, BacktrackingFindsPartialBatch) {
  bqueue<std::uint64_t> q(64, /*batch=*/16);
  // Publish fewer items than one consumer batch.
  for (std::uint64_t i = 1; i <= 3; ++i) ASSERT_TRUE(q.try_enqueue(i));
  std::uint64_t out;
  EXPECT_TRUE(q.try_dequeue(out)) << "backtracking must halve down to 2";
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 2u);
}

TEST(BatchQueue, HalvesAlternate) {
  batchqueue<std::uint64_t> q(8);  // halves of 4
  std::uint64_t out;
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(q.try_enqueue(i));
  // First half auto-published when it filled; second half open.
  EXPECT_TRUE(q.try_dequeue(out));
  EXPECT_EQ(out, 1u);
  for (std::uint64_t i = 5; i <= 8; ++i) ASSERT_TRUE(q.try_enqueue(i));
  // Half B filled while half A still has unconsumed items, so its eager
  // publication failed — items 5..8 stay invisible until the consumer
  // returns half A and the producer flushes.
  for (std::uint64_t expect = 2; expect <= 4; ++expect) {
    ASSERT_TRUE(q.try_dequeue(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(q.try_dequeue(out)) << "half B not published yet";
  EXPECT_TRUE(q.flush_producer());
  for (std::uint64_t expect = 5; expect <= 8; ++expect) {
    ASSERT_TRUE(q.try_dequeue(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(q.try_dequeue(out));
}
