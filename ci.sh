#!/usr/bin/env bash
# ci.sh — the checks a PR must pass.
#
#  1. tier-1 verify: full RelWithDebInfo build + the whole ctest suite
#     (FFQ_TELEMETRY=OFF, the default — the zero-cost configuration);
#  2. telemetry leg: the same build + full suite with FFQ_TELEMETRY=ON,
#     so both sides of the compile-time policy stay green;
#  3. trace leg: full build + suite with FFQ_TRACE=ON (and telemetry ON,
#     so both hook families coexist), then an end-to-end check: the MPMC
#     trace_stress tool exports a Perfetto trace that trace_check must
#     validate (per-producer FIFO, no loss, no duplication);
#  4. TSan sweep: the core queue test binaries plus the telemetry suite
#     rebuilt with -fsanitize=thread (telemetry ON, so the instrumented
#     hot paths are the ones checked) and run to completion — any
#     reported race fails the script.
#
# Usage: ./ci.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${1:-$(nproc)}"

echo "=== tier-1: build + full test suite (FFQ_TELEMETRY=OFF) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== telemetry: build + full test suite (FFQ_TELEMETRY=ON) ==="
cmake --preset telemetry >/dev/null
cmake --build build-telemetry -j "$JOBS"
ctest --test-dir build-telemetry --output-on-failure -j "$JOBS"

echo "=== trace: build + full test suite (FFQ_TRACE=ON) ==="
cmake --preset trace >/dev/null
cmake --build build-trace -j "$JOBS"
ctest --test-dir build-trace --output-on-failure -j "$JOBS"
echo "--- trace end-to-end: MPMC stress -> Perfetto export -> trace_check ---"
TRACE_OUT="build-trace/ci_mpmc_trace.json"
./build-trace/tools/trace_stress --trace="$TRACE_OUT" \
  --producers=2 --consumers=2 --items=4000
./build-trace/tools/trace_check --expect-drained "$TRACE_OUT"

echo "=== tsan: queue + telemetry suites under ThreadSanitizer ==="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_spsc test_spmc test_mpmc test_waitable test_telemetry
for t in test_spsc test_spmc test_mpmc test_waitable test_telemetry; do
  echo "--- $t (tsan) ---"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done

echo "ci.sh: all checks passed"
