#!/usr/bin/env bash
# ci.sh — the checks a PR must pass.
#
#  1. tier-1 verify: full RelWithDebInfo build + the whole ctest suite;
#  2. TSan sweep: the three core queue test binaries (test_spsc,
#     test_spmc, test_mpmc) rebuilt with -fsanitize=thread and run to
#     completion — any reported race fails the script.
#
# Usage: ./ci.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${1:-$(nproc)}"

echo "=== tier-1: build + full test suite ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== tsan: core queue suites under ThreadSanitizer ==="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_spsc test_spmc test_mpmc
for t in test_spsc test_spmc test_mpmc; do
  echo "--- $t (tsan) ---"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done

echo "ci.sh: all checks passed"
