#!/usr/bin/env bash
# ci.sh — the checks a PR must pass, as six independently runnable legs.
#
#  tier1     full RelWithDebInfo build + the whole ctest suite
#            (FFQ_TELEMETRY=OFF, the default — the zero-cost
#            configuration), then the bench smoke-regression gate:
#            bench_batch_ops and bench_telemetry_overhead run in --quick
#            mode and tools/bench_gate.py fails the leg when the median
#            row ratio against the committed BENCH_*.json baselines
#            drops more than 25% (tolerance rationale in bench_gate.py);
#  telemetry the same build + full suite with FFQ_TELEMETRY=ON, so both
#            sides of the compile-time policy stay green;
#  trace     full build + suite with FFQ_TRACE=ON (and telemetry ON, so
#            both hook families coexist), then an end-to-end check: the
#            MPMC trace_stress tool exports a Perfetto trace that
#            trace_check must validate (per-producer FIFO, no loss, no
#            duplication);
#  tsan      the core queue + shard + telemetry suites rebuilt with
#            -fsanitize=thread (telemetry ON, so the instrumented hot
#            paths are the ones checked) and run to completion, plus
#            trace_stress as a multi-threaded race hunt —
#            halt_on_error=1 turns any reported race into failure;
#  asan      the same binaries under -fsanitize=address,undefined
#            (-fno-sanitize-recover=all, so UB aborts too): buffer and
#            lifetime bugs the race hunt can't see;
#  check     FFQ_CHECK=ON build + full suite with live yield points,
#            then check_explore end to end — exhaustive
#            preemption-bound-2 DFS over the SPSC, SPMC, and shard-
#            scheduler models, a seeded schedule fuzz of every real
#            queue (both fabric modes included via --queue all), and a
#            mutation-catch gate: an intentionally injected line-29 bug
#            must be caught with a schedule string that replays to the
#            same violation.
#
# Usage: ./ci.sh [options] [jobs]
#   --leg NAME   run only this leg (repeatable, or comma-separated;
#                names: tier1 telemetry trace tsan asan check)
#   --fresh      wipe each selected leg's build directory first
#   --jobs N     parallel build/test jobs (default: nproc; bare numeric
#                positional argument still works)
#
# Each leg's build tree is reused across runs. Before reusing one, the
# leg's defining FFQ_* options are checked against the existing
# CMakeCache.txt; a stale cache (e.g. build-check configured while
# FFQ_CHECK was OFF) is detected and reconfigured from scratch instead
# of silently testing the wrong configuration.
set -euo pipefail
cd "$(dirname "$0")"

ALL_LEGS=(tier1 telemetry trace tsan asan check)
LEGS=()
FRESH=0
JOBS="$(nproc)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --leg)
      [[ $# -ge 2 ]] || { echo "ci.sh: --leg needs a name" >&2; exit 2; }
      IFS=',' read -ra parts <<< "$2"
      LEGS+=("${parts[@]}")
      shift 2 ;;
    --leg=*)
      IFS=',' read -ra parts <<< "${1#--leg=}"
      LEGS+=("${parts[@]}")
      shift ;;
    --fresh) FRESH=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    --jobs=*) JOBS="${1#--jobs=}"; shift ;;
    -h|--help) sed -n '2,48p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    [0-9]*) JOBS="$1"; shift ;;  # legacy: ./ci.sh 8
    *) echo "ci.sh: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done
[[ ${#LEGS[@]} -gt 0 ]] || LEGS=("${ALL_LEGS[@]}")
for leg in "${LEGS[@]}"; do
  [[ " ${ALL_LEGS[*]} " == *" $leg "* ]] ||
    { echo "ci.sh: unknown leg '$leg' (have: ${ALL_LEGS[*]})" >&2; exit 2; }
done

# Pick up ccache transparently when present (the GitHub workflow
# installs it); local runs without ccache are unaffected.
EXTRA_CMAKE_ARGS=()
if command -v ccache >/dev/null 2>&1; then
  EXTRA_CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# configure <preset> <builddir> <VAR=VAL>...
# Reuses an existing build tree only when every leg-defining cache
# option still matches; otherwise (drift, or --fresh) reconfigures from
# an empty directory.
configure() {
  local preset="$1" dir="$2"; shift 2
  if [[ $FRESH -eq 1 ]]; then
    echo "--- $preset: --fresh, wiping $dir ---"
    rm -rf "$dir"
  elif [[ -f "$dir/CMakeCache.txt" ]]; then
    local kv var want have
    for kv in "$@"; do
      var="${kv%%=*}" want="${kv#*=}"
      have="$(sed -n "s/^${var}:[A-Z]*=//p" "$dir/CMakeCache.txt" | head -n 1)"
      if [[ "${have:-unset}" != "$want" ]]; then
        echo "--- $preset: cache drift ($var=${have:-unset}, want $want)," \
             "reconfiguring $dir from scratch ---"
        rm -rf "$dir"
        break
      fi
    done
  fi
  cmake --preset "$preset" "${EXTRA_CMAKE_ARGS[@]}" >/dev/null
}

leg_tier1() {
  configure default build \
    FFQ_TELEMETRY=OFF FFQ_TRACE=OFF FFQ_CHECK=OFF \
    FFQ_SANITIZE_THREAD=OFF FFQ_SANITIZE_ADDRESS=OFF
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
  echo "--- bench smoke gate: quick runs vs committed BENCH_*.json ---"
  ./build/bench/bench_batch_ops --quick \
    --json build/bench_batch_ops.quick.json
  python3 tools/bench_gate.py --baseline BENCH_batch_ops.json \
    --current build/bench_batch_ops.quick.json \
    --key queue,batch,consumers --metric items_per_sec --direction higher
  ./build/bench/bench_telemetry_overhead --quick \
    --json build/bench_telemetry_overhead.quick.json
  python3 tools/bench_gate.py --baseline BENCH_telemetry_overhead.json \
    --current build/bench_telemetry_overhead.quick.json \
    --key queue --metric "enabled ns/op" --direction lower
}

leg_telemetry() {
  configure telemetry build-telemetry FFQ_TELEMETRY=ON FFQ_TRACE=OFF
  cmake --build build-telemetry -j "$JOBS"
  ctest --test-dir build-telemetry --output-on-failure -j "$JOBS"
}

leg_trace() {
  configure trace build-trace FFQ_TRACE=ON FFQ_TELEMETRY=ON
  cmake --build build-trace -j "$JOBS"
  ctest --test-dir build-trace --output-on-failure -j "$JOBS"
  echo "--- trace end-to-end: MPMC stress -> Perfetto export -> trace_check ---"
  local trace_out="build-trace/ci_mpmc_trace.json"
  ./build-trace/tools/trace_stress --trace="$trace_out" \
    --producers=2 --consumers=2 --items=4000
  ./build-trace/tools/trace_check --expect-drained "$trace_out"
}

# The binaries both sanitizer legs build and run: the scalar queue
# suites, the shard fabric suite, the wait/park paths, and telemetry.
SAN_TESTS=(test_spsc test_spmc test_mpmc test_shard test_waitable
           test_eventcount test_telemetry)

leg_tsan() {
  configure tsan build-tsan FFQ_SANITIZE_THREAD=ON FFQ_TELEMETRY=ON
  cmake --build build-tsan -j "$JOBS" \
    --target "${SAN_TESTS[@]}" trace_stress
  local t
  for t in "${SAN_TESTS[@]}"; do
    echo "--- $t (tsan) ---"
    TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
  done
  echo "--- trace_stress (tsan): MPMC contention as a race hunt ---"
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/trace_stress \
    --trace=build-tsan/tsan_stress_trace.json \
    --producers=2 --consumers=2 --items=20000
}

leg_asan() {
  configure asan build-asan FFQ_SANITIZE_ADDRESS=ON FFQ_TELEMETRY=ON
  cmake --build build-asan -j "$JOBS" \
    --target "${SAN_TESTS[@]}" trace_stress
  local t
  for t in "${SAN_TESTS[@]}"; do
    echo "--- $t (asan+ubsan) ---"
    "./build-asan/tests/$t"
  done
  echo "--- trace_stress (asan+ubsan): MPMC stress for lifetime bugs ---"
  ./build-asan/tools/trace_stress \
    --trace=build-asan/asan_stress_trace.json \
    --producers=2 --consumers=2 --items=20000
}

leg_check() {
  configure check build-check FFQ_CHECK=ON
  cmake --build build-check -j "$JOBS"
  ctest --test-dir build-check --output-on-failure -j "$JOBS"
  echo "--- exhaustive: bound-2 DFS over the SPSC, SPMC, shard models ---"
  ./build-check/tools/check_explore --model spsc --bound 2
  ./build-check/tools/check_explore --model spmc --bound 2
  ./build-check/tools/check_explore --model shard --bound 2
  ./build-check/tools/check_explore --model mpmc --fuzz 2000 --seed 1
  echo "--- seeded fuzz: 10000 schedules over every real queue ---"
  ./build-check/tools/check_explore --queue all --fuzz 10000 --seed 1
  echo "--- mutation gate: injected line-29 bug must be caught and replay ---"
  local mut_out="build-check/mutation_catch.out"
  if ./build-check/tools/check_explore --model spmc \
       --mutate skip_line29_recheck --bound 2 | tee "$mut_out"; then
    echo "ci.sh: FAIL — injected mutation was not caught"
    return 1
  fi
  local mut_sched
  mut_sched=$(sed -n 's/^  schedule: //p' "$mut_out" | head -n 1)
  test -n "$mut_sched"
  if ./build-check/tools/check_explore --model spmc \
       --mutate skip_line29_recheck --replay "$mut_sched"; then
    echo "ci.sh: FAIL — witness schedule did not reproduce the violation"
    return 1
  fi
  echo "mutation caught and reproduced by schedule $mut_sched"
}

TIMING_REPORT=()
for leg in "${LEGS[@]}"; do
  echo
  echo "=== leg: $leg ==="
  leg_start=$(date +%s)
  "leg_$leg"
  leg_secs=$(( $(date +%s) - leg_start ))
  TIMING_REPORT+=("$(printf '%-10s %4ds' "$leg" "$leg_secs")")
done

echo
echo "=== leg timings ==="
for line in "${TIMING_REPORT[@]}"; do echo "  $line"; done
echo "ci.sh: all selected legs passed (${LEGS[*]})"
