#!/usr/bin/env bash
# ci.sh — the checks a PR must pass.
#
#  1. tier-1 verify: full RelWithDebInfo build + the whole ctest suite
#     (FFQ_TELEMETRY=OFF, the default — the zero-cost configuration);
#  2. telemetry leg: the same build + full suite with FFQ_TELEMETRY=ON,
#     so both sides of the compile-time policy stay green;
#  3. trace leg: full build + suite with FFQ_TRACE=ON (and telemetry ON,
#     so both hook families coexist), then an end-to-end check: the MPMC
#     trace_stress tool exports a Perfetto trace that trace_check must
#     validate (per-producer FIFO, no loss, no duplication);
#  4. TSan sweep: the core queue test binaries plus the telemetry suite
#     rebuilt with -fsanitize=thread (telemetry ON, so the instrumented
#     hot paths are the ones checked) and run to completion, plus the
#     MPMC trace_stress tool as a multi-threaded stress under TSan —
#     halt_on_error=1 turns any reported race into a nonzero exit;
#  5. check leg: FFQ_CHECK=ON build + full suite with live yield points,
#     then check_explore end to end — exhaustive preemption-bound-2 DFS
#     over the SPSC and SPMC models, a 10k-schedule seeded fuzz of all
#     four real queues, and a mutation-catch gate: an intentionally
#     injected line-29 bug must be caught with a schedule string that
#     replays to the same violation.
#
# Usage: ./ci.sh [jobs]   (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${1:-$(nproc)}"

echo "=== tier-1: build + full test suite (FFQ_TELEMETRY=OFF) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== telemetry: build + full test suite (FFQ_TELEMETRY=ON) ==="
cmake --preset telemetry >/dev/null
cmake --build build-telemetry -j "$JOBS"
ctest --test-dir build-telemetry --output-on-failure -j "$JOBS"

echo "=== trace: build + full test suite (FFQ_TRACE=ON) ==="
cmake --preset trace >/dev/null
cmake --build build-trace -j "$JOBS"
ctest --test-dir build-trace --output-on-failure -j "$JOBS"
echo "--- trace end-to-end: MPMC stress -> Perfetto export -> trace_check ---"
TRACE_OUT="build-trace/ci_mpmc_trace.json"
./build-trace/tools/trace_stress --trace="$TRACE_OUT" \
  --producers=2 --consumers=2 --items=4000
./build-trace/tools/trace_check --expect-drained "$TRACE_OUT"

echo "=== tsan: queue + telemetry suites under ThreadSanitizer ==="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target test_spsc test_spmc test_mpmc test_waitable test_eventcount \
           test_telemetry trace_stress
for t in test_spsc test_spmc test_mpmc test_waitable test_eventcount \
         test_telemetry; do
  echo "--- $t (tsan) ---"
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t"
done
echo "--- trace_stress (tsan): MPMC contention as a race hunt ---"
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tools/trace_stress \
  --trace=build-tsan/tsan_stress_trace.json \
  --producers=2 --consumers=2 --items=20000

echo "=== check: deterministic schedule exploration (FFQ_CHECK=ON) ==="
cmake --preset check >/dev/null
cmake --build build-check -j "$JOBS"
ctest --test-dir build-check --output-on-failure -j "$JOBS"
echo "--- exhaustive: preemption-bound-2 DFS over the SPSC + SPMC models ---"
./build-check/tools/check_explore --model spsc --bound 2
./build-check/tools/check_explore --model spmc --bound 2
./build-check/tools/check_explore --model mpmc --fuzz 2000 --seed 1
echo "--- seeded fuzz: 10000 schedules over every real queue ---"
./build-check/tools/check_explore --queue all --fuzz 10000 --seed 1
echo "--- mutation gate: injected line-29 bug must be caught and replay ---"
MUT_OUT="build-check/mutation_catch.out"
if ./build-check/tools/check_explore --model spmc \
     --mutate skip_line29_recheck --bound 2 | tee "$MUT_OUT"; then
  echo "ci.sh: FAIL — injected mutation was not caught"
  exit 1
fi
MUT_SCHED=$(sed -n 's/^  schedule: //p' "$MUT_OUT" | head -n 1)
test -n "$MUT_SCHED"
if ./build-check/tools/check_explore --model spmc \
     --mutate skip_line29_recheck --replay "$MUT_SCHED"; then
  echo "ci.sh: FAIL — witness schedule did not reproduce the violation"
  exit 1
fi
echo "mutation caught and reproduced by schedule $MUT_SCHED"

echo "ci.sh: all checks passed"
