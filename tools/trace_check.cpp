// trace_check — offline validator for exported "ffq.trace.v1" files.
//
// Parses the document with the strict RFC 8259 reader (a parse failure
// is itself a finding: the export must be standards-clean), replays the
// queue events through ffq::trace::validate_trace, and reports:
//
//   * per-producer FIFO order of published ranks,
//   * no rank consumed twice, none fabricated,
//   * no rank lost (only asserted for drained traces with no ring drops),
//   * per-thread seq continuity (gaps = records lost to ring overwrite).
//
// Usage: trace_check [--expect-drained] FILE
// Exit status: 0 = valid, 1 = violations found, 2 = unreadable/usage.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ffq/trace/json_reader.hpp"
#include "ffq/trace/validate.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: trace_check [--expect-drained] FILE\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool expect_drained = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect-drained") {
      expect_drained = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  const auto doc = ffq::trace::json::parse(text);
  if (!doc.ok) {
    std::fprintf(stderr, "trace_check: %s: JSON parse error: %s\n",
                 path.c_str(), doc.error.c_str());
    return 1;
  }
  if (doc.root["schema"].as_string() != ffq::trace::kTraceSchema) {
    std::fprintf(stderr, "trace_check: %s: schema is \"%s\", expected \"%s\"\n",
                 path.c_str(), doc.root["schema"].as_string().c_str(),
                 ffq::trace::kTraceSchema);
    return 1;
  }
  const auto& events = doc.root["traceEvents"];
  if (!events.is_array()) {
    std::fprintf(stderr, "trace_check: %s: traceEvents is not an array\n",
                 path.c_str());
    return 1;
  }

  // Cross-thread file order is irrelevant: the validator replays each
  // thread in seq (program) order, since start-timestamped duration
  // records interleave with mid-operation instants in the tsc merge.
  std::vector<ffq::trace::trace_op> ops;
  ops.reserve(events.as_array().size());
  for (const auto& e : events.as_array()) {
    if (e["cat"].as_string() != "queue") continue;  // metadata, counters
    ffq::trace::trace_op op;
    op.tid = static_cast<std::uint32_t>(e["tid"].as_int());
    op.seq = static_cast<std::uint64_t>(e["args"]["seq"].as_int());
    op.type = e["name"].as_string();
    op.queue = e["args"]["queue"].as_string();
    op.rank = e["args"]["rank"].as_int();
    ops.push_back(std::move(op));
  }

  const auto rep = ffq::trace::validate_trace(ops, expect_drained);
  std::printf(
      "trace_check: %s: %zu queue events "
      "(%llu enqueue, %llu dequeue, %llu instant), %llu dropped, "
      "%llu unconsumed\n",
      path.c_str(), ops.size(),
      static_cast<unsigned long long>(rep.enqueues),
      static_cast<unsigned long long>(rep.dequeues),
      static_cast<unsigned long long>(rep.instants),
      static_cast<unsigned long long>(rep.dropped),
      static_cast<unsigned long long>(rep.lost));
  for (const auto& err : rep.errors) {
    std::fprintf(stderr, "trace_check: VIOLATION: %s\n", err.c_str());
  }
  if (!rep.ok()) {
    std::fprintf(stderr, "trace_check: FAIL (%zu violation(s))\n",
                 rep.errors.size());
    return 1;
  }
  std::printf("trace_check: OK\n");
  return 0;
}
