// trace_stress — short MPMC stress run with tracing force-enabled,
// exporting an "ffq.trace.v1" file for trace_check / Perfetto.
//
// Policies are pinned to `enabled` explicitly (not default_policy) so
// this binary produces a full trace in every build configuration — the
// CI trace leg runs it and then validates the export with trace_check
// --expect-drained, closing the loop: real queues, real threads, real
// file, offline FIFO/no-loss/no-dup verdict.
//
// Usage: trace_stress [--trace=FILE] [--producers=N] [--consumers=N]
//                     [--items=N] [--capacity=N]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ffq/core/mpmc.hpp"
#include "ffq/telemetry/snapshot.hpp"
#include "ffq/trace/trace.hpp"

namespace {

using queue_type =
    ffq::core::mpmc_queue<std::uint64_t, ffq::core::layout_aligned,
                          ffq::telemetry::enabled, ffq::trace::enabled>;

bool parse_flag(const std::string& arg, const char* name, long& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "trace.json";
  long producers = 2, consumers = 2, items = 8000, capacity = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long v = 0;
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (parse_flag(arg, "--producers", v)) {
      producers = v;
    } else if (parse_flag(arg, "--consumers", v)) {
      consumers = v;
    } else if (parse_flag(arg, "--items", v)) {
      items = v;
    } else if (parse_flag(arg, "--capacity", v)) {
      capacity = v;
    } else {
      std::fprintf(stderr,
                   "usage: trace_stress [--trace=FILE] [--producers=N] "
                   "[--consumers=N] [--items=N] [--capacity=N]\n");
      return 2;
    }
  }

  // Size the rings so the whole run fits with headroom: a dropped record
  // would (correctly) downgrade trace_check's no-loss assertion.
  std::size_t ring_cap = 2;
  const auto want = static_cast<std::size_t>(items) * 4;
  while (ring_cap < want) ring_cap <<= 1;
  ffq::trace::registry::instance().set_ring_capacity(ring_cap);
  ffq::trace::set_thread_name("main");

  queue_type q(static_cast<std::size_t>(capacity));

  std::vector<std::thread> threads;
  for (long p = 0; p < producers; ++p) {
    threads.emplace_back([&q, p, producers, items] {
      ffq::trace::set_thread_name("producer-" + std::to_string(p));
      for (long i = 0; i < items / producers; ++i) {
        q.enqueue(static_cast<std::uint64_t>(p) << 32 |
                  static_cast<std::uint64_t>(i));
      }
    });
  }
  std::vector<std::uint64_t> consumed(static_cast<std::size_t>(consumers), 0);
  std::vector<std::thread> eaters;
  for (long c = 0; c < consumers; ++c) {
    eaters.emplace_back([&q, &consumed, c] {
      ffq::trace::set_thread_name("consumer-" + std::to_string(c));
      std::uint64_t v = 0;
      while (q.dequeue(v)) ++consumed[static_cast<std::size_t>(c)];
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : eaters) t.join();

  std::uint64_t total = 0;
  for (const auto n : consumed) total += n;
  std::printf("trace_stress: %lld produced, %llu consumed\n",
              static_cast<long long>((items / producers) * producers),
              static_cast<unsigned long long>(total));

  // Fold the queue's counter block into a metrics snapshot so the export
  // carries counter tracks alongside the event timeline.
  ffq::telemetry::metrics_snapshot metrics;
  q.telemetry().for_each([&](const char* name, std::uint64_t value) {
    metrics.counters[std::string("queue.") + queue_type::kName + "/" + name] =
        value;
  });

  ffq::trace::export_options opts;
  opts.metrics = &metrics;
  if (!ffq::trace::write_chrome_trace(trace_path, opts)) {
    std::fprintf(stderr, "trace_stress: cannot write %s\n",
                 trace_path.c_str());
    return 1;
  }
  std::printf("trace_stress: wrote %s\n", trace_path.c_str());
  return 0;
}
