#!/usr/bin/env python3
"""bench_gate.py — smoke regression gate over the committed BENCH_*.json
baselines.

Compares a fresh quick-mode bench run against the baseline committed at
the repo root and fails when the chosen metric regresses beyond
tolerance.

Method: rows are matched by the --key columns, each matched row
contributes ratio = current / baseline of the --metric column, and the
gate tests the *median* ratio per experiment. The median — not the
worst row — is deliberate: quick mode runs a fraction of the workload
on a shared CI box, so any single row can be 2x off from scheduler
noise, but a genuine regression (an extra branch or fence on a hot
path) drags every row down together.

Tolerance: the median ratio must stay within 25% of the baseline, on
the side --direction says matters (throughput may not drop below 0.75x;
ns/op may not rise above 1.33x, the reciprocal). The 25% figure is
sized to quick-mode noise observed on oversubscribed 1-2 CPU runners
(row-to-row stddev runs 5-15% of the mean there; the median over the
row set is much tighter, and real regressions worth catching — a
mispaired memory order, a lost bulk path — cost 30%+). This is a smoke
gate against large silent regressions, not a performance tracker; the
trajectory lives in the committed BENCH_*.json files themselves.

Usage:
  bench_gate.py --baseline BENCH_batch_ops.json --current out.json \
      --key queue,batch,consumers [--metric items_per_sec] \
      [--direction higher] [--tolerance 0.25]

Exit status: 0 pass, 1 regression or row mismatch, 2 usage/IO error.
"""
import argparse
import json
import statistics
import sys


def load(path, key_cols, metric):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = tuple((k, row[k]) for k in key_cols)
        if key in rows:
            raise KeyError(f"{path}: --key does not identify rows "
                           f"uniquely ({dict(key)} repeats)")
        rows[key] = float(row[metric])
    return doc.get("experiment", "?"), rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--key", required=True,
                    help="comma-separated columns identifying a row")
    ap.add_argument("--metric", default="items_per_sec")
    ap.add_argument("--direction", choices=("higher", "lower"),
                    default="higher",
                    help="which way is better for --metric "
                         "(higher: throughput; lower: ns/op)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression of the median row "
                         "ratio (default 0.25; see module docstring)")
    args = ap.parse_args()
    key_cols = [c for c in args.key.split(",") if c]

    try:
        base_name, base = load(args.baseline, key_cols, args.metric)
        cur_name, cur = load(args.current, key_cols, args.metric)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"bench_gate: cannot load inputs: {e}", file=sys.stderr)
        return 2

    if base_name != cur_name:
        print(f"bench_gate: experiment mismatch: baseline={base_name} "
              f"current={cur_name}", file=sys.stderr)
        return 1

    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"bench_gate: {base_name}: current run is missing "
              f"{len(missing)} baseline row(s), e.g. {dict(missing[0])}",
              file=sys.stderr)
        return 1

    ratios = []
    for key, base_val in sorted(base.items()):
        ratio = cur[key] / base_val if base_val > 0 else float("inf")
        ratios.append(ratio)
        label = " ".join(f"{k}={v}" for k, v in key)
        print(f"  {label:<44s} {args.metric}: {ratio:6.2f}x")

    median = statistics.median(ratios)
    if args.direction == "higher":
        bound = 1.0 - args.tolerance
        ok = median >= bound
        side = "floor"
    else:
        bound = 1.0 / (1.0 - args.tolerance)
        ok = median <= bound
        side = "ceiling"
    print(f"bench_gate: {base_name}: median {args.metric} ratio "
          f"{median:.2f}x over {len(ratios)} rows ({side} {bound:.2f}x) "
          f"-> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
