// check_explore — drive ffq::check from the command line.
//
// Model substrate (clonable state machines; supports exhaustive DFS):
//   check_explore --model spsc --bound 2          exhaustive, preemption<=2
//   check_explore --model spmc --fuzz 5000        seeded random schedules
//   check_explore --model spmc --mutate skip_line29_recheck --fuzz 5000
//   check_explore --model spmc --mutate skip_line29_recheck --replay 0.1*3.0
//
// Real queues (FFQ_CHECK_YIELD instrumentation; random + replay drivers):
//   check_explore --queue all --fuzz 10000 --seed 1
//   check_explore --queue mpmc --replay '2*14.0.2*3.1*7'
//
// Exit codes: 0 = every explored schedule passed; 1 = an oracle was
// violated (the offending schedule string is printed for --replay);
// 2 = usage error. The program shapes are fixed per target name so a
// printed schedule replays against an identical program.
#ifndef FFQ_CHECK
#define FFQ_CHECK 1  // instrument the queue headers in this TU
#endif

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "ffq/check/check.hpp"
#include "ffq/core/mpmc.hpp"
#include "ffq/core/spmc.hpp"
#include "ffq/core/spsc.hpp"
#include "ffq/core/waitable.hpp"
#include "ffq/model/ffq_alg1.hpp"
#include "ffq/model/ffq_alg2.hpp"
#include "ffq/model/shard_sched.hpp"
#include "ffq/shard/shard.hpp"

namespace {

using namespace ffq::check;
namespace model = ffq::model;

int usage() {
  std::fprintf(stderr,
               "usage: check_explore --model spsc|spmc|mpmc|shard [--bound N] "
               "[--fuzz N] [--replay SCHED] [--mutate NAME] [--seed S]\n"
               "       check_explore --queue "
               "spsc|spmc|mpmc|waitable|shard|shard_ordered|all "
               "--fuzz N [--replay SCHED] [--seed S]\n"
               "mutations: publish_before_data skip_line29_recheck "
               "claim_publishes_directly gap_ignores_rank claim_ignores_gap\n");
  return 2;
}

// ---- model programs (fixed shapes so schedules replay) -------------------

/// SPSC shape: 1 producer x 3 items, 1 consumer, 2 cells (forces wraps).
/// SPMC shape: 1 producer x 4 items, 2 consumers x quota 2, 2 cells.
/// MPMC shape: 2 producers x 2 items, 2 consumers x quota 2, 2 cells.
/// Shard shape: 2 shards x 2 items, 2 consumers x quota 2 batch 2,
/// 2 cells per shard (exercises visit, steal, and the stale-head race).
model::world make_model(const std::string& name, const std::string& mutate) {
  auto pmut = model::producer_mutation::none;
  auto cmut = model::consumer_mutation::none;
  auto mmut = model::alg2_mutation::none;
  if (mutate == "publish_before_data") {
    pmut = model::producer_mutation::publish_before_data;
  } else if (mutate == "skip_line29_recheck") {
    cmut = model::consumer_mutation::skip_line29_recheck;
  } else if (mutate == "claim_publishes_directly") {
    mmut = model::alg2_mutation::claim_publishes_directly;
  } else if (mutate == "gap_ignores_rank") {
    mmut = model::alg2_mutation::gap_ignores_rank;
  } else if (mutate == "claim_ignores_gap") {
    mmut = model::alg2_mutation::claim_ignores_gap;
  } else if (!mutate.empty()) {
    throw std::invalid_argument("unknown mutation: " + mutate);
  }

  if (name == "spsc") {
    model::world w(2, 3);
    w.producer_ranges_ = {{1, 3}};
    w.threads_.push_back(std::make_unique<model::alg1_producer>(1, 3, pmut));
    w.threads_.push_back(std::make_unique<model::alg1_consumer>(3, cmut));
    return w;
  }
  if (name == "spmc") {
    model::world w(2, 4);
    w.producer_ranges_ = {{1, 4}};
    w.threads_.push_back(std::make_unique<model::alg1_producer>(1, 4, pmut));
    w.threads_.push_back(std::make_unique<model::alg1_consumer>(2, cmut));
    w.threads_.push_back(std::make_unique<model::alg1_consumer>(2, cmut));
    return w;
  }
  if (name == "mpmc") {
    model::world w(2, 4);
    w.producer_ranges_ = {{1, 2}, {3, 4}};
    w.threads_.push_back(std::make_unique<model::alg2_producer>(1, 2, mmut));
    w.threads_.push_back(std::make_unique<model::alg2_producer>(3, 2, mmut));
    w.threads_.push_back(std::make_unique<model::alg1_consumer>(2, cmut));
    w.threads_.push_back(std::make_unique<model::alg1_consumer>(2, cmut));
    return w;
  }
  if (name == "shard") {
    model::world w = model::world::sharded(2, 2, 6);
    w.producer_ranges_ = {{1, 4}, {5, 6}};
    // Shard 0 wraps its 2 cells twice (gaps + the line-29 race are
    // reachable); shard 1 is short so consumers cross shards and steal.
    w.threads_.push_back(std::make_unique<model::shard_producer>(0, 1, 4, pmut));
    w.threads_.push_back(std::make_unique<model::shard_producer>(1, 5, 2, pmut));
    // Opposite start cursors so visits and steals both occur.
    w.threads_.push_back(std::make_unique<model::shard_consumer>(0, 3, 2, cmut));
    w.threads_.push_back(std::make_unique<model::shard_consumer>(1, 3, 2, cmut));
    return w;
  }
  throw std::invalid_argument("unknown model: " + name);
}

int report_model(const explore_result& r, const char* what) {
  if (r.ok) {
    std::printf("check_explore: %s passed (%zu states, %zu terminals%s)\n",
                what, r.states, r.terminals,
                r.exhausted ? "" : ", state bound hit");
    return r.exhausted ? 0 : 2;
  }
  std::printf("check_explore: VIOLATION (%s)\n  %s\n  schedule: %s\n", what,
              r.violation.c_str(), format_schedule(r.witness).c_str());
  return 1;
}

// ---- real-queue programs (fixed shapes so schedules replay) --------------

/// One program shape per queue name, small enough for the Wing-Gong
/// bound: spsc/waitable 1x6 items 1 consumer; spmc 1x6, 2 consumers;
/// mpmc 2x4, 2 consumers.
program_config queue_config(const std::string& name) {
  program_config cfg;
  cfg.capacity = 4;
  if (name == "mpmc") {
    cfg.producers = 2;
    cfg.items_per_producer = 4;
    cfg.consumers = 2;
  } else if (name == "shard" || name == "shard_ordered") {
    cfg.producers = 2;  // one shard each, cfg.capacity cells per shard
    cfg.items_per_producer = 4;
    cfg.consumers = 2;
    cfg.dequeue_batch = 2;  // exercise the scheduler's bulk drain
    cfg.check_linearizability = false;  // sharded: not one FIFO by design
  } else if (name == "spmc") {
    cfg.producers = 1;
    cfg.items_per_producer = 6;
    cfg.consumers = 2;
  } else {  // spsc, waitable: single consumer by contract
    cfg.producers = 1;
    cfg.items_per_producer = 6;
    cfg.consumers = 1;
  }
  return cfg;
}

template <typename Queue>
int fuzz_one_queue(const std::string& name, std::uint64_t seed,
                   std::uint64_t runs) {
  const program_config cfg = queue_config(name);
  const fuzz_result r = fuzz_queue<Queue>(cfg, seed, runs);
  if (r.ok) {
    std::printf("check_explore: queue %s passed %llu schedules (seed %llu)\n",
                name.c_str(), static_cast<unsigned long long>(r.runs),
                static_cast<unsigned long long>(seed));
    return 0;
  }
  std::printf(
      "check_explore: VIOLATION (queue %s, run %llu)\n  %s\n  schedule: %s\n",
      name.c_str(), static_cast<unsigned long long>(r.runs - 1),
      r.failure.violation.c_str(), format_schedule(r.failure.sched).c_str());
  return 1;
}

template <typename Queue>
int replay_one_queue(const std::string& name, const schedule& s) {
  const run_result r = replay_queue<Queue>(queue_config(name), s);
  if (r.ok) {
    std::printf("check_explore: queue %s replay passed (%llu steps)\n",
                name.c_str(), static_cast<unsigned long long>(r.steps));
    return 0;
  }
  std::printf("check_explore: VIOLATION (queue %s replay)\n  %s\n  schedule: %s\n",
              name.c_str(), r.violation.c_str(),
              format_schedule(r.sched).c_str());
  return 1;
}

using q_spsc = ffq::core::spsc_queue<long long>;
using q_spmc = ffq::core::spmc_queue<long long>;
using q_mpmc = ffq::core::mpmc_queue<long long>;
using q_wait = ffq::core::waitable_spsc_queue<long long>;
using q_shard = ffq::shard::fabric<long long, false>;
using q_shard_ord = ffq::shard::fabric<long long, true>;

}  // namespace

int main(int argc, char** argv) {
  std::string model_name, queue_name, mutate, replay_str;
  int bound = -1;
  std::uint64_t fuzz_runs = 0;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    } else if (i + 1 < argc && arg != "--help") {
      value = argv[i + 1];
    }
    auto take = [&]() {  // consume the separated value form
      if (eq == std::string::npos) ++i;
      return value;
    };
    if (arg == "--model") {
      model_name = take();
    } else if (arg == "--queue") {
      queue_name = take();
    } else if (arg == "--mutate") {
      mutate = take();
    } else if (arg == "--replay") {
      replay_str = take();
    } else if (arg == "--bound") {
      bound = std::atoi(take().c_str());
    } else if (arg == "--fuzz") {
      fuzz_runs = std::strtoull(take().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(take().c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }

  if (model_name.empty() == queue_name.empty()) return usage();  // exactly one

  schedule replay_sched;
  if (!replay_str.empty()) {
    auto parsed = parse_schedule(replay_str);
    if (!parsed) {
      std::fprintf(stderr, "check_explore: malformed schedule '%s'\n",
                   replay_str.c_str());
      return 2;
    }
    replay_sched = std::move(*parsed);
  }

  if (!model_name.empty()) {
    std::optional<model::world> w;
    try {
      w.emplace(make_model(model_name, mutate));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "check_explore: %s\n", e.what());
      return 2;
    }
    if (!replay_str.empty()) {
      return report_model(replay_model(*w, replay_sched), "model replay");
    }
    int rc = 0;
    if (bound >= 0) {
      dfs_options opt;
      opt.preemption_bound = bound;
      const std::string what =
          "model " + model_name + " DFS bound " + std::to_string(bound);
      rc = report_model(dfs_explore(*w, opt), what.c_str());
      if (rc != 0) return rc;
    }
    if (fuzz_runs > 0) {
      const std::string what = "model " + model_name + " fuzz " +
                               std::to_string(fuzz_runs) + " (seed " +
                               std::to_string(seed) + ")";
      rc = report_model(fuzz_model(*w, seed, fuzz_runs), what.c_str());
    }
    if (bound < 0 && fuzz_runs == 0) return usage();
    return rc;
  }

  // Real-queue mode.
  if (!mutate.empty() || bound >= 0) return usage();  // model-only options
  if (!replay_str.empty()) {
    if (queue_name == "spsc") return replay_one_queue<q_spsc>(queue_name, replay_sched);
    if (queue_name == "spmc") return replay_one_queue<q_spmc>(queue_name, replay_sched);
    if (queue_name == "mpmc") return replay_one_queue<q_mpmc>(queue_name, replay_sched);
    if (queue_name == "waitable") return replay_one_queue<q_wait>(queue_name, replay_sched);
    if (queue_name == "shard") return replay_one_queue<q_shard>(queue_name, replay_sched);
    if (queue_name == "shard_ordered") return replay_one_queue<q_shard_ord>(queue_name, replay_sched);
    return usage();
  }
  if (fuzz_runs == 0) return usage();
  int rc = 0;
  const bool all = queue_name == "all";
  if (all || queue_name == "spsc") rc |= fuzz_one_queue<q_spsc>("spsc", seed, fuzz_runs);
  if (all || queue_name == "spmc") rc |= fuzz_one_queue<q_spmc>("spmc", seed, fuzz_runs);
  if (all || queue_name == "mpmc") rc |= fuzz_one_queue<q_mpmc>("mpmc", seed, fuzz_runs);
  if (all || queue_name == "waitable") rc |= fuzz_one_queue<q_wait>("waitable", seed, fuzz_runs);
  if (all || queue_name == "shard") rc |= fuzz_one_queue<q_shard>("shard", seed, fuzz_runs);
  if (all || queue_name == "shard_ordered") {
    rc |= fuzz_one_queue<q_shard_ord>("shard_ordered", seed, fuzz_runs);
  }
  if (!all && rc == 0 && queue_name != "spsc" && queue_name != "spmc" &&
      queue_name != "mpmc" && queue_name != "waitable" &&
      queue_name != "shard" && queue_name != "shard_ordered") {
    return usage();
  }
  return rc;
}
